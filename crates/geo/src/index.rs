//! The geofence index built by the `build_geo_index` aggregation (§VI.E).
//!
//! "One of them is a Presto aggregation function, build_geo_index, which
//! serializes/deserializes geospatial polygons into a QuadTree. During query
//! execution, we build a QuadTree on the fly. QuadTree is used to filter out
//! geofences that do not contain target point ... Finally, we run
//! st_contains for remaining geofences."

use std::sync::atomic::{AtomicU64, Ordering};

use presto_common::{PrestoError, Result};

use crate::geometry::{BoundingBox, Geometry, Point};
use crate::quadtree::QuadTree;
use crate::wkt::parse_wkt;

/// An immutable index over geofences, built on the fly per query.
///
/// The index is read-only after build; the call counter is atomic, so the
/// type is `Sync` without any unsafe assertion (workers probe a shared
/// index concurrently).
pub struct GeofenceIndex {
    fences: Vec<(i64, Geometry)>,
    tree: QuadTree,
    /// `st_contains` evaluations performed through this index (filter
    /// effectiveness metric for the §VI experiment).
    contains_calls: AtomicU64,
}

impl GeofenceIndex {
    /// Build from `(city_id, geometry)` pairs — the aggregation's finish
    /// step.
    pub fn build(fences: Vec<(i64, Geometry)>) -> Result<GeofenceIndex> {
        let mut bounds: Option<BoundingBox> = None;
        for (_, g) in &fences {
            if let Some(b) = g.bbox() {
                bounds = Some(match bounds {
                    None => b,
                    Some(acc) => acc.union(&b),
                });
            }
        }
        let bounds = bounds.unwrap_or(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        let mut tree = QuadTree::new(bounds);
        for (i, (_, g)) in fences.iter().enumerate() {
            if let Some(b) = g.bbox() {
                tree.insert(i as u32, b);
            }
        }
        Ok(GeofenceIndex { fences, tree, contains_calls: AtomicU64::new(0) })
    }

    /// Build from `(city_id, wkt)` pairs — what the aggregation sees when
    /// geofences are stored as WKT strings in the cities table.
    pub fn build_from_wkt(rows: Vec<(i64, String)>) -> Result<GeofenceIndex> {
        let fences = rows
            .into_iter()
            .map(|(id, wkt)| {
                let g = parse_wkt(&wkt)
                    .map_err(|e| PrestoError::Execution(format!("bad geofence WKT: {e}")))?;
                Ok((id, g))
            })
            .collect::<Result<Vec<_>>>()?;
        GeofenceIndex::build(fences)
    }

    /// Number of indexed geofences.
    pub fn len(&self) -> usize {
        self.fences.len()
    }

    /// True when no geofences are indexed.
    pub fn is_empty(&self) -> bool {
        self.fences.is_empty()
    }

    /// Ids of geofences containing `p`: QuadTree candidate filter, then
    /// exact `st_contains` on the survivors.
    pub fn find_containing(&self, p: &Point) -> Vec<i64> {
        let candidates = self.tree.query_point(p);
        self.contains_calls.fetch_add(candidates.len() as u64, Ordering::Relaxed);
        candidates
            .into_iter()
            .filter(|&i| self.fences[i as usize].1.contains(p))
            .map(|i| self.fences[i as usize].0)
            .collect()
    }

    /// Brute-force baseline: full `st_contains` against *every* geofence —
    /// the Hive MapReduce execution model of §VI.C, whose per-pair cost is
    /// proportional to the geofence's vertex count (no index, no
    /// bounding-box pre-filter).
    pub fn find_containing_brute_force(&self, p: &Point) -> Vec<i64> {
        self.contains_calls.fetch_add(self.fences.len() as u64, Ordering::Relaxed);
        self.fences.iter().filter(|(_, g)| g.contains_exhaustive(p)).map(|(id, _)| *id).collect()
    }

    /// Cumulative `st_contains` evaluations (both paths).
    pub fn contains_calls(&self) -> u64 {
        self.contains_calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{city_polygon, GeoWorkload};

    fn squares() -> GeofenceIndex {
        // 10×10 grid of unit-square "cities", id = x * 100 + y
        let mut fences = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                let poly = crate::geometry::Polygon::new(vec![
                    Point::new(x as f64, y as f64),
                    Point::new(x as f64 + 1.0, y as f64),
                    Point::new(x as f64 + 1.0, y as f64 + 1.0),
                    Point::new(x as f64, y as f64 + 1.0),
                ])
                .unwrap();
                fences.push(((x * 100 + y) as i64, Geometry::Polygon(poly)));
            }
        }
        GeofenceIndex::build(fences).unwrap()
    }

    #[test]
    fn quadtree_path_matches_brute_force() {
        let index = squares();
        for (x, y) in [(0.5, 0.5), (3.2, 7.8), (9.9, 9.9), (15.0, 15.0)] {
            let p = Point::new(x, y);
            let mut fast = index.find_containing(&p);
            let mut brute = index.find_containing_brute_force(&p);
            fast.sort_unstable();
            brute.sort_unstable();
            assert_eq!(fast, brute, "mismatch at ({x}, {y})");
        }
    }

    #[test]
    fn quadtree_does_dramatically_fewer_contains_calls() {
        let index = squares();
        let p = Point::new(4.5, 4.5);
        index.find_containing(&p);
        let fast_calls = index.contains_calls();
        index.find_containing_brute_force(&p);
        let brute_calls = index.contains_calls() - fast_calls;
        assert!(fast_calls * 10 <= brute_calls, "quadtree {fast_calls} vs brute {brute_calls}");
    }

    #[test]
    fn builds_from_wkt_rows() {
        let rows = vec![
            (1i64, "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))".to_string()),
            (2i64, "POLYGON ((5 5, 7 5, 7 7, 5 7, 5 5))".to_string()),
        ];
        let index = GeofenceIndex::build_from_wkt(rows).unwrap();
        assert_eq!(index.find_containing(&Point::new(1.0, 1.0)), vec![1]);
        assert_eq!(index.find_containing(&Point::new(6.0, 6.0)), vec![2]);
        assert!(index.find_containing(&Point::new(3.0, 3.0)).is_empty());

        let bad = vec![(1i64, "NOT WKT".to_string())];
        assert!(GeofenceIndex::build_from_wkt(bad).is_err());
    }

    #[test]
    fn generated_city_workload_agrees_across_paths() {
        let workload = GeoWorkload::generate(60, 200, 40, 7);
        let index =
            GeofenceIndex::build(workload.cities.iter().map(|(id, g)| (*id, g.clone())).collect())
                .unwrap();
        for p in &workload.trips {
            let mut fast = index.find_containing(p);
            let mut brute = index.find_containing_brute_force(p);
            fast.sort_unstable();
            brute.sort_unstable();
            assert_eq!(fast, brute);
        }
        // sanity: generated cities are real polygons
        let (_, g) = &workload.cities[0];
        assert!(g.vertex_count() >= 3);
        let _ = city_polygon(0.0, 0.0, 1.0, 12);
    }
}
