//! The QuadTree (§VI.D).
//!
//! "Quadtrees represent a partition of space in two dimensions by
//! decomposing the region into four quadrants, sub-quadrants, and so on
//! until the contents of the cells meet some criterion of data occupancy."
//! Items are stored with their bounding boxes; a point query walks the
//! quadrants containing the point and returns the ids of every item whose
//! box contains it — the candidate set for exact `st_contains`.

use crate::geometry::{BoundingBox, Point};

/// Default per-node occupancy before subdividing.
pub const DEFAULT_NODE_CAPACITY: usize = 8;
/// Default maximum depth.
pub const DEFAULT_MAX_DEPTH: usize = 16;

/// A QuadTree over items identified by `u32` ids with bounding boxes.
#[derive(Debug)]
pub struct QuadTree {
    root: Node,
    bounds: BoundingBox,
    capacity: usize,
    max_depth: usize,
    len: usize,
}

#[derive(Debug)]
struct Node {
    /// Items resident at this node (either because it is a leaf, or because
    /// they span multiple children).
    items: Vec<(u32, BoundingBox)>,
    /// NW / NE / SW / SE children, populated after subdivision.
    children: Option<Box<[Node; 4]>>,
}

impl Node {
    fn leaf() -> Node {
        Node { items: Vec::new(), children: None }
    }
}

impl QuadTree {
    /// Empty tree covering `bounds` with default tuning.
    pub fn new(bounds: BoundingBox) -> QuadTree {
        QuadTree::with_tuning(bounds, DEFAULT_NODE_CAPACITY, DEFAULT_MAX_DEPTH)
    }

    /// Empty tree with explicit occupancy criterion and depth cap.
    pub fn with_tuning(bounds: BoundingBox, capacity: usize, max_depth: usize) -> QuadTree {
        QuadTree { root: Node::leaf(), bounds, capacity: capacity.max(1), max_depth, len: 0 }
    }

    /// Number of items inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered region.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Insert an item by id and bounding box.
    pub fn insert(&mut self, id: u32, bbox: BoundingBox) {
        insert_into(&mut self.root, self.bounds, id, bbox, 0, self.capacity, self.max_depth);
        self.len += 1;
    }

    /// Ids of items whose bounding box contains `p` — the QuadTree filter
    /// step; exact `st_contains` runs only on these survivors.
    pub fn query_point(&self, p: &Point) -> Vec<u32> {
        let mut out = Vec::new();
        if self.bounds.contains_point(p) {
            query_node(&self.root, self.bounds, p, &mut out);
        }
        out
    }

    /// Number of nodes (for tests and diagnostics).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            1 + n.children.as_ref().map(|c| c.iter().map(count).sum()).unwrap_or(0)
        }
        count(&self.root)
    }
}

fn insert_into(
    node: &mut Node,
    node_bounds: BoundingBox,
    id: u32,
    bbox: BoundingBox,
    depth: usize,
    capacity: usize,
    max_depth: usize,
) {
    if node.children.is_none() {
        node.items.push((id, bbox));
        // Occupancy criterion met → subdivide and push items down.
        if node.items.len() > capacity && depth < max_depth {
            node.children =
                Some(Box::new([Node::leaf(), Node::leaf(), Node::leaf(), Node::leaf()]));
            let quadrants = node_bounds.quadrants();
            let items = std::mem::take(&mut node.items);
            for (item_id, item_box) in items {
                place(node, &quadrants, item_id, item_box, depth, capacity, max_depth);
            }
        }
        return;
    }
    let quadrants = node_bounds.quadrants();
    place(node, &quadrants, id, bbox, depth, capacity, max_depth);
}

/// Put an item into exactly one child when a single quadrant fully contains
/// it; items spanning quadrant boundaries stay at this node.
fn place(
    node: &mut Node,
    quadrants: &[BoundingBox; 4],
    id: u32,
    bbox: BoundingBox,
    depth: usize,
    capacity: usize,
    max_depth: usize,
) {
    let children = node.children.as_mut().expect("place on subdivided node");
    let mut target = None;
    for (i, q) in quadrants.iter().enumerate() {
        if q.min_lng <= bbox.min_lng
            && q.max_lng >= bbox.max_lng
            && q.min_lat <= bbox.min_lat
            && q.max_lat >= bbox.max_lat
        {
            target = Some(i);
            break;
        }
    }
    match target {
        Some(i) => {
            insert_into(&mut children[i], quadrants[i], id, bbox, depth + 1, capacity, max_depth)
        }
        None => node.items.push((id, bbox)),
    }
}

fn query_node(node: &Node, node_bounds: BoundingBox, p: &Point, out: &mut Vec<u32>) {
    for (id, bbox) in &node.items {
        if bbox.contains_point(p) {
            out.push(*id);
        }
    }
    if let Some(children) = &node.children {
        for (child, q) in children.iter().zip(node_bounds.quadrants()) {
            if q.contains_point(p) {
                query_node(child, q, p, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> BoundingBox {
        BoundingBox::new(0.0, 0.0, 16.0, 16.0)
    }

    fn cell(x: f64, y: f64) -> BoundingBox {
        BoundingBox::new(x, y, x + 1.0, y + 1.0)
    }

    #[test]
    fn indexes_the_4x4_grid_of_fig_11() {
        // Fig 11: a QuadTree over a 4×4 square space of unit cells.
        let mut tree = QuadTree::with_tuning(BoundingBox::new(0.0, 0.0, 4.0, 4.0), 2, 8);
        let mut id = 0;
        for x in 0..4 {
            for y in 0..4 {
                tree.insert(id, cell(x as f64, y as f64));
                id += 1;
            }
        }
        assert_eq!(tree.len(), 16);
        assert!(tree.node_count() > 1, "occupancy criterion must subdivide");
        // a point interior to cell (2, 1)
        let hits = tree.query_point(&Point::new(2.5, 1.5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], 2 * 4 + 1);
    }

    #[test]
    fn query_equals_brute_force_scan() {
        // deterministic pseudo-random boxes
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 * 15.0
        };
        let mut tree = QuadTree::new(world());
        let mut boxes = Vec::new();
        for id in 0..500 {
            let x = rand();
            let y = rand();
            let b = BoundingBox::new(x, y, x + rand() / 10.0 + 0.01, y + rand() / 10.0 + 0.01);
            tree.insert(id, b);
            boxes.push((id, b));
        }
        for _ in 0..200 {
            let p = Point::new(rand(), rand());
            let mut expected: Vec<u32> =
                boxes.iter().filter(|(_, b)| b.contains_point(&p)).map(|(id, _)| *id).collect();
            let mut got = tree.query_point(&p);
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn majority_of_items_filtered_out() {
        // §VI.D: "the majority of bounded rectangles that do not contain
        // target point could be filtered out"
        let mut tree = QuadTree::new(world());
        for id in 0..1000 {
            let x = (id % 16) as f64;
            let y = ((id / 16) % 16) as f64;
            tree.insert(id, BoundingBox::new(x, y, x + 0.9, y + 0.9));
        }
        let hits = tree.query_point(&Point::new(3.5, 3.5));
        assert!(hits.len() < 20, "expected few candidates, got {}", hits.len());
    }

    #[test]
    fn empty_and_out_of_bounds() {
        let tree = QuadTree::new(world());
        assert!(tree.is_empty());
        assert!(tree.query_point(&Point::new(1.0, 1.0)).is_empty());
        let mut tree = QuadTree::new(world());
        tree.insert(1, cell(0.0, 0.0));
        assert!(tree.query_point(&Point::new(-5.0, -5.0)).is_empty());
    }
}
