#![warn(missing_docs)]

//! Geospatial substrate (§VI): geometry model, WKT, point-in-polygon, and
//! the QuadTree index behind the Presto Geospatial plugin.
//!
//! The paper's workload: a `trips` table with start/end coordinates joined
//! against a `cities` table of geofences via
//! `st_contains(geo_shape, st_point(lng, lat))`. Brute force costs
//! |trips| × |geofences| × |vertices| point operations; the plugin's
//! `build_geo_index` aggregation builds a [`quadtree::QuadTree`] on the fly
//! and filters out "the majority of bounded rectangles that do not contain
//! \[the\] target point", a >50× speedup in production.

pub mod generator;
pub mod geometry;
pub mod index;
pub mod quadtree;
pub mod wkt;

pub use geometry::{BoundingBox, Geometry, Point, Polygon};
pub use index::GeofenceIndex;
pub use quadtree::QuadTree;
