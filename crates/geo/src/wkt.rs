//! Well-Known Text (WKT) parsing and formatting (§VI.A: "we use the
//! Well-Known Text (WKT) ... to represent geometries").
//!
//! Supported forms, matching the paper's examples:
//!
//! ```text
//! POINT (77.3548351 28.6973627)
//! POLYGON ((36.81 -1.31, 36.81 -1.31, ...))
//! MULTIPOLYGON (((...)), ((...)))
//! ```

use presto_common::{PrestoError, Result};

use crate::geometry::{Geometry, Point, Polygon};

/// Format a geometry as WKT.
pub fn to_wkt(g: &Geometry) -> String {
    match g {
        Geometry::Point(p) => format!("POINT ({} {})", p.lng, p.lat),
        Geometry::Polygon(poly) => format!("POLYGON ({})", ring_wkt(poly)),
        Geometry::MultiPolygon(polys) => {
            let parts: Vec<String> = polys.iter().map(|p| format!("({})", ring_wkt(p))).collect();
            format!("MULTIPOLYGON ({})", parts.join(", "))
        }
    }
}

fn ring_wkt(poly: &Polygon) -> String {
    let pts: Vec<String> = poly.ring().iter().map(|p| format!("{} {}", p.lng, p.lat)).collect();
    format!("({})", pts.join(", "))
}

/// Parse WKT text into a geometry.
pub fn parse_wkt(text: &str) -> Result<Geometry> {
    let mut p = WktParser { input: text.as_bytes(), pos: 0 };
    let g = p.parse()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(g)
}

struct WktParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> WktParser<'a> {
    fn err(&self, msg: &str) -> PrestoError {
        PrestoError::Analysis(format!("invalid WKT at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).to_uppercase()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && matches!(self.input[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected number"))
    }

    fn point_pair(&mut self) -> Result<Point> {
        let lng = self.number()?;
        let lat = self.number()?;
        Ok(Point::new(lng, lat))
    }

    fn ring(&mut self) -> Result<Vec<Point>> {
        self.expect(b'(')?;
        let mut pts = vec![self.point_pair()?];
        while self.peek() == Some(b',') {
            self.pos += 1;
            pts.push(self.point_pair()?);
        }
        self.expect(b')')?;
        Ok(pts)
    }

    fn polygon_body(&mut self) -> Result<Polygon> {
        self.expect(b'(')?;
        let ring = self.ring()?;
        // Interior rings (holes) are not supported by the simplified model;
        // reject rather than silently drop them.
        if self.peek() == Some(b',') {
            return Err(self.err("polygon holes are not supported"));
        }
        self.expect(b')')?;
        Polygon::new(ring).ok_or_else(|| self.err("polygon needs at least 3 points"))
    }

    fn parse(&mut self) -> Result<Geometry> {
        match self.keyword().as_str() {
            "POINT" => {
                self.expect(b'(')?;
                let p = self.point_pair()?;
                self.expect(b')')?;
                Ok(Geometry::Point(p))
            }
            "POLYGON" => Ok(Geometry::Polygon(self.polygon_body()?)),
            "MULTIPOLYGON" => {
                self.expect(b'(')?;
                let mut polys = vec![self.polygon_body()?];
                while self.peek() == Some(b',') {
                    self.pos += 1;
                    polys.push(self.polygon_body()?);
                }
                self.expect(b')')?;
                Ok(Geometry::MultiPolygon(polys))
            }
            other => Err(self.err(&format!("unknown geometry type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_examples() {
        let p = parse_wkt("POINT (77.3548351 28.6973627)").unwrap();
        assert_eq!(p, Geometry::Point(Point::new(77.3548351, 28.6973627)));

        let poly = parse_wkt(
            "POLYGON ((36.814155579 -1.3174386070000002, \
              36.814863682 -1.317545867, \
              36.814863682 -1.318221605, \
              36.813973188 -1.317910551, \
              36.814155579 -1.3174386070000002))",
        )
        .unwrap();
        match &poly {
            Geometry::Polygon(p) => assert_eq!(p.vertex_count(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trips() {
        for text in [
            "POINT (1 2)",
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
        ] {
            let g = parse_wkt(text).unwrap();
            let again = parse_wkt(&to_wkt(&g)).unwrap();
            assert_eq!(g, again);
        }
    }

    #[test]
    fn rejects_malformed_wkt() {
        assert!(parse_wkt("CIRCLE (0 0 5)").is_err());
        assert!(parse_wkt("POINT (1)").is_err());
        assert!(parse_wkt("POLYGON ((0 0, 1 1))").is_err()); // too few points
        assert!(parse_wkt("POINT (1 2) junk").is_err());
        assert!(parse_wkt("POLYGON ((0 0, 1 0, 1 1), (0 0, 1 0, 1 1))").is_err());
        // holes
    }
}
