//! Synthetic geofence / trip workload generator.
//!
//! The paper's geospatial numbers come from Uber production tables: a cities
//! table whose geofences have "hundreds or thousands of points" and a trips
//! table with "millions of Uber trips ... each day across hundreds of
//! cities" (§VI.C). This generator produces the same shape at configurable
//! scale: star-convex city polygons with a chosen vertex count scattered on
//! a plane, plus trip points biased to land inside cities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::{Geometry, Point, Polygon};

/// A generated workload: cities (geofences) and trip destination points.
pub struct GeoWorkload {
    /// `(city_id, geofence)` rows of the cities table.
    pub cities: Vec<(i64, Geometry)>,
    /// Trip destination points.
    pub trips: Vec<Point>,
}

/// A star-convex polygon around `(cx, cy)` with `vertices` vertices and mean
/// radius `radius` — a plausible city boundary.
pub fn city_polygon(cx: f64, cy: f64, radius: f64, vertices: usize) -> Polygon {
    // Deterministic per-city wobble so the polygon is irregular but stable.
    let mut ring = Vec::with_capacity(vertices);
    for i in 0..vertices {
        let angle = (i as f64) / (vertices as f64) * std::f64::consts::TAU;
        // radius wobble in [0.7, 1.3] from a cheap hash of (cx, cy, i)
        let h = ((cx * 73.0 + cy * 179.0 + i as f64 * 283.0).sin() * 0.3).abs();
        let r = radius * (0.7 + 2.0 * h);
        ring.push(Point::new(cx + r * angle.cos(), cy + r * angle.sin()));
    }
    Polygon::new(ring).expect("generated ring has >= 3 points")
}

impl GeoWorkload {
    /// Generate `num_cities` geofences of ~`vertices_per_city` vertices on a
    /// grid, plus `num_trips` points (80% inside some city, 20% anywhere).
    pub fn generate(
        num_cities: usize,
        num_trips: usize,
        vertices_per_city: usize,
        seed: u64,
    ) -> GeoWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = (num_cities as f64).sqrt().ceil() as usize;
        let spacing = 10.0;
        let mut cities = Vec::with_capacity(num_cities);
        for id in 0..num_cities {
            let gx = (id % grid) as f64 * spacing + spacing / 2.0;
            let gy = (id / grid) as f64 * spacing + spacing / 2.0;
            let radius = rng.gen_range(1.5..4.0);
            let poly = city_polygon(gx, gy, radius, vertices_per_city.max(3));
            cities.push((id as i64, Geometry::Polygon(poly)));
        }
        let extent = grid as f64 * spacing;
        let mut trips = Vec::with_capacity(num_trips);
        for _ in 0..num_trips {
            if rng.gen_bool(0.8) && !cities.is_empty() {
                // inside (the bounding box of) a random city — dense urban trips
                let (_, g) = &cities[rng.gen_range(0..cities.len())];
                let b = g.bbox().expect("city has bbox");
                trips.push(Point::new(
                    rng.gen_range(b.min_lng..b.max_lng),
                    rng.gen_range(b.min_lat..b.max_lat),
                ));
            } else {
                trips.push(Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)));
            }
        }
        GeoWorkload { cities, trips }
    }

    /// Total vertex count across all geofences (the brute-force cost driver).
    pub fn total_vertices(&self) -> usize {
        self.cities.iter().map(|(_, g)| g.vertex_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GeoWorkload::generate(10, 50, 20, 42);
        let b = GeoWorkload::generate(10, 50, 20, 42);
        assert_eq!(a.cities.len(), b.cities.len());
        assert_eq!(a.trips.len(), 50);
        assert_eq!(a.cities[3].1, b.cities[3].1);
        assert_eq!(a.trips[17], b.trips[17]);
        let c = GeoWorkload::generate(10, 50, 20, 43);
        assert_ne!(a.trips[17], c.trips[17]);
    }

    #[test]
    fn cities_have_requested_vertex_counts() {
        let w = GeoWorkload::generate(5, 10, 250, 1);
        for (_, g) in &w.cities {
            assert_eq!(g.vertex_count(), 250);
        }
        assert_eq!(w.total_vertices(), 5 * 250);
    }

    #[test]
    fn most_trips_land_inside_some_city() {
        let w = GeoWorkload::generate(25, 400, 30, 9);
        let inside = w.trips.iter().filter(|p| w.cities.iter().any(|(_, g)| g.contains(p))).count();
        // 80% target inside city bounding boxes; well over a third must hit
        assert!(inside > w.trips.len() / 3, "only {inside} inside");
    }
}
