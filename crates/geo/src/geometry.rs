//! Geometry model: points, polygons, multi-polygons (§VI.A).
//!
//! "A point represents a single location in a two-dimensional space.
//! Internally, we store each point as a pair of (longitude, latitude)." A
//! polygon is "a collection of points, such that the start point and the end
//! point match"; a geofence is a polygon or multi-polygon.

/// A (longitude, latitude) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Longitude (x).
    pub lng: f64,
    /// Latitude (y).
    pub lat: f64,
}

impl Point {
    /// Construct `st_point(lng, lat)`.
    pub fn new(lng: f64, lat: f64) -> Point {
        Point { lng, lat }
    }
}

/// An axis-aligned bounding box, the unit the QuadTree partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum longitude.
    pub min_lng: f64,
    /// Minimum latitude.
    pub min_lat: f64,
    /// Maximum longitude.
    pub max_lng: f64,
    /// Maximum latitude.
    pub max_lat: f64,
}

impl BoundingBox {
    /// Box from corners.
    pub fn new(min_lng: f64, min_lat: f64, max_lng: f64, max_lat: f64) -> BoundingBox {
        BoundingBox { min_lng, min_lat, max_lng, max_lat }
    }

    /// Smallest box covering a ring of points. `None` for an empty ring.
    pub fn of_points(points: &[Point]) -> Option<BoundingBox> {
        let first = points.first()?;
        let mut b = BoundingBox::new(first.lng, first.lat, first.lng, first.lat);
        for p in &points[1..] {
            b.min_lng = b.min_lng.min(p.lng);
            b.min_lat = b.min_lat.min(p.lat);
            b.max_lng = b.max_lng.max(p.lng);
            b.max_lat = b.max_lat.max(p.lat);
        }
        Some(b)
    }

    /// Point containment (inclusive edges).
    pub fn contains_point(&self, p: &Point) -> bool {
        p.lng >= self.min_lng
            && p.lng <= self.max_lng
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Box intersection (touching counts).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lng <= other.max_lng
            && self.max_lng >= other.min_lng
            && self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
    }

    /// Union of two boxes.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min_lng: self.min_lng.min(other.min_lng),
            min_lat: self.min_lat.min(other.min_lat),
            max_lng: self.max_lng.max(other.max_lng),
            max_lat: self.max_lat.max(other.max_lat),
        }
    }

    /// The four quadrants of this box (NW, NE, SW, SE).
    pub fn quadrants(&self) -> [BoundingBox; 4] {
        let mid_lng = (self.min_lng + self.max_lng) / 2.0;
        let mid_lat = (self.min_lat + self.max_lat) / 2.0;
        [
            BoundingBox::new(self.min_lng, mid_lat, mid_lng, self.max_lat),
            BoundingBox::new(mid_lng, mid_lat, self.max_lng, self.max_lat),
            BoundingBox::new(self.min_lng, self.min_lat, mid_lng, mid_lat),
            BoundingBox::new(mid_lng, self.min_lat, self.max_lng, mid_lat),
        ]
    }
}

/// A simple polygon (no holes), stored as a closed ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Build from a ring. The ring is closed automatically if the last point
    /// differs from the first. Needs at least 3 distinct points.
    pub fn new(mut ring: Vec<Point>) -> Option<Polygon> {
        if ring.len() < 3 {
            return None;
        }
        if ring.first() != ring.last() {
            let first = ring[0];
            ring.push(first);
        }
        let bbox = BoundingBox::of_points(&ring)?;
        Some(Polygon { ring, bbox })
    }

    /// The closed ring.
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Vertex count (excluding the closing duplicate).
    pub fn vertex_count(&self) -> usize {
        self.ring.len() - 1
    }

    /// Bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// `st_contains(polygon, point)` with a bounding-box short-circuit in
    /// front of the ray cast.
    pub fn contains(&self, p: &Point) -> bool {
        if !self.bbox.contains_point(p) {
            return false;
        }
        self.contains_exhaustive(p)
    }

    /// Full ray-casting containment with no bounding-box short-circuit.
    /// Cost is linear in the vertex count — "the time cost of executing
    /// st_contains for one pair of point and geofence is proportional to the
    /// number of points in the geofence" (§VI.C). This is the per-pair cost
    /// profile of the brute-force Hive baseline; the QuadTree pre-filter
    /// exists to avoid paying it for every pair.
    pub fn contains_exhaustive(&self, p: &Point) -> bool {
        let mut inside = false;
        let n = self.ring.len() - 1;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[i + 1];
            // edge crosses the horizontal ray at p.lat?
            if (a.lat > p.lat) != (b.lat > p.lat) {
                let t = (p.lat - a.lat) / (b.lat - a.lat);
                let x = a.lng + t * (b.lng - a.lng);
                if x > p.lng {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

/// A geofence: point, polygon or multi-polygon (§VI.B: "a geofence is either
/// a polygon or a multi-polygon").
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// A single polygon.
    Polygon(Polygon),
    /// A disjoint union of polygons.
    MultiPolygon(Vec<Polygon>),
}

impl Geometry {
    /// Bounding box (`None` for empty multi-polygons).
    pub fn bbox(&self) -> Option<BoundingBox> {
        match self {
            Geometry::Point(p) => Some(BoundingBox::new(p.lng, p.lat, p.lng, p.lat)),
            Geometry::Polygon(poly) => Some(*poly.bbox()),
            Geometry::MultiPolygon(polys) => {
                let mut it = polys.iter().map(|p| *p.bbox());
                let first = it.next()?;
                Some(it.fold(first, |acc, b| acc.union(&b)))
            }
        }
    }

    /// `st_contains(self, point)`.
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::Polygon(poly) => poly.contains(p),
            Geometry::MultiPolygon(polys) => polys.iter().any(|poly| poly.contains(p)),
        }
    }

    /// `st_contains` with no bounding-box short-circuit (the §VI.C
    /// vertex-proportional cost profile).
    pub fn contains_exhaustive(&self, p: &Point) -> bool {
        match self {
            Geometry::Point(q) => q == p,
            Geometry::Polygon(poly) => poly.contains_exhaustive(p),
            Geometry::MultiPolygon(polys) => polys.iter().any(|poly| poly.contains_exhaustive(p)),
        }
    }

    /// Total vertex count — the `st_contains` cost driver.
    pub fn vertex_count(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::Polygon(p) => p.vertex_count(),
            Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::vertex_count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn ray_casting_point_in_polygon() {
        let sq = unit_square();
        assert!(sq.contains(&Point::new(0.5, 0.5)));
        assert!(!sq.contains(&Point::new(1.5, 0.5)));
        assert!(!sq.contains(&Point::new(-0.1, 0.5)));
        assert!(!sq.contains(&Point::new(0.5, 2.0)));
    }

    #[test]
    fn concave_polygon() {
        // an L-shape: the notch at (1.5, 1.5) is outside
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(&Point::new(0.5, 1.5)));
        assert!(l.contains(&Point::new(1.5, 0.5)));
        assert!(!l.contains(&Point::new(1.5, 1.5)));
    }

    #[test]
    fn polygon_closes_ring_and_validates() {
        let p = unit_square();
        assert_eq!(p.ring().first(), p.ring().last());
        assert_eq!(p.vertex_count(), 4);
        assert!(Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
    }

    #[test]
    fn bbox_operations() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(1.0, 1.0, 3.0, 3.0);
        let c = BoundingBox::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u, BoundingBox::new(0.0, 0.0, 6.0, 6.0));
        let quads = a.quadrants();
        assert!(quads[0].contains_point(&Point::new(0.5, 1.5)));
        assert!(quads[3].contains_point(&Point::new(1.5, 0.5)));
    }

    #[test]
    fn multipolygon_contains_and_bbox() {
        let far = Polygon::new(vec![
            Point::new(10.0, 10.0),
            Point::new(11.0, 10.0),
            Point::new(11.0, 11.0),
            Point::new(10.0, 11.0),
        ])
        .unwrap();
        let geo = Geometry::MultiPolygon(vec![unit_square(), far]);
        assert!(geo.contains(&Point::new(0.5, 0.5)));
        assert!(geo.contains(&Point::new(10.5, 10.5)));
        assert!(!geo.contains(&Point::new(5.0, 5.0)));
        assert_eq!(geo.bbox().unwrap(), BoundingBox::new(0.0, 0.0, 11.0, 11.0));
        assert_eq!(geo.vertex_count(), 8);
    }
}
