//! Coordinator-side file list cache (§VII.A).
//!
//! "Presto coordinator caches file lists in memory to avoid long listFile
//! calls to remote storage ... This can only be applied to sealed
//! directories. For open partitions, Presto will skip caching those
//! directories to guarantee data freshness."

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::metrics::{names, CounterSet};
use presto_common::Result;
use presto_storage::{FileStatus, FileSystem};

/// File list cache over a remote filesystem.
///
/// Counters: `flc.hits`, `flc.misses`, `flc.bypass_open_partition`.
/// Cloning shares the cache.
#[derive(Clone)]
pub struct FileListCache {
    fs: Arc<dyn FileSystem>,
    cache: Arc<RwLock<HashMap<String, Arc<Vec<FileStatus>>>>>,
    metrics: CounterSet,
}

impl FileListCache {
    /// Cache in front of `fs`, reporting to `metrics`.
    pub fn new(fs: Arc<dyn FileSystem>, metrics: CounterSet) -> FileListCache {
        FileListCache { fs, cache: Arc::new(RwLock::new(HashMap::new())), metrics }
    }

    /// List a partition directory. `sealed = false` (an open partition being
    /// actively written by near-real-time ingestion) always goes to storage.
    pub fn list_partition(&self, dir: &str, sealed: bool) -> Result<Arc<Vec<FileStatus>>> {
        if !sealed {
            // Freshness over speed: micro-batch ingestion keeps appending
            // files to open partitions, so serving a stale list would hide
            // near-real-time data.
            self.metrics.incr(names::FLC_BYPASS_OPEN_PARTITION);
            return Ok(Arc::new(self.fs.list_files(dir)?));
        }
        if let Some(cached) = self.cache.read().get(dir) {
            self.metrics.incr(names::FLC_HITS);
            return Ok(cached.clone());
        }
        self.metrics.incr(names::FLC_MISSES);
        let listed = Arc::new(self.fs.list_files(dir)?);
        self.cache.write().insert(dir.to_string(), listed.clone());
        Ok(listed)
    }

    /// Drop a cached directory (e.g. when a partition is rewritten by a
    /// compaction job).
    pub fn invalidate(&self, dir: &str) {
        self.cache.write().remove(dir);
    }

    /// Number of cached directories.
    pub fn cached_directories(&self) -> usize {
        self.cache.read().len()
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_storage::HdfsFileSystem;

    fn hdfs_with_files() -> HdfsFileSystem {
        let hdfs = HdfsFileSystem::with_defaults();
        for p in 0..3 {
            for f in 0..4 {
                hdfs.backing_store()
                    .write(&format!("/warehouse/trips/datestr={p}/part-{f}"), b"data")
                    .unwrap();
            }
        }
        hdfs
    }

    #[test]
    fn sealed_partitions_hit_cache_after_first_list() {
        let hdfs = hdfs_with_files();
        let cache = FileListCache::new(Arc::new(hdfs.clone()), CounterSet::new());
        for _ in 0..10 {
            let files = cache.list_partition("/warehouse/trips/datestr=0", true).unwrap();
            assert_eq!(files.len(), 4);
        }
        assert_eq!(cache.metrics().get(names::FLC_MISSES), 1);
        assert_eq!(cache.metrics().get(names::FLC_HITS), 9);
        // the remote NameNode saw exactly one listFiles
        assert_eq!(hdfs.metrics().get(names::HDFS_LIST_FILES), 1);
    }

    #[test]
    fn open_partitions_always_see_fresh_files() {
        let hdfs = hdfs_with_files();
        let cache = FileListCache::new(Arc::new(hdfs.clone()), CounterSet::new());
        let open_dir = "/warehouse/trips/datestr=2";
        assert_eq!(cache.list_partition(open_dir, false).unwrap().len(), 4);
        // micro-batch ingestion appends a new file
        hdfs.backing_store().write(&format!("{open_dir}/part-new"), b"fresh").unwrap();
        // an open partition must see it immediately
        assert_eq!(cache.list_partition(open_dir, false).unwrap().len(), 5);
        assert_eq!(cache.metrics().get(names::FLC_BYPASS_OPEN_PARTITION), 2);
        assert_eq!(cache.cached_directories(), 0);
    }

    #[test]
    fn sealed_cache_serves_stale_until_invalidated() {
        let hdfs = hdfs_with_files();
        let cache = FileListCache::new(Arc::new(hdfs.clone()), CounterSet::new());
        let dir = "/warehouse/trips/datestr=1";
        assert_eq!(cache.list_partition(dir, true).unwrap().len(), 4);
        hdfs.backing_store().write(&format!("{dir}/part-late"), b"x").unwrap();
        // sealed: still the cached 4 (that's the contract)
        assert_eq!(cache.list_partition(dir, true).unwrap().len(), 4);
        cache.invalidate(dir);
        assert_eq!(cache.list_partition(dir, true).unwrap().len(), 5);
    }
}
