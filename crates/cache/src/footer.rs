//! Worker-side file handle and footer caches (§VII.B).
//!
//! "Presto worker caches the file descriptors in memory to avoid long
//! getFileInfo calls to remote storage. Also, a worker caches common
//! columnar files and stripe footers in memory ... due to the high hit rate
//! of footers as they are the indexes to the data itself."

use std::sync::Arc;

use presto_common::metrics::{names, CounterSet};
use presto_common::Result;
use presto_parquet::reader::{read_metadata, FsSource};
use presto_parquet::FileMetadata;
use presto_storage::{FileStatus, FileSystem};

use crate::lru::LruCache;

/// Caches `getFileInfo` results (file descriptors) per worker.
///
/// Counters: `fhc.hits`, `fhc.misses`.
#[derive(Clone)]
pub struct FileHandleCache {
    fs: Arc<dyn FileSystem>,
    cache: LruCache<String, FileStatus>,
    metrics: CounterSet,
}

impl FileHandleCache {
    /// Cache of at most `capacity` handles in front of `fs`.
    pub fn new(fs: Arc<dyn FileSystem>, capacity: usize, metrics: CounterSet) -> FileHandleCache {
        FileHandleCache { fs, cache: LruCache::new(capacity), metrics }
    }

    /// Stat a file, serving repeats from memory.
    pub fn get_file_info(&self, path: &str) -> Result<Arc<FileStatus>> {
        if let Some(hit) = self.cache.get(&path.to_string()) {
            self.metrics.incr(names::FHC_HITS);
            return Ok(hit);
        }
        self.metrics.incr(names::FHC_MISSES);
        let status = Arc::new(self.fs.get_file_info(path)?);
        self.cache.put(path.to_string(), status.clone());
        Ok(status)
    }

    /// Drop one cached handle.
    pub fn invalidate(&self, path: &str) {
        self.cache.invalidate(&path.to_string());
    }

    /// The underlying filesystem.
    pub fn filesystem(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }
}

/// Caches decoded file footers ([`FileMetadata`]) per worker.
///
/// Counters: `ftc.hits`, `ftc.misses`.
#[derive(Clone)]
pub struct FooterCache {
    handles: FileHandleCache,
    cache: LruCache<String, FileMetadata>,
    metrics: CounterSet,
}

impl FooterCache {
    /// Footer cache of at most `capacity` footers, stacked on a handle cache
    /// (footer reads need the file size, so a footer hit also saves the
    /// `getFileInfo`).
    pub fn new(handles: FileHandleCache, capacity: usize, metrics: CounterSet) -> FooterCache {
        FooterCache { handles, cache: LruCache::new(capacity), metrics }
    }

    /// Load a file's footer, serving repeats from memory.
    pub fn get_footer(&self, path: &str) -> Result<Arc<FileMetadata>> {
        if let Some(hit) = self.cache.get(&path.to_string()) {
            self.metrics.incr(names::FTC_HITS);
            return Ok(hit);
        }
        self.metrics.incr(names::FTC_MISSES);
        let status = self.handles.get_file_info(path)?;
        let source = FsSource::open_with_size(self.handles.filesystem().clone(), path, status.size);
        let meta = Arc::new(read_metadata(&source)?);
        self.cache.put(path.to_string(), meta.clone());
        Ok(meta)
    }

    /// The handle cache beneath.
    pub fn handle_cache(&self) -> &FileHandleCache {
        &self.handles
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Drop one cached footer — and its file handle, whose cached size
    /// would otherwise misplace the footer of a rewritten file.
    pub fn invalidate(&self, path: &str) {
        self.cache.invalidate(&path.to_string());
        self.handles.invalidate(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field, Page, Schema};
    use presto_parquet::{FileWriter, WriterMode, WriterProperties};
    use presto_storage::HdfsFileSystem;

    fn hdfs_with_parquet(paths: &[&str]) -> HdfsFileSystem {
        let hdfs = HdfsFileSystem::with_defaults();
        let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
        for p in paths {
            let mut w =
                FileWriter::new(schema.clone(), WriterProperties::default(), WriterMode::Native)
                    .unwrap();
            w.write_page(&Page::new(vec![Block::bigint(vec![1, 2, 3])]).unwrap()).unwrap();
            hdfs.backing_store().write(p, &w.finish().unwrap()).unwrap();
        }
        hdfs
    }

    #[test]
    fn handle_cache_absorbs_get_file_info() {
        let hdfs = hdfs_with_parquet(&["/t/f1"]);
        let cache = FileHandleCache::new(Arc::new(hdfs.clone()), 16, CounterSet::new());
        for _ in 0..10 {
            assert!(cache.get_file_info("/t/f1").unwrap().size > 0);
        }
        assert_eq!(cache.metrics().get(names::FHC_MISSES), 1);
        assert_eq!(cache.metrics().get(names::FHC_HITS), 9);
        assert_eq!(hdfs.metrics().get(names::HDFS_GET_FILE_INFO), 1);
    }

    #[test]
    fn footer_cache_decodes_once() {
        let hdfs = hdfs_with_parquet(&["/t/f1"]);
        let metrics = CounterSet::new();
        let handles = FileHandleCache::new(Arc::new(hdfs.clone()), 16, metrics.clone());
        let footers = FooterCache::new(handles, 16, metrics.clone());
        for _ in 0..10 {
            let meta = footers.get_footer("/t/f1").unwrap();
            assert_eq!(meta.num_rows, 3);
        }
        assert_eq!(metrics.get(names::FTC_MISSES), 1);
        assert_eq!(metrics.get(names::FTC_HITS), 9);
        // footer bytes were read from storage exactly twice (tail + body)
        assert_eq!(hdfs.metrics().get(names::HDFS_READ_OPS), 2);
    }

    #[test]
    fn capacity_eviction_reloads() {
        let hdfs = hdfs_with_parquet(&["/t/f1", "/t/f2", "/t/f3"]);
        let metrics = CounterSet::new();
        let handles = FileHandleCache::new(Arc::new(hdfs), 16, metrics.clone());
        let footers = FooterCache::new(handles, 2, metrics.clone());
        footers.get_footer("/t/f1").unwrap();
        footers.get_footer("/t/f2").unwrap();
        footers.get_footer("/t/f3").unwrap(); // evicts f1
        footers.get_footer("/t/f1").unwrap(); // miss again
        assert_eq!(metrics.get(names::FTC_MISSES), 4);
    }

    #[test]
    fn invalidate_forces_reload() {
        let hdfs = hdfs_with_parquet(&["/t/f1"]);
        let metrics = CounterSet::new();
        let handles = FileHandleCache::new(Arc::new(hdfs), 4, metrics.clone());
        let footers = FooterCache::new(handles, 4, metrics.clone());
        footers.get_footer("/t/f1").unwrap();
        footers.invalidate("/t/f1");
        footers.get_footer("/t/f1").unwrap();
        assert_eq!(metrics.get(names::FTC_MISSES), 2);
    }
}
