//! The distributed metadata tier: file lists, footers, and partition
//! values under TTL + table-version invalidation.
//!
//! *Metadata Caching in Presto* treats metadata as its own cache tier with
//! its own consistency rules, distinct from data chunks: metadata is tiny,
//! read on every query, and **goes stale by table mutation, not by byte
//! churn**. Two staleness guards compose here:
//!
//! - **TTL**: every entry expires `ttl` after it was stored (virtual
//!   clock), bounding how long a missed invalidation can linger.
//! - **Table version**: each table carries a monotonic version; DDL
//!   (schema bump, partition add, compaction) calls
//!   [`MetadataCache::bump_table_version`] and every entry stored under
//!   the old version is refused on its next lookup. This is what makes a
//!   schema bump *immediately* invisible to cached footers — the property
//!   `tests/cache_distribution.rs` pins.
//!
//! Entries are stored in a `BTreeMap` (not a hash map): eviction scans and
//! digests iterate in key order, so same-seed runs are bit-identical.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use presto_common::metrics::{names, CounterSet, Fnv};
use presto_common::SimClock;

/// What kind of metadata an entry holds. Part of the key: a table's file
/// list and one of its footers may share a path string without colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetaKind {
    /// A partition's file listing (§VII.A).
    FileList,
    /// A file's decoded footer / file-level metadata (§VII.A).
    Footer,
    /// A table's partition values (what the planner prunes against).
    PartitionValues,
}

impl MetaKind {
    fn tag(self) -> u64 {
        match self {
            MetaKind::FileList => 1,
            MetaKind::Footer => 2,
            MetaKind::PartitionValues => 3,
        }
    }
}

struct MetaEntry<V> {
    value: Arc<V>,
    /// Table version at store time; refused once the table moves on.
    version: u64,
    /// Virtual instant the entry was stored; refused once `ttl` passes.
    stored_at: Duration,
    /// Recency for capacity eviction.
    tick: u64,
}

struct MetaState<V> {
    entries: std::collections::BTreeMap<(String, MetaKind, String), MetaEntry<V>>,
    versions: std::collections::BTreeMap<String, u64>,
    tick: u64,
}

/// The metadata tier. Generic over the cached value (file lists, decoded
/// parquet footers, partition-value vectors all share the policy).
/// Cloning shares the cache.
///
/// Counters: `dist.meta_hits`, `dist.meta_misses`, `dist.meta_expired`,
/// `dist.meta_stale`, `dist.meta_invalidations`.
pub struct MetadataCache<V> {
    state: Arc<Mutex<MetaState<V>>>,
    clock: SimClock,
    ttl: Duration,
    capacity: usize,
    metrics: CounterSet,
}

impl<V> Clone for MetadataCache<V> {
    fn clone(&self) -> Self {
        MetadataCache {
            state: self.state.clone(),
            clock: self.clock.clone(),
            ttl: self.ttl,
            capacity: self.capacity,
            metrics: self.metrics.clone(),
        }
    }
}

impl<V> MetadataCache<V> {
    /// A tier holding at most `capacity` entries, each valid for `ttl` of
    /// virtual time and for the storing table version only.
    pub fn new(
        capacity: usize,
        ttl: Duration,
        clock: SimClock,
        metrics: CounterSet,
    ) -> MetadataCache<V> {
        MetadataCache {
            state: Arc::new(Mutex::new(MetaState {
                entries: std::collections::BTreeMap::new(),
                versions: std::collections::BTreeMap::new(),
                tick: 0,
            })),
            clock,
            ttl,
            capacity: capacity.max(1),
            metrics,
        }
    }

    /// The current version of `table` (0 until first bumped).
    pub fn table_version(&self, table: &str) -> u64 {
        self.state.lock().versions.get(table).copied().unwrap_or(0)
    }

    /// Declare that `table` changed (schema bump, partition add,
    /// compaction): every entry cached under the old version is refused on
    /// its next lookup. Returns the new version.
    pub fn bump_table_version(&self, table: &str) -> u64 {
        let mut state = self.state.lock();
        let v = state.versions.entry(table.to_string()).or_insert(0);
        *v += 1;
        let v = *v;
        drop(state);
        self.metrics.incr(names::DIST_META_INVALIDATIONS);
        v
    }

    /// Store metadata for `(table, kind, path)`, stamped with the table's
    /// current version and the current virtual instant.
    pub fn put(&self, table: &str, kind: MetaKind, path: &str, value: V) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        let version = state.versions.get(table).copied().unwrap_or(0);
        if state.entries.len() >= self.capacity
            && !state.entries.contains_key(&(table.to_string(), kind, path.to_string()))
        {
            // evict the stalest entry; ticks are unique so the victim is too
            if let Some(victim) =
                state.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            {
                state.entries.remove(&victim);
            }
        }
        state.entries.insert(
            (table.to_string(), kind, path.to_string()),
            MetaEntry { value: Arc::new(value), version, stored_at: now, tick },
        );
    }

    /// Look up metadata. Absent, TTL-expired, and version-stale entries
    /// all miss (expired/stale ones are dropped and separately counted), so
    /// a stale footer can never be served after a schema bump.
    pub fn get(&self, table: &str, kind: MetaKind, path: &str) -> Option<Arc<V>> {
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        let key = (table.to_string(), kind, path.to_string());
        let current = state.versions.get(table).copied().unwrap_or(0);
        let verdict = match state.entries.get_mut(&key) {
            None => None,
            Some(e) if e.version != current => Some(false),
            Some(e) if now.saturating_sub(e.stored_at) > self.ttl => Some(true),
            Some(e) => {
                e.tick = tick;
                let value = e.value.clone();
                drop(state);
                self.metrics.incr(names::DIST_META_HITS);
                return Some(value);
            }
        };
        if let Some(expired) = verdict {
            state.entries.remove(&key);
            self.metrics.incr(if expired {
                names::DIST_META_EXPIRED
            } else {
                names::DIST_META_STALE
            });
        }
        drop(state);
        self.metrics.incr(names::DIST_META_MISSES);
        None
    }

    /// Entries currently resident (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Canonical FNV fold of keys, versions, and timestamps — iteration is
    /// over ordered maps, so same-seed runs fold bit-identically. Values
    /// are represented by their stamp, not their bytes, keeping the digest
    /// value-type agnostic.
    pub fn digest(&self) -> u64 {
        let state = self.state.lock();
        let mut h = Fnv::new();
        h.write(state.entries.len() as u64);
        for ((table, kind, path), e) in &state.entries {
            h.write_str(table);
            h.write(kind.tag());
            h.write_str(path);
            h.write(e.version);
            h.write(e.stored_at.as_micros() as u64);
        }
        h.write(state.versions.len() as u64);
        for (table, v) in &state.versions {
            h.write_str(table);
            h.write(*v);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(ttl_us: u64) -> (MetadataCache<Vec<String>>, SimClock) {
        let clock = SimClock::new();
        (
            MetadataCache::new(8, Duration::from_micros(ttl_us), clock.clone(), CounterSet::new()),
            clock,
        )
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let (cache, clock) = cache(100);
        cache.put("t", MetaKind::FileList, "/t/p=1", vec!["a".into()]);
        clock.advance(Duration::from_micros(100));
        assert!(cache.get("t", MetaKind::FileList, "/t/p=1").is_some(), "at the TTL edge");
        clock.advance(Duration::from_micros(1));
        assert!(cache.get("t", MetaKind::FileList, "/t/p=1").is_none(), "past the TTL");
        assert_eq!(cache.metrics().get(names::DIST_META_EXPIRED), 1);
    }

    #[test]
    fn version_bump_invalidates_immediately() {
        let (cache, _clock) = cache(1_000_000);
        cache.put("t", MetaKind::Footer, "/t/f0", vec!["v1-footer".into()]);
        assert!(cache.get("t", MetaKind::Footer, "/t/f0").is_some());
        cache.bump_table_version("t");
        assert!(cache.get("t", MetaKind::Footer, "/t/f0").is_none(), "stale version served");
        assert_eq!(cache.metrics().get(names::DIST_META_STALE), 1);
        // re-stored under the new version it serves again
        cache.put("t", MetaKind::Footer, "/t/f0", vec!["v2-footer".into()]);
        let hit = cache.get("t", MetaKind::Footer, "/t/f0").expect("fresh entry");
        assert_eq!(hit[0], "v2-footer");
    }

    #[test]
    fn bump_only_touches_its_own_table() {
        let (cache, _clock) = cache(1_000_000);
        cache.put("a", MetaKind::PartitionValues, "", vec!["p=1".into()]);
        cache.put("b", MetaKind::PartitionValues, "", vec!["p=9".into()]);
        cache.bump_table_version("a");
        assert!(cache.get("a", MetaKind::PartitionValues, "").is_none());
        assert!(cache.get("b", MetaKind::PartitionValues, "").is_some());
    }

    #[test]
    fn kinds_do_not_collide_and_capacity_evicts() {
        let (cache, _clock) = cache(1_000_000);
        cache.put("t", MetaKind::FileList, "/t/x", vec!["list".into()]);
        cache.put("t", MetaKind::Footer, "/t/x", vec!["footer".into()]);
        assert_eq!(cache.get("t", MetaKind::FileList, "/t/x").expect("list")[0], "list");
        assert_eq!(cache.get("t", MetaKind::Footer, "/t/x").expect("footer")[0], "footer");
        for i in 0..10 {
            cache.put("t", MetaKind::Footer, &format!("/t/f{i}"), vec![]);
        }
        assert!(cache.len() <= 8);
    }

    #[test]
    fn digest_tracks_state() {
        let (a, _ca) = cache(50);
        let (b, _cb) = cache(50);
        a.put("t", MetaKind::FileList, "/t", vec!["x".into()]);
        b.put("t", MetaKind::FileList, "/t", vec!["x".into()]);
        assert_eq!(a.digest(), b.digest());
        b.bump_table_version("t");
        assert_ne!(a.digest(), b.digest());
    }
}
