//! A small thread-safe LRU cache used by the worker-side caches.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

struct Inner<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    tick: u64,
    capacity: usize,
}

/// Thread-safe LRU cache with entry-count capacity. Values are shared via
/// `Arc` so hits avoid cloning payloads. Cloning the cache shares it.
pub struct LruCache<K: Eq + Hash + Clone, V> {
    inner: Arc<Mutex<Inner<K, V>>>,
}

impl<K: Eq + Hash + Clone, V> Clone for LruCache<K, V> {
    fn clone(&self) -> Self {
        LruCache { inner: self.inner.clone() }
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Cache holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            })),
        }
    }

    /// Look up a key, refreshing its recency.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|(v, used)| {
            *used = tick;
            v.clone()
        })
    }

    /// Insert a value, evicting the least recently used entry when full.
    pub fn put(&self, key: K, value: Arc<V>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= inner.capacity && !inner.map.contains_key(&key) {
            // Evict the stalest entry. Linear scan is fine at the capacities
            // these caches run with (hundreds to a few thousand entries).
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (value, tick));
    }

    /// Remove one entry.
    pub fn invalidate(&self, key: &K) {
        self.inner.lock().map.remove(key);
    }

    /// Snapshot of every entry, without touching recency.
    ///
    /// The order is the backing map's iteration order and therefore
    /// unspecified — callers that need a stable order (e.g. deterministic
    /// cache migration on worker decommission) must sort by key.
    pub fn entries(&self) -> Vec<(K, Arc<V>)> {
        self.inner.lock().map.iter().map(|(k, (v, _))| (k.clone(), v.clone())).collect()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_and_capacity_eviction() {
        let cache: LruCache<&str, i32> = LruCache::new(2);
        cache.put("a", Arc::new(1));
        cache.put("b", Arc::new(2));
        assert_eq!(*cache.get(&"a").unwrap(), 1);
        // "b" is now least recently used; inserting "c" evicts it
        cache.put("c", Arc::new(3));
        assert!(cache.get(&"b").is_none());
        assert_eq!(*cache.get(&"a").unwrap(), 1);
        assert_eq!(*cache.get(&"c").unwrap(), 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache: LruCache<&str, i32> = LruCache::new(1);
        cache.put("a", Arc::new(1));
        cache.put("a", Arc::new(2));
        assert_eq!(*cache.get(&"a").unwrap(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache: LruCache<String, i32> = LruCache::new(4);
        cache.put("x".into(), Arc::new(1));
        cache.invalidate(&"x".to_string());
        assert!(cache.get(&"x".to_string()).is_none());
        cache.put("y".into(), Arc::new(2));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_across_clones_and_threads() {
        let cache: LruCache<u32, u32> = LruCache::new(64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..16 {
                        c.put(t * 16 + i, Arc::new(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.len(), 64);
    }
}
