//! The cluster-wide tiered cache keyed by consistent hashing.
//!
//! §VII's worker-side caches only pay off if the scheduler keeps sending a
//! split to the worker that cached its chunks. This module is the cache
//! half of that contract: chunk ownership is decided by the same
//! [`HashRing`] the affinity scheduler consults, so placement and
//! ownership agree *by construction* — there is no second hash path.
//!
//! Three tiers:
//!
//! - **Data**: column chunks (key = file + row-group + column), one LRU
//!   shard per worker, fronted by [`LruCache`]. Admission is owner-aware —
//!   a put on a worker that does not own the key is refused (counted, not
//!   an error), except that *hot* keys (accessed at least
//!   [`DistributedCacheConfig::hot_threshold`] times) may also be admitted
//!   at their second-choice ring successor, so one popular partition does
//!   not bottleneck a single worker.
//! - **Metadata**: file lists, footers, partition values with TTL +
//!   table-version invalidation ([`MetadataCache`]).
//! - **Shadow**: a key-only ghost LRU ([`ShadowCache`]) fed by every data
//!   lookup, estimating the hit-rate-vs-capacity curve without payloads.
//!
//! Lifecycle: the ring is shared with the owner (`Arc<RwLock<HashRing>>`),
//! and membership changes flow through [`DistributedCache::worker_joined`]
//! / [`worker_removed`](DistributedCache::worker_removed), which migrate
//! (graceful drain) or drop (revocation) the departing shard and rebalance
//! entries whose ownership moved — every move counted as `dist.remapped`.
//! Lock order: `ring` before `shards` (and never the reverse), so the
//! workspace lock graph stays acyclic.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use presto_common::metrics::{names, CounterSet, Fnv};
use presto_common::{HashRing, SimClock};

use crate::lru::LruCache;
use crate::metadata::MetadataCache;
use crate::shadow::ShadowCache;

/// Key of one cached column chunk: the paper's Alluxio-style data cache
/// keys on (file, row-group, column) so two queries projecting different
/// columns of one row group share nothing but what they both read.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkKey {
    /// File path (immutable once written — warehouse files never change
    /// in place; rewrites get new paths).
    pub file: String,
    /// Row group within the file.
    pub row_group: u32,
    /// Column ordinal within the row group.
    pub column: u32,
}

impl ChunkKey {
    /// Canonical string form — the ring key. The same string must be used
    /// for placement and for ownership, which is why it lives here.
    pub fn ring_key(&self) -> String {
        format!("{}#{}#{}", self.file, self.row_group, self.column)
    }
}

/// Distributed-cache knobs.
#[derive(Debug, Clone)]
pub struct DistributedCacheConfig {
    /// Data-tier entries per worker shard.
    pub chunk_capacity: usize,
    /// Accesses at which a key counts as hot and earns a second-choice
    /// replica (0 disables replication).
    pub hot_threshold: u64,
    /// Metadata-tier entries.
    pub metadata_capacity: usize,
    /// Metadata TTL (virtual time).
    pub metadata_ttl: Duration,
    /// Largest capacity the shadow curve resolves.
    pub shadow_capacity: usize,
}

impl Default for DistributedCacheConfig {
    fn default() -> Self {
        DistributedCacheConfig {
            chunk_capacity: 256,
            hot_threshold: 4,
            metadata_capacity: 1024,
            metadata_ttl: Duration::from_secs(60),
            shadow_capacity: 4096,
        }
    }
}

struct DataState {
    /// Per-worker data shards — a `BTreeMap` so rebalances and digests walk
    /// workers in id order (bit-identical same-seed runs).
    shards: BTreeMap<u32, LruCache<ChunkKey, Vec<u8>>>,
    /// Access heat per ring key, for second-choice replication. Reset
    /// wholesale when it outgrows its bound — a deterministic decay.
    heat: BTreeMap<String, u64>,
}

/// The cluster-wide tiered cache. Cloning shares all tiers.
///
/// Counters: `dist.data_hits` / `_misses` / `_evictions` / `_rejected` /
/// `_replicated`, `dist.meta_*`, `dist.remapped_entries`,
/// `dist.dropped_entries`, `shadow.accesses`.
#[derive(Clone)]
pub struct DistributedCache {
    config: DistributedCacheConfig,
    /// The one ring placement and ownership share. Writes happen on
    /// lifecycle events only; the scan path reads.
    ring: Arc<RwLock<HashRing>>,
    data: Arc<Mutex<DataState>>,
    meta: MetadataCache<Vec<u8>>,
    shadow: Arc<ShadowCache>,
    metrics: CounterSet,
}

/// Heat entries tolerated before the tracker resets (deterministic decay).
const HEAT_BOUND: usize = 1 << 16;

impl DistributedCache {
    /// A cache sharing `ring` with its owner (typically the cluster's
    /// affinity scheduler). Workers already on the ring get shards.
    pub fn new(
        config: DistributedCacheConfig,
        ring: Arc<RwLock<HashRing>>,
        clock: SimClock,
        metrics: CounterSet,
    ) -> DistributedCache {
        let shards = ring
            .read()
            .workers()
            .into_iter()
            .map(|w| (w, LruCache::new(config.chunk_capacity)))
            .collect();
        let meta = MetadataCache::new(
            config.metadata_capacity,
            config.metadata_ttl,
            clock,
            metrics.clone(),
        );
        let shadow = Arc::new(ShadowCache::new(config.shadow_capacity, metrics.clone()));
        DistributedCache {
            config,
            ring,
            data: Arc::new(Mutex::new(DataState { shards, heat: BTreeMap::new() })),
            meta,
            shadow,
            metrics,
        }
    }

    /// A standalone cache over its own private ring (benches, tests).
    pub fn standalone(
        config: DistributedCacheConfig,
        ring: HashRing,
        clock: SimClock,
        metrics: CounterSet,
    ) -> DistributedCache {
        DistributedCache::new(config, Arc::new(RwLock::new(ring)), clock, metrics)
    }

    /// The shared ring handle (the scheduler side of the contract).
    pub fn ring(&self) -> &Arc<RwLock<HashRing>> {
        &self.ring
    }

    /// The metadata tier.
    pub fn metadata(&self) -> &MetadataCache<Vec<u8>> {
        &self.meta
    }

    /// The shadow (ghost) cache fed by every data lookup.
    pub fn shadow(&self) -> &ShadowCache {
        &self.shadow
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// The worker that owns `key` under the current ring.
    pub fn owner(&self, key: &ChunkKey) -> Option<u32> {
        self.ring.read().owner(&key.ring_key())
    }

    /// Workers allowed to admit `key` right now: the owner, plus the
    /// second-choice successor once the key is hot.
    pub fn admitting_workers(&self, key: &ChunkKey) -> Vec<u32> {
        let ring_key = key.ring_key();
        let ring = self.ring.read();
        let hot = self.config.hot_threshold > 0
            && self.data.lock().heat.get(&ring_key).copied().unwrap_or(0)
                >= self.config.hot_threshold;
        ring.successors(&ring_key, if hot { 2 } else { 1 })
    }

    /// Look up a chunk on `worker`'s shard, feeding the shadow cache and
    /// the heat tracker. A lookup on a worker with no shard (departed,
    /// never joined) is a plain miss.
    pub fn get(&self, worker: u32, key: &ChunkKey) -> Option<Arc<Vec<u8>>> {
        let ring_key = key.ring_key();
        self.shadow.access(&ring_key);
        let mut data = self.data.lock();
        if data.heat.len() >= HEAT_BOUND {
            data.heat.clear();
        }
        *data.heat.entry(ring_key).or_insert(0) += 1;
        let hit = data.shards.get(&worker).and_then(|shard| shard.get(key));
        drop(data);
        match hit {
            Some(bytes) => {
                self.metrics.incr(names::DIST_DATA_HITS);
                Some(bytes)
            }
            None => {
                self.metrics.incr(names::DIST_DATA_MISSES);
                None
            }
        }
    }

    /// Store a chunk on `worker`'s shard, subject to owner-aware admission:
    /// refused (returns false, counted `dist.data_rejected`) unless
    /// `worker` owns the key — or is its second-choice successor and the
    /// key is hot (counted `dist.data_replicated`). Evictions the admit
    /// causes are counted `dist.data_evictions`.
    pub fn put(&self, worker: u32, key: ChunkKey, bytes: Vec<u8>) -> bool {
        // lock order: ring before the data state, matching every other path
        let admitters = self.admitting_workers(&key);
        let Some(&primary) = admitters.first() else {
            self.metrics.incr(names::DIST_DATA_REJECTED);
            return false;
        };
        if !admitters.contains(&worker) {
            self.metrics.incr(names::DIST_DATA_REJECTED);
            return false;
        }
        let replica = worker != primary;
        let data = self.data.lock();
        let Some(shard) = data.shards.get(&worker) else {
            drop(data);
            self.metrics.incr(names::DIST_DATA_REJECTED);
            return false;
        };
        let evicts = shard.len() >= self.config.chunk_capacity
            && !shard.entries().iter().any(|(k, _)| *k == key);
        shard.put(key, Arc::new(bytes));
        drop(data);
        if evicts {
            self.metrics.incr(names::DIST_DATA_EVICTIONS);
        }
        if replica {
            self.metrics.incr(names::DIST_DATA_REPLICATED);
        }
        true
    }

    /// Entries resident across every data shard.
    pub fn len(&self) -> usize {
        self.data.lock().shards.values().map(LruCache::len).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted snapshot of one shard's keys (tests, migration audits).
    pub fn shard_keys(&self, worker: u32) -> Vec<ChunkKey> {
        let mut keys: Vec<ChunkKey> = self
            .data
            .lock()
            .shards
            .get(&worker)
            .map(|s| s.entries().into_iter().map(|(k, _)| k).collect())
            .unwrap_or_default();
        keys.sort();
        keys
    }

    /// Lifecycle: `worker` joined the fleet (the caller has already added
    /// it to the shared ring). Gives it an empty shard, then migrates every
    /// entry whose ownership moved to it — counted `dist.remapped_entries`.
    /// Returns the number migrated.
    pub fn worker_joined(&self, worker: u32) -> u64 {
        // lock order: ring before the data state; ownership is computed
        // against a ring *clone* with no guard held, so the lock graph
        // keeps its single ring → data direction
        let ring_guard = self.ring.read();
        let ring = ring_guard.clone();
        drop(ring_guard);
        let mut remapped = 0u64;
        let snapshot: Vec<(u32, ChunkKey, Arc<Vec<u8>>)> = {
            let data = self.data.lock();
            let mut all = Vec::new();
            for (&from, shard) in &data.shards {
                if from == worker {
                    continue;
                }
                let mut entries = shard.entries();
                entries.sort_by(|(a, _), (b, _)| a.cmp(b));
                for (key, bytes) in entries {
                    all.push((from, key, bytes));
                }
            }
            all
        };
        let moves: Vec<(u32, ChunkKey, Arc<Vec<u8>>)> = snapshot
            .into_iter()
            .filter(|(_, key, _)| ring.owner(&key.ring_key()) == Some(worker))
            .collect();
        // clone the shared shard handles out of the map so every put and
        // invalidate below runs with no data guard held
        let mut data = self.data.lock();
        let target = data
            .shards
            .entry(worker)
            .or_insert_with(|| LruCache::new(self.config.chunk_capacity))
            .clone();
        let sources: BTreeMap<u32, LruCache<ChunkKey, Vec<u8>>> = moves
            .iter()
            .filter_map(|(from, _, _)| data.shards.get(from).map(|s| (*from, s.clone())))
            .collect();
        drop(data);
        for (from, key, bytes) in moves {
            if let Some(source) = sources.get(&from) {
                source.invalidate(&key);
            }
            target.put(key, bytes);
            remapped += 1;
        }
        if remapped > 0 {
            self.metrics.add(names::DIST_REMAPPED, remapped);
        }
        remapped
    }

    /// Lifecycle: `worker` left the fleet (the caller has already removed
    /// it from the shared ring). `graceful` migrates its entries to each
    /// key's ring successor (`dist.remapped_entries`); a revocation drops
    /// them (`dist.dropped_entries`). Returns entries migrated or dropped.
    pub fn worker_removed(&self, worker: u32, graceful: bool) -> u64 {
        // lock order: ring before the data state; successor lookups happen
        // against a ring *clone* with no guard held (single ring → data
        // direction in the lock graph)
        let ring_guard = self.ring.read();
        let ring = ring_guard.clone();
        drop(ring_guard);
        let mut data = self.data.lock();
        let Some(shard) = data.shards.remove(&worker) else { return 0 };
        drop(data);
        let mut entries = shard.entries();
        if !graceful {
            let dropped = entries.len() as u64;
            if dropped > 0 {
                self.metrics.add(names::DIST_DROPPED, dropped);
            }
            return dropped;
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        let moves: Vec<(u32, ChunkKey, Arc<Vec<u8>>)> = entries
            .into_iter()
            .filter_map(|(key, bytes)| {
                ring.owner(&key.ring_key()).map(|successor| (successor, key, bytes))
            })
            .collect();
        // clone the shared target handles so the puts below run with no
        // data guard held
        let targets: BTreeMap<u32, LruCache<ChunkKey, Vec<u8>>> = {
            let data = self.data.lock();
            moves
                .iter()
                .filter_map(|(to, _, _)| data.shards.get(to).map(|s| (*to, s.clone())))
                .collect()
        };
        let mut migrated = 0u64;
        for (successor, key, bytes) in moves {
            if let Some(target) = targets.get(&successor) {
                target.put(key, bytes);
                migrated += 1;
            }
        }
        if migrated > 0 {
            self.metrics.add(names::DIST_REMAPPED, migrated);
        }
        migrated
    }

    /// Canonical FNV fold of every tier: ring membership, per-shard keys in
    /// (worker, key) order, heat, metadata, and shadow state. Bit-identical
    /// across same-seed runs — the revocation-storm determinism check.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        // fold a ring clone so no guard is held across the digest calls
        let ring_guard = self.ring.read();
        let ring = ring_guard.clone();
        drop(ring_guard);
        h.write(ring.digest());
        let data = self.data.lock();
        h.write(data.shards.len() as u64);
        for (&worker, shard) in &data.shards {
            let mut keys: Vec<ChunkKey> = shard.entries().into_iter().map(|(k, _)| k).collect();
            keys.sort();
            h.write(u64::from(worker));
            h.write(keys.len() as u64);
            for key in keys {
                h.write_str(&key.ring_key());
            }
        }
        h.write(data.heat.len() as u64);
        for (key, count) in &data.heat {
            h.write_str(key);
            h.write(*count);
        }
        drop(data);
        h.write(self.meta.digest());
        h.write(self.shadow.digest());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::ring::{DEFAULT_RING_SEED, DEFAULT_VNODES};

    fn chunk(i: usize) -> ChunkKey {
        ChunkKey {
            file: format!("/warehouse/t/part-{}", i % 40),
            row_group: (i % 4) as u32,
            column: (i % 3) as u32,
        }
    }

    fn cache_over(workers: std::ops::Range<u32>) -> DistributedCache {
        DistributedCache::standalone(
            DistributedCacheConfig::default(),
            HashRing::with_workers(DEFAULT_RING_SEED, DEFAULT_VNODES, workers),
            SimClock::new(),
            CounterSet::new(),
        )
    }

    #[test]
    fn only_the_owner_admits_a_cold_key() {
        let cache = cache_over(0..4);
        let key = chunk(0);
        let owner = cache.owner(&key).unwrap();
        let stranger = (0..4).find(|w| *w != owner).unwrap();
        assert!(!cache.put(stranger, key.clone(), vec![1]));
        assert!(cache.put(owner, key.clone(), vec![1]));
        assert!(cache.get(owner, &key).is_some());
        assert!(cache.get(stranger, &key).is_none());
        assert_eq!(cache.metrics().get(names::DIST_DATA_REJECTED), 1);
    }

    #[test]
    fn hot_keys_earn_a_second_choice_replica() {
        let cache = cache_over(0..4);
        let key = chunk(7);
        let ring_key = key.ring_key();
        let succ = cache.ring().read().successors(&ring_key, 2);
        let (owner, second) = (succ[0], succ[1]);
        // cold: the second choice is refused
        assert!(!cache.put(second, key.clone(), vec![2]));
        // heat it past the threshold
        for _ in 0..DistributedCacheConfig::default().hot_threshold {
            cache.get(owner, &key);
        }
        assert!(cache.put(second, key.clone(), vec![2]), "hot key must replicate");
        assert_eq!(cache.metrics().get(names::DIST_DATA_REPLICATED), 1);
        assert!(cache.get(second, &key).is_some());
    }

    #[test]
    fn graceful_removal_migrates_to_ring_successors() {
        let cache = cache_over(0..4);
        // fill each key at its owner
        let keys: Vec<ChunkKey> = (0..60).map(chunk).collect();
        for key in &keys {
            let owner = cache.owner(key).unwrap();
            assert!(cache.put(owner, key.clone(), vec![0]));
        }
        let total = cache.len();
        let victim = 2u32;
        let victim_entries = cache.shard_keys(victim).len() as u64;
        cache.ring().write().remove(victim);
        let migrated = cache.worker_removed(victim, true);
        assert_eq!(migrated, victim_entries);
        assert_eq!(cache.len(), total, "graceful drain loses nothing");
        // every entry now lives on its post-removal owner
        for w in [0u32, 1, 3] {
            for key in cache.shard_keys(w) {
                assert_eq!(cache.owner(&key), Some(w), "{key:?} on the wrong shard");
            }
        }
        assert_eq!(cache.metrics().get(names::DIST_REMAPPED), victim_entries);
    }

    #[test]
    fn revocation_drops_the_shard() {
        let cache = cache_over(0..3);
        for key in (0..30).map(chunk) {
            let owner = cache.owner(&key).unwrap();
            cache.put(owner, key, vec![0]);
        }
        let victim_entries = cache.shard_keys(1).len() as u64;
        assert!(victim_entries > 0);
        cache.ring().write().remove(1);
        let dropped = cache.worker_removed(1, false);
        assert_eq!(dropped, victim_entries);
        assert_eq!(cache.metrics().get(names::DIST_DROPPED), victim_entries);
    }

    #[test]
    fn join_rebalances_moved_ownership() {
        let cache = cache_over(0..3);
        for key in (0..60).map(chunk) {
            let owner = cache.owner(&key).unwrap();
            cache.put(owner, key, vec![0]);
        }
        let total = cache.len();
        cache.ring().write().insert(9);
        let remapped = cache.worker_joined(9);
        assert!(remapped > 0, "a new worker must take over some keys");
        assert_eq!(cache.len(), total);
        for w in [0u32, 1, 2, 9] {
            for key in cache.shard_keys(w) {
                assert_eq!(cache.owner(&key), Some(w));
            }
        }
    }

    #[test]
    fn same_trace_same_digest() {
        let run = || {
            let cache = cache_over(0..4);
            for i in 0..200 {
                let key = chunk(i);
                let owner = cache.owner(&key).unwrap();
                if cache.get(owner, &key).is_none() {
                    cache.put(owner, key, vec![i as u8]);
                }
            }
            cache.ring().write().remove(1);
            cache.worker_removed(1, true);
            cache.digest()
        };
        assert_eq!(run(), run());
    }
}
