//! Shadow cache: key-only ghost entries that estimate the hit-rate-vs-
//! capacity curve of an LRU cache without holding any data.
//!
//! *Data Caching for Enterprise-Grade Petabyte-Scale OLAP* sizes working
//! sets this way: run the real access stream through a ghost LRU that
//! remembers only key fingerprints, record each re-access's **stack
//! distance** (its position in the recency order), and the classic Mattson
//! inclusion property does the rest — an LRU of capacity `C` hits exactly
//! the accesses whose stack distance is `< C`, so one pass yields the whole
//! curve for every capacity up to the ghost list's bound.

use parking_lot::Mutex;
use presto_common::metrics::{names, CounterSet, Fnv};

struct ShadowState {
    /// Ghost entries, most recent first — key fingerprints only.
    stack: Vec<u64>,
    /// `distances[d]` = re-accesses observed at stack distance exactly `d`.
    distances: Vec<u64>,
    total: u64,
}

/// A ghost LRU recording stack distances. Cloning is not provided — one
/// shadow per cache; share it behind the owning cache's handle.
///
/// Counter: `shadow.accesses`.
pub struct ShadowCache {
    state: Mutex<ShadowState>,
    max_capacity: usize,
    metrics: CounterSet,
}

impl ShadowCache {
    /// A shadow resolving hit rates for capacities up to `max_capacity`
    /// entries (clamped to at least 1). Memory cost: one `u64` per ghost
    /// entry plus the distance histogram — no payloads.
    pub fn new(max_capacity: usize, metrics: CounterSet) -> ShadowCache {
        let max_capacity = max_capacity.max(1);
        ShadowCache {
            state: Mutex::new(ShadowState {
                stack: Vec::new(),
                distances: vec![0; max_capacity],
                total: 0,
            }),
            max_capacity,
            metrics,
        }
    }

    /// The largest capacity this shadow can estimate.
    pub fn max_capacity(&self) -> usize {
        self.max_capacity
    }

    /// Fingerprint of a key (workspace FNV fold).
    fn fingerprint(key: &str) -> u64 {
        let mut h = Fnv::new();
        h.write_str(key);
        h.finish()
    }

    /// Record one access. O(list length) — the ghost list is bounded by
    /// `max_capacity` and holds only fingerprints.
    pub fn access(&self, key: &str) {
        let fp = Self::fingerprint(key);
        let mut state = self.state.lock();
        state.total += 1;
        match state.stack.iter().position(|&g| g == fp) {
            Some(d) => {
                state.distances[d] += 1;
                state.stack.remove(d);
                state.stack.insert(0, fp);
            }
            None => {
                state.stack.insert(0, fp);
                state.stack.truncate(self.max_capacity);
            }
        }
        self.metrics.incr(names::SHADOW_ACCESSES);
    }

    /// Accesses recorded so far.
    pub fn total_accesses(&self) -> u64 {
        self.state.lock().total
    }

    /// Predicted hits an LRU of `capacity` entries would have served on the
    /// trace seen so far (capacities beyond `max_capacity` saturate).
    pub fn predicted_hits(&self, capacity: usize) -> u64 {
        let state = self.state.lock();
        state.distances.iter().take(capacity).sum()
    }

    /// Predicted hit rate at `capacity`, in `[0, 1]` (0 on an empty trace).
    pub fn predicted_hit_rate(&self, capacity: usize) -> f64 {
        let state = self.state.lock();
        if state.total == 0 {
            return 0.0;
        }
        let hits: u64 = state.distances.iter().take(capacity).sum();
        hits as f64 / state.total as f64
    }

    /// The whole estimated curve at the given capacities.
    pub fn curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities.iter().map(|&c| (c, self.predicted_hit_rate(c))).collect()
    }

    /// Canonical FNV fold of the shadow state — bit-identical across
    /// same-seed runs (the ghost list is a deterministic function of the
    /// access order).
    pub fn digest(&self) -> u64 {
        let state = self.state.lock();
        let mut h = Fnv::new();
        h.write(state.total);
        h.write(state.stack.len() as u64);
        for &g in &state.stack {
            h.write(g);
        }
        for &d in &state.distances {
            h.write(d);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use std::sync::Arc;

    /// Replay `trace` through a real LRU of `capacity`, counting hits.
    fn measured_hits(trace: &[String], capacity: usize) -> u64 {
        let lru: LruCache<String, ()> = LruCache::new(capacity);
        let mut hits = 0;
        for key in trace {
            if lru.get(key).is_some() {
                hits += 1;
            } else {
                lru.put(key.clone(), Arc::new(()));
            }
        }
        hits
    }

    fn cyclic_trace() -> Vec<String> {
        // heavy head + scanning tail: a curve with real shape
        let mut t = Vec::new();
        for round in 0..50u64 {
            for hot in 0..4u64 {
                t.push(format!("hot-{hot}"));
            }
            t.push(format!("cold-{}", round % 16));
        }
        t
    }

    #[test]
    fn shadow_matches_a_real_lru_exactly_on_the_same_trace() {
        let trace = cyclic_trace();
        let shadow = ShadowCache::new(64, CounterSet::new());
        for key in &trace {
            shadow.access(key);
        }
        for capacity in [1usize, 2, 4, 8, 16, 32] {
            assert_eq!(
                shadow.predicted_hits(capacity),
                measured_hits(&trace, capacity),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn curve_is_monotone_in_capacity() {
        let trace = cyclic_trace();
        let shadow = ShadowCache::new(64, CounterSet::new());
        for key in &trace {
            shadow.access(key);
        }
        let curve = shadow.curve(&[1, 2, 4, 8, 16, 32, 64]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "{curve:?}");
        }
    }

    #[test]
    fn digest_is_stable_and_counts_flow() {
        let metrics = CounterSet::new();
        let a = ShadowCache::new(8, metrics.clone());
        let b = ShadowCache::new(8, CounterSet::new());
        for key in ["x", "y", "x", "z", "x"] {
            a.access(key);
            b.access(key);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.total_accesses(), 5);
        assert_eq!(metrics.get(names::SHADOW_ACCESSES), 5);
        // "x" re-accessed twice at distances 1 and 2 → hits at capacity ≥ 3
        assert_eq!(a.predicted_hits(8), 2);
    }
}
