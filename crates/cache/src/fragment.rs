//! Fragment result cache + affinity scheduling (§VII).
//!
//! "A number of cache techniques are developed for Presto, including
//! Metastore versioned cache, fragment result cache, Alluxio data cache, and
//! affinity scheduler" — this module supplies two of them:
//!
//! - [`FragmentResultCache`]: a **worker-side** cache of the pages a leaf
//!   fragment produced for one (fragment, split) pair. Dashboards re-issue
//!   the same scan shapes against the same sealed splits all day; a hit
//!   skips the connector entirely.
//! - [`affinity_worker`]: consistent hashing of splits onto workers via the
//!   workspace-wide [`HashRing`], so a given split lands on the same worker
//!   across queries — without it, per-worker caches are useless the moment
//!   the worker set changes, because round-robin reshuffles everything.
//!   There used to be a second, rendezvous-hash path here; it was deleted
//!   so the scheduler and every cache tier share one hashing module and
//!   cannot disagree about ownership.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use presto_common::metrics::{names, CounterSet, Fnv};
use presto_common::ring::{DEFAULT_RING_SEED, DEFAULT_VNODES};
use presto_common::{HashRing, Page};

use crate::lru::LruCache;

/// Cache key: a fingerprint of the fragment's plan (including every pushdown
/// in its scan request) plus the identity of the split it ran over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Fingerprint of the fragment plan (pushdowns included — two queries
    /// only share results if their pushed-down scans are identical).
    pub plan_fingerprint: u64,
    /// Split identity (e.g. the file path for a Hive split).
    pub split_identity: String,
}

/// Worker-side cache of leaf-fragment results.
///
/// Counters: `frc.hits`, `frc.misses`. Cloning shares the cache.
#[derive(Clone)]
pub struct FragmentResultCache {
    cache: LruCache<FragmentKey, Vec<Page>>,
    metrics: CounterSet,
}

impl FragmentResultCache {
    /// Cache holding at most `capacity` fragment results.
    pub fn new(capacity: usize, metrics: CounterSet) -> FragmentResultCache {
        FragmentResultCache { cache: LruCache::new(capacity), metrics }
    }

    /// Look up a (fragment, split) result.
    pub fn get(&self, key: &FragmentKey) -> Option<Arc<Vec<Page>>> {
        match self.cache.get(key) {
            Some(hit) => {
                self.metrics.incr(names::FRC_HITS);
                Some(hit)
            }
            None => {
                self.metrics.incr(names::FRC_MISSES);
                None
            }
        }
    }

    /// Store a (fragment, split) result. Only cache *sealed* data — the
    /// caller decides (open partitions must bypass, like §VII.A's file
    /// lists).
    pub fn put(&self, key: FragmentKey, pages: Vec<Page>) {
        self.cache.put(key, Arc::new(pages));
    }

    /// Store an already-shared result without re-allocating — the cache
    /// migration path when a decommissioning worker hands its entries to
    /// the consistent successor.
    pub fn put_shared(&self, key: FragmentKey, pages: Arc<Vec<Page>>) {
        self.cache.put(key, pages);
    }

    /// Snapshot of every cached entry, **sorted by key** so iteration is
    /// deterministic (the backing LRU map is unordered).
    pub fn entries(&self) -> Vec<(FragmentKey, Arc<Vec<Page>>)> {
        let mut entries = self.cache.entries();
        entries.sort_by(|(a, _), (b, _)| {
            (a.plan_fingerprint, &a.split_identity).cmp(&(b.plan_fingerprint, &b.split_identity))
        });
        entries
    }

    /// Drop every cached result for a split (e.g. after compaction rewrote
    /// the file).
    pub fn invalidate_split(&self, _split_identity: &str) {
        // LRU has no secondary index; a production implementation versions
        // the split identity instead (identity strings embed a version, so
        // rewritten splits simply stop being looked up). Provided for API
        // completeness: clearing is always safe.
        self.cache.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Canonical FNV fold of the resident entries (key-sorted, so the fold
    /// is independent of the backing map's iteration order). Entries are
    /// represented by key + page count — enough to catch divergent
    /// placement or eviction between two same-seed runs.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        let entries = self.entries();
        h.write(entries.len() as u64);
        for (key, pages) in entries {
            h.write(key.plan_fingerprint);
            h.write_str(&key.split_identity);
            h.write(pages.len() as u64);
        }
        h.finish()
    }
}

/// Stable hash helper for fingerprints.
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Affinity scheduling: pick the worker for a split by consistent hashing
/// on the workspace [`HashRing`] (default seed and vnode count, so every
/// caller that builds a ring the same way agrees on ownership).
///
/// Returns the index into `workers` (identified by stable ids) of the
/// split's ring owner. Properties the paper's affinity scheduler needs:
/// deterministic (same split → same worker while the fleet is stable) and
/// minimally disruptive (adding/removing one worker only moves the splits
/// that hashed to it).
///
/// Convenience wrapper over [`HashRing::owner`] for callers holding a flat
/// id slice; hot paths that place many splits against one fleet should
/// build the ring once and query it directly.
pub fn affinity_worker(split_identity: &str, worker_ids: &[u32]) -> Option<usize> {
    let ring =
        HashRing::with_workers(DEFAULT_RING_SEED, DEFAULT_VNODES, worker_ids.iter().copied());
    let owner = ring.owner(split_identity)?;
    worker_ids.iter().position(|&w| w == owner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Block;

    fn sample_pages() -> Vec<Page> {
        vec![Page::new(vec![Block::bigint(vec![1, 2, 3])]).unwrap()]
    }

    #[test]
    fn hit_after_put_miss_before() {
        let cache = FragmentResultCache::new(16, CounterSet::new());
        let key = FragmentKey { plan_fingerprint: 42, split_identity: "/t/part-0".into() };
        assert!(cache.get(&key).is_none());
        cache.put(key.clone(), sample_pages());
        let hit = cache.get(&key).unwrap();
        assert_eq!(hit[0].positions(), 3);
        assert_eq!(cache.metrics().get("frc.hits"), 1);
        assert_eq!(cache.metrics().get("frc.misses"), 1);
    }

    #[test]
    fn different_pushdowns_never_share_results() {
        let cache = FragmentResultCache::new(16, CounterSet::new());
        let a = FragmentKey { plan_fingerprint: 1, split_identity: "/t/part-0".into() };
        let b = FragmentKey { plan_fingerprint: 2, split_identity: "/t/part-0".into() };
        cache.put(a.clone(), sample_pages());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&a).is_some());
    }

    #[test]
    fn invalidation_clears() {
        let cache = FragmentResultCache::new(16, CounterSet::new());
        let key = FragmentKey { plan_fingerprint: 1, split_identity: "/t/part-0".into() };
        cache.put(key.clone(), sample_pages());
        cache.invalidate_split("/t/part-0");
        assert!(cache.is_empty());
    }

    #[test]
    fn entries_are_sorted_and_put_shared_reuses_the_arc() {
        let cache = FragmentResultCache::new(16, CounterSet::new());
        let b = FragmentKey { plan_fingerprint: 2, split_identity: "/t/part-0".into() };
        let a = FragmentKey { plan_fingerprint: 1, split_identity: "/t/part-9".into() };
        let a2 = FragmentKey { plan_fingerprint: 1, split_identity: "/t/part-1".into() };
        cache.put(b.clone(), sample_pages());
        cache.put(a.clone(), sample_pages());
        cache.put(a2.clone(), sample_pages());
        let keys: Vec<FragmentKey> = cache.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![a2, a.clone(), b]);

        let successor = FragmentResultCache::new(16, CounterSet::new());
        let pages = cache.get(&a).unwrap();
        successor.put_shared(a.clone(), pages.clone());
        assert!(Arc::ptr_eq(&successor.get(&a).unwrap(), &pages));
    }

    #[test]
    fn affinity_is_deterministic_and_balanced() {
        let workers = vec![0u32, 1, 2, 3];
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            let split = format!("/warehouse/t/part-{i}");
            let w = affinity_worker(&split, &workers).unwrap();
            assert_eq!(affinity_worker(&split, &workers), Some(w), "deterministic");
            counts[w] += 1;
        }
        for &c in &counts {
            assert!(c > 150, "roughly balanced, got {counts:?}");
        }
    }

    #[test]
    fn affinity_moves_few_splits_when_fleet_changes() {
        let before = vec![0u32, 1, 2, 3];
        let after = vec![0u32, 1, 2, 3, 4]; // one worker added
        let mut moved = 0;
        let total = 1000;
        for i in 0..total {
            let split = format!("/warehouse/t/part-{i}");
            let w_before = before[affinity_worker(&split, &before).unwrap()];
            let w_after = after[affinity_worker(&split, &after).unwrap()];
            if w_before != w_after {
                moved += 1;
                // anything that moved must have moved to the new worker
                assert_eq!(w_after, 4);
            }
        }
        // rendezvous hashing moves ~1/5 of splits; round-robin would move ~4/5
        assert!(moved < total / 3, "moved {moved} of {total}");
        assert!(moved > total / 10, "the new worker must take a fair share");
    }

    #[test]
    fn empty_fleet_has_no_affinity() {
        assert_eq!(affinity_worker("/x", &[]), None);
    }
}
