#![warn(missing_docs)]

//! The Presto caches of §VII.
//!
//! "In production experience, we found the single HDFS NameNode listFiles
//! performance degradation could hurt Presto performance badly." Two caches
//! address it:
//!
//! - [`file_list::FileListCache`] — **coordinator-side**: caches `listFiles`
//!   results for *sealed* partitions only; open partitions (near-real-time
//!   ingestion targets) always bypass to guarantee freshness. The paper's
//!   production result: listFiles calls reduced to <40%.
//! - [`footer::FileHandleCache`] / [`footer::FooterCache`] —
//!   **worker-side**: cache file descriptors (`getFileInfo` results) and
//!   decoded file footers. "The reason to cache such information in memory
//!   is due to the high hit rate of footers as they are the indexes to the
//!   data itself." The paper's result: ~90% of getFileInfo calls removed.
//!
//! §VII also names a "fragment result cache", an "affinity scheduler", and
//! the "Alluxio data cache": the first two live in [`fragment`], the last is
//! [`data::CachedFileSystem`].

pub mod data;
pub mod file_list;
pub mod footer;
pub mod fragment;
pub mod lru;

pub use data::CachedFileSystem;
pub use file_list::FileListCache;
pub use footer::{FileHandleCache, FooterCache};
pub use fragment::{affinity_worker, FragmentKey, FragmentResultCache};
pub use lru::LruCache;
