#![warn(missing_docs)]

//! The Presto caches of §VII.
//!
//! "In production experience, we found the single HDFS NameNode listFiles
//! performance degradation could hurt Presto performance badly." Two caches
//! address it:
//!
//! - [`file_list::FileListCache`] — **coordinator-side**: caches `listFiles`
//!   results for *sealed* partitions only; open partitions (near-real-time
//!   ingestion targets) always bypass to guarantee freshness. The paper's
//!   production result: listFiles calls reduced to <40%.
//! - [`footer::FileHandleCache`] / [`footer::FooterCache`] —
//!   **worker-side**: cache file descriptors (`getFileInfo` results) and
//!   decoded file footers. "The reason to cache such information in memory
//!   is due to the high hit rate of footers as they are the indexes to the
//!   data itself." The paper's result: ~90% of getFileInfo calls removed.
//!
//! §VII also names a "fragment result cache", an "affinity scheduler", and
//! the "Alluxio data cache": the first two live in [`fragment`], the last is
//! [`data::CachedFileSystem`].
//!
//! On top of those worker-local tiers sits the **cluster-wide** cache keyed
//! by consistent hashing ([`distributed::DistributedCache`]): a column-chunk
//! data tier with owner-aware admission and second-choice replication for
//! hot keys, a metadata tier ([`metadata::MetadataCache`]) with TTL +
//! table-version invalidation, and a key-only shadow cache
//! ([`shadow::ShadowCache`]) estimating hit-rate-vs-capacity curves. All
//! ownership decisions route through `presto_common::HashRing` — the same
//! ring the affinity scheduler consults, so placement and ownership agree
//! by construction.

pub mod data;
pub mod distributed;
pub mod file_list;
pub mod footer;
pub mod fragment;
pub mod lru;
pub mod metadata;
pub mod shadow;

pub use data::CachedFileSystem;
pub use distributed::{ChunkKey, DistributedCache, DistributedCacheConfig};
pub use file_list::FileListCache;
pub use footer::{FileHandleCache, FooterCache};
pub use fragment::{affinity_worker, FragmentKey, FragmentResultCache};
pub use lru::LruCache;
pub use metadata::{MetaKind, MetadataCache};
pub use shadow::ShadowCache;
