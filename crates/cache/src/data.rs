//! Worker-side data cache (§VII: "A number of cache techniques are developed
//! for Presto, including ... Alluxio data cache").
//!
//! [`CachedFileSystem`] wraps a remote [`FileSystem`] and keeps recently read
//! byte ranges in memory. Parquet readers re-fetch the same footer and column
//! chunk ranges across queries; with affinity scheduling (same split → same
//! worker) those ranges hit local memory instead of HDFS/S3. Writes and
//! deletes invalidate the file's cached ranges.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use presto_common::metrics::{names, CounterSet};
use presto_common::Result;
use presto_storage::fs::normalize;
use presto_storage::{FileStatus, FileSystem};

use crate::lru::LruCache;

/// Cache key: one exact byte range of one file.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RangeKey {
    path: String,
    offset: u64,
    len: u64,
}

/// Per-path invalidation bookkeeping: a generation counter (bumped on every
/// write/delete) plus the range keys currently cached for the path.
#[derive(Default)]
struct PathState {
    generation: u64,
    keys: Vec<RangeKey>,
}

/// A byte-range caching filesystem wrapper.
///
/// Counters: `dc.hits`, `dc.misses`, `dc.bytes_saved`.
#[derive(Clone)]
pub struct CachedFileSystem {
    inner: Arc<dyn FileSystem>,
    ranges: LruCache<RangeKey, Vec<u8>>,
    by_path: Arc<Mutex<HashMap<String, PathState>>>,
    metrics: CounterSet,
}

impl CachedFileSystem {
    /// Wrap `inner` with a cache of at most `capacity` ranges.
    pub fn new(
        inner: Arc<dyn FileSystem>,
        capacity: usize,
        metrics: CounterSet,
    ) -> CachedFileSystem {
        CachedFileSystem {
            inner,
            ranges: LruCache::new(capacity),
            by_path: Arc::new(Mutex::new(HashMap::new())),
            metrics,
        }
    }

    /// The wrapped filesystem.
    pub fn inner(&self) -> &Arc<dyn FileSystem> {
        &self.inner
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    fn invalidate_path(&self, path: &str) {
        let mut by_path = self.by_path.lock();
        let state = by_path.entry(path.to_string()).or_default();
        // the bump makes in-flight reads that started before this write
        // refuse to cache their (now possibly stale) bytes
        state.generation += 1;
        for key in state.keys.drain(..) {
            self.ranges.invalidate(&key);
        }
    }
}

impl FileSystem for CachedFileSystem {
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>> {
        // metadata calls pass through (the §VII.A/§VII.B caches own those)
        self.inner.list_files(dir)
    }

    fn get_file_info(&self, path: &str) -> Result<FileStatus> {
        self.inner.get_file_info(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        // keys use the normalized path so reads and write-invalidations
        // agree regardless of how the caller spelled the path
        let norm = normalize(path);
        let key = RangeKey { path: norm.clone(), offset, len };
        if let Some(hit) = self.ranges.get(&key) {
            self.metrics.incr(names::DC_HITS);
            self.metrics.add(names::DC_BYTES_SAVED, len);
            return Ok(hit.as_ref().clone());
        }
        self.metrics.incr(names::DC_MISSES);
        let generation_before = self.by_path.lock().get(&norm).map(|s| s.generation).unwrap_or(0);
        let data = self.inner.read_range(path, offset, len)?;
        {
            let mut by_path = self.by_path.lock();
            let state = by_path.entry(norm).or_default();
            // a write raced the fetch: these bytes may be stale — serve
            // them to this caller but do not cache them
            if state.generation == generation_before {
                state.keys.push(key.clone());
                self.ranges.put(key, Arc::new(data.clone()));
            }
        }
        Ok(data)
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        // order matters: the write completes first, then cached ranges are
        // dropped, so no reader can re-cache pre-write bytes afterwards
        // (the generation bump covers readers mid-fetch)
        self.invalidate_path(&normalize(path));
        let result = self.inner.write(path, data);
        self.invalidate_path(&normalize(path));
        result
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.invalidate_path(&normalize(path));
        let result = self.inner.delete(path);
        self.invalidate_path(&normalize(path));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_storage::HdfsFileSystem;

    fn cached_hdfs() -> (CachedFileSystem, HdfsFileSystem) {
        let hdfs = HdfsFileSystem::with_defaults();
        hdfs.backing_store().write("/t/f", &(0..=255u8).collect::<Vec<_>>()).unwrap();
        let cached = CachedFileSystem::new(Arc::new(hdfs.clone()), 64, CounterSet::new());
        (cached, hdfs)
    }

    #[test]
    fn repeated_ranges_hit_memory() {
        let (cached, hdfs) = cached_hdfs();
        for _ in 0..5 {
            assert_eq!(cached.read_range("/t/f", 10, 4).unwrap(), vec![10, 11, 12, 13]);
        }
        assert_eq!(cached.metrics().get(names::DC_MISSES), 1);
        assert_eq!(cached.metrics().get(names::DC_HITS), 4);
        assert_eq!(cached.metrics().get(names::DC_BYTES_SAVED), 16);
        assert_eq!(hdfs.metrics().get(names::HDFS_READ_OPS), 1);
    }

    #[test]
    fn distinct_ranges_are_distinct_entries() {
        let (cached, hdfs) = cached_hdfs();
        cached.read_range("/t/f", 0, 8).unwrap();
        cached.read_range("/t/f", 8, 8).unwrap();
        cached.read_range("/t/f", 0, 8).unwrap();
        assert_eq!(hdfs.metrics().get(names::HDFS_READ_OPS), 2);
    }

    #[test]
    fn writes_invalidate_cached_ranges() {
        let (cached, _) = cached_hdfs();
        assert_eq!(cached.read_range("/t/f", 0, 2).unwrap(), vec![0, 1]);
        cached.write("/t/f", &[9, 9, 9, 9]).unwrap();
        assert_eq!(cached.read_range("/t/f", 0, 2).unwrap(), vec![9, 9]);
    }

    #[test]
    fn metadata_calls_pass_through() {
        let (cached, hdfs) = cached_hdfs();
        cached.get_file_info("/t/f").unwrap();
        cached.get_file_info("/t/f").unwrap();
        assert_eq!(hdfs.metrics().get(names::HDFS_GET_FILE_INFO), 2);
        assert_eq!(cached.list_files("/t").unwrap().len(), 1);
    }
}
