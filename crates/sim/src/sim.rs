//! The cluster-wide multi-query discrete-event simulation.
//!
//! One master [`SimClock`] carries the cluster timeline. Arrivals pop off
//! an event heap; each query waits in the configured queue discipline
//! (per-tenant WFQ or the naive global FIFO) until a dispatch slot frees
//! up, then executes *for real* on the cluster — planner, fragments,
//! distributed scan scheduling — against a [`SimClock::fork`] of the
//! master clock, so overlapping queries advance their own virtual
//! timelines without serializing each other. The fork's elapsed time is
//! the query's service time; its completion is scheduled back onto the
//! master heap. Everything — arrival times, tenant picks, dispatch order,
//! service times, digests — is a pure function of `(seed, config)`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{
    Autoscaler, AutoscalerConfig, ClusterConfig, PrestoCluster, ScaleDecision, SpeculationConfig,
    WorkerLifecycle,
};
use presto_common::fault::{FaultInjector, FaultPlan};
use presto_common::metrics::{names, CounterSet, Histogram, HistogramSet, TimeSeries};
use presto_common::rng::mix64;
use presto_common::{Block, DataType, Field, Page, PrestoError, Result, Schema, SimClock};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};
use presto_resource::{AdmissionConfig, FifoQueue, QueuedQuery, WfqScheduler};

use crate::slo::SloPolicy;
use crate::workload::{
    pick_template, tenant_class, tenant_weight, ArrivalProcess, TenantClass, ZipfSampler,
    LARGE_PAGES, MEDIUM_PAGES, SMALL_PAGES,
};

/// Rows per page in the seeded tables (kept small: the rows are scanned
/// for real on every query).
const ROWS_PER_PAGE: usize = 64;

/// Rough virtual cost of one scan wave (task base + per-row work), used
/// only as the WFQ cost estimate at enqueue time.
const WAVE_COST_US: u64 = 110;

/// Patience window of a standing reservation, in virtual µs. While a
/// wide query's grant assembles, narrow queries may still dispatch if
/// they are estimated to finish within `max(horizon, reserved_at +
/// patience)` — early in the window traffic flows freely, and as the
/// deadline nears borrowing dries up so the freed units accumulate.
/// Roughly one batch-query service time: wide enough that dashboards are
/// not starved by back-to-back reservations, tight enough that a wide
/// grant assembles within a few milliseconds.
const RESERVE_PATIENCE_US: u64 = 1_200;

/// Queue discipline the simulated coordinator dispatches with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Per-tenant weighted fair queuing inside priority lanes.
    Wfq,
    /// One global FIFO ignoring lanes, tenants and weights — the
    /// counterfactual the experiment quantifies WFQ against.
    Fifo,
}

impl SchedulerMode {
    /// Lowercase mode name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::Wfq => "wfq",
            SchedulerMode::Fifo => "fifo",
        }
    }
}

/// The class name spot (preemptible) capacity runs under. A
/// [`ElasticPlan::revoke_spot_at_us`] storm flips every worker of this
/// class to `Revoked` at one virtual instant.
pub const SPOT_CLASS: &str = "spot";

/// Elastic-lifecycle events layered onto a simulation run: periodic
/// lifecycle ticks, an optional queue-driven autoscaler, scheduled graceful
/// decommissions, and an optional spot-revocation storm. All times are
/// virtual µs on the master timeline, so the whole scenario stays a pure
/// function of `(seed, config)`.
#[derive(Debug, Clone)]
pub struct ElasticPlan {
    /// Autoscaler policy; `None` runs a fixed fleet (plus the events below).
    pub autoscaler: Option<AutoscalerConfig>,
    /// Lifecycle cadence: the cluster is ticked (drain phases advanced,
    /// terminated workers reaped, due revocations fired) and the autoscaler
    /// evaluated every this-many virtual µs.
    pub tick_every_us: u64,
    /// Preemptible workers added to the fleet at start, class [`SPOT_CLASS`].
    pub spot_workers: u32,
    /// Revoke the whole spot class at this virtual instant (the storm).
    pub revoke_spot_at_us: Option<u64>,
    /// Gracefully decommission the coldest active worker at each of these
    /// virtual instants (scale-down under live load).
    pub decommission_at_us: Vec<u64>,
    /// Recovery budget after the storm: the report flags whether active
    /// capacity returned to its pre-storm level within this many virtual µs.
    pub recovery_bound_us: u64,
    /// `shutdown.grace-period` for the simulated cluster, in virtual µs —
    /// short, so drains run to `Terminated` within the simulation window
    /// (the paper's 2-minute default would outlive the whole run).
    pub grace_period_us: u64,
}

impl Default for ElasticPlan {
    fn default() -> Self {
        ElasticPlan {
            autoscaler: None,
            tick_every_us: 500,
            spot_workers: 0,
            revoke_spot_at_us: None,
            decommission_at_us: Vec::new(),
            recovery_bound_us: 5_000_000,
            grace_period_us: 200,
        }
    }
}

/// What the elastic lifecycle did during one run (all counters come from
/// the cluster's own metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticReport {
    /// Autoscaler scale-out actions.
    pub scale_outs: u64,
    /// Workers the autoscaler added in total.
    pub workers_added: u64,
    /// Autoscaler scale-in actions (graceful decommissions).
    pub scale_ins: u64,
    /// Workers that completed the full drain and were reaped.
    pub workers_decommissioned: u64,
    /// Workers lost abruptly to revocation.
    pub workers_revoked: u64,
    /// Queued splits displaced off draining workers onto survivors.
    pub splits_handed_off: u64,
    /// Fragment-cache entries migrated to consistent successors.
    pub cache_entries_migrated: u64,
    /// The storm instant, when one was planned.
    pub storm_at_us: Option<u64>,
    /// First tick at/after the storm where active capacity was back at its
    /// pre-storm level (`None` = never recovered within the run).
    pub recovered_at_us: Option<u64>,
    /// The declared recovery budget.
    pub recovery_bound_us: u64,
    /// Largest active fleet observed at any tick.
    pub peak_workers: usize,
    /// Active fleet when the run ended.
    pub final_workers: usize,
    /// Every autoscaler action in timeline order: `(virtual µs, delta)`
    /// where delta is `+added` for a scale-out and `-1` for a scale-in.
    /// This is the trace the busy-vs-queue counterfactual compares.
    pub actions: Vec<(u64, i64)>,
}

impl ElasticReport {
    /// Did capacity recover from the storm within the declared budget?
    /// Vacuously true when no storm was planned.
    pub fn recovered_within_bound(&self) -> bool {
        match (self.storm_at_us, self.recovered_at_us) {
            (None, _) => true,
            (Some(storm), Some(rec)) => rec.saturating_sub(storm) <= self.recovery_bound_us,
            (Some(_), None) => false,
        }
    }
}

/// Simulation parameters. The default is the paper-scale experiment: a
/// thousand Zipf-skewed tenants, ten thousand queries, a diurnal rush that
/// transiently exceeds the dispatch capacity.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Tenant population.
    pub tenants: u32,
    /// Queries to simulate.
    pub queries: u64,
    /// Zipf exponent for tenant popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Workers in the simulated cluster.
    pub workers: u32,
    /// Concurrent execution slot-units at the coordinator. An admitted
    /// query holds its class's [`TenantClass::slot_units`] until it
    /// completes, so a batch query occupies five times the capacity of an
    /// interactive one — more than half the default budget, which is what
    /// makes naive FIFO's head-of-line blocking expensive.
    pub slots: usize,
    /// Queue discipline.
    pub mode: SchedulerMode,
    /// Declared per-class latency SLOs.
    pub slos: SloPolicy,
    /// Elastic-lifecycle events layered onto the run (`None` = the fixed
    /// fleet the queueing experiments assume).
    pub elastic: Option<ElasticPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 7,
            tenants: 1000,
            queries: 10_000,
            zipf_exponent: 0.7,
            arrival: ArrivalProcess::Diurnal {
                mean_interarrival_us: 180.0,
                amplitude: 0.3,
                cycle_us: 200_000,
            },
            workers: 8,
            slots: 8,
            mode: SchedulerMode::Wfq,
            slos: SloPolicy::default(),
            elastic: None,
        }
    }
}

/// One tenant's row in the SLO report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantReport {
    /// Tenant id (its Zipf rank).
    pub tenant: u32,
    /// Workload class.
    pub class: TenantClass,
    /// Queries the tenant completed.
    pub queries: u64,
    /// Median end-to-end latency (virtual µs).
    pub p50_us: u64,
    /// p99 end-to-end latency (virtual µs).
    pub p99_us: u64,
    /// The p99 target the tenant's class declared.
    pub slo_p99_us: u64,
    /// Did the tenant meet its SLO?
    pub within_slo: bool,
}

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Queue discipline that ran.
    pub mode: SchedulerMode,
    /// Queries that arrived.
    pub arrivals: u64,
    /// Queries that completed.
    pub completed: u64,
    /// Queries that failed (none, absent injected faults).
    pub failed: u64,
    /// Virtual time from first arrival to last completion (µs).
    pub makespan_us: u64,
    /// Order-sensitive fold of `(query, tenant, latency)` over every
    /// completion — bit-identical across same-seed runs.
    pub digest: u64,
    /// Fold of every query's trace digest, in dispatch order.
    pub trace_digest: u64,
    /// End-to-end latency across all queries (virtual µs).
    pub latency_us: Histogram,
    /// Time spent queued before dispatch (virtual µs).
    pub queue_wait_us: Histogram,
    /// Latency broken down by workload class, keyed by class name.
    pub class_latency_us: BTreeMap<&'static str, Histogram>,
    /// Latency per tenant (only tenants that completed ≥ 1 query).
    pub tenant_latency_us: BTreeMap<u32, Histogram>,
    /// Per-tenant SLO rows, sorted by tenant id.
    pub tenants: Vec<TenantReport>,
    /// The worst per-tenant p99 (virtual µs) and which tenant owns it.
    pub worst_p99_us: u64,
    /// Tenant owning `worst_p99_us`.
    pub worst_tenant: u32,
    /// Tenants that missed their declared SLO.
    pub slo_violations: u64,
    /// `sim.arrivals` / `sim.completed` / `sim.failed`.
    pub metrics: CounterSet,
    /// `sim.latency_us` / `sim.queue_wait_us` under the shared names.
    pub histograms: HistogramSet,
    /// Elastic-lifecycle outcome, when the config planned one.
    pub elastic: Option<ElasticReport>,
    /// FNV fold of the cluster's [`TelemetryRegistry`] at end of run —
    /// workers, queries, tasks, every time series and gauge. Bit-identical
    /// across same-seed runs.
    ///
    /// [`TelemetryRegistry`]: presto_common::telemetry::TelemetryRegistry
    pub telemetry_digest: u64,
    /// FNV fold of every cache layer at end of run — per-worker fragment
    /// caches plus the distributed tiers when configured. The
    /// revocation-storm determinism test pins this bit-identical across
    /// same-seed runs: a storm must tear caches down the same way twice.
    pub cache_digest: u64,
    /// Telemetry snapshots the cluster took (one per lifecycle tick).
    pub telemetry_snapshots: u64,
    /// End-of-run copy of every named time series the sampler maintained
    /// (fleet busy-fraction, queue depth, memory/cache utilization, …).
    pub telemetry_series: BTreeMap<String, TimeSeries>,
}

impl SimReport {
    /// Tenant rows for one class, in tenant order.
    pub fn class_rows(&self, class: TenantClass) -> impl Iterator<Item = &TenantReport> {
        self.tenants.iter().filter(move |t| t.class == class)
    }

    /// Do all tenants of `class` meet their declared SLO?
    pub fn class_within_slo(&self, class: TenantClass) -> bool {
        self.class_rows(class).all(|t| t.within_slo)
    }
}

/// Per-query bookkeeping, filled in arrival order.
struct QueryMeta {
    arrival_us: u64,
    tenant: u32,
    class: TenantClass,
    units: usize,
    cost_us: u64,
    sql: &'static str,
}

/// Events on the master timeline. Completions order before arrivals at the
/// same instant only through their push sequence — both orders are
/// deterministic, which is all the digests need.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Query `.0` arrives.
    Arrive(u64),
    /// Query `.0` finishes service.
    Complete(u64),
    /// Lifecycle tick: advance drains, fire due revocations and scheduled
    /// decommissions, evaluate the autoscaler. Only scheduled when the
    /// config carries an [`ElasticPlan`].
    Tick,
}

enum Queue {
    Wfq(WfqScheduler),
    Fifo(FifoQueue),
}

impl Queue {
    fn push(&mut self, tenant: u32, weight: u64, class: TenantClass, cost_us: u64, item: u64) {
        match self {
            Queue::Wfq(q) => q.push(tenant, weight, class.lane(), cost_us, item),
            Queue::Fifo(q) => q.push(QueuedQuery { tenant, lane: class.lane(), item }),
        }
    }

    /// Queries waiting — the autoscaler's queue-depth signal.
    fn len(&self) -> usize {
        match self {
            Queue::Wfq(q) => q.len(),
            Queue::Fifo(q) => q.len(),
        }
    }
}

/// Build the simulated cluster: seeded memory tables, no faults, no
/// fragment caches, speculation off, admission unbounded. With all
/// variance sources disabled, a query's service time is a pure function of
/// its SQL — so WFQ-vs-FIFO differences are pure queueing effects.
fn build_cluster(config: &SimConfig, clock: &SimClock) -> Result<Arc<PrestoCluster>> {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("shard", DataType::Bigint),
    ])?;
    for (table, pages) in
        [("sim_small", SMALL_PAGES), ("sim_medium", MEDIUM_PAGES), ("sim_large", LARGE_PAGES)]
    {
        let mut data = Vec::with_capacity(pages);
        for p in 0..pages {
            let base = (p * ROWS_PER_PAGE) as i64;
            let ids: Vec<i64> = (base..base + ROWS_PER_PAGE as i64).collect();
            let shards: Vec<i64> = ids.iter().map(|id| id % 16).collect();
            data.push(Page::new(vec![Block::bigint(ids), Block::bigint(shards)])?);
        }
        memory.create_table("default", table, schema.clone(), data)?;
    }
    engine.register_catalog("memory", Arc::new(memory));
    let mut cluster_config = ClusterConfig {
        initial_workers: config.workers.max(1),
        admission: AdmissionConfig::default(),
        speculation: SpeculationConfig { enabled: false, ..SpeculationConfig::default() },
        ..ClusterConfig::default()
    };
    if let Some(plan) = &config.elastic {
        cluster_config.grace_period = Duration::from_micros(plan.grace_period_us);
        if let Some(at) = plan.revoke_spot_at_us {
            cluster_config.fault_injector = FaultInjector::new(
                config.seed,
                FaultPlan::new().revoke_class(SPOT_CLASS, Duration::from_micros(at)),
            );
        }
    }
    Ok(PrestoCluster::new("sim", engine, cluster_config, clock.clone()))
}

/// Workers currently in the `Active` lifecycle state.
fn active_fleet(cluster: &PrestoCluster) -> usize {
    cluster.workers().iter().filter(|w| w.lifecycle() == WorkerLifecycle::Active).count()
}

/// The coldest active worker: fewest completed tasks, ties to the newest.
/// Scheduled decommissions target it, mirroring the autoscaler's scale-in
/// choice.
fn coldest_worker(cluster: &PrestoCluster) -> Option<u32> {
    cluster
        .workers()
        .iter()
        .filter(|w| w.lifecycle() == WorkerLifecycle::Active)
        .min_by_key(|w| (w.completed_tasks(), Reverse(w.id)))
        .map(|w| w.id)
}

/// Run one simulation to completion and report.
pub fn run_simulation(config: &SimConfig) -> Result<SimReport> {
    if config.queries == 0 {
        return Err(PrestoError::Execution("simulation needs at least one query".into()));
    }
    let widest = [TenantClass::Interactive, TenantClass::Dashboard, TenantClass::Batch]
        .into_iter()
        .map(TenantClass::slot_units)
        .max()
        .unwrap_or(1);
    if config.slots.max(1) < widest {
        return Err(PrestoError::Execution(format!(
            "slots ({}) must cover the widest grant ({widest} units) or wide queries never run",
            config.slots
        )));
    }
    let clock = SimClock::new();
    let cluster = build_cluster(config, &clock)?;
    let zipf = ZipfSampler::new(config.tenants, config.zipf_exponent);
    let metrics = CounterSet::new();
    let histograms = HistogramSet::new();

    // Elastic lifecycle: spot capacity, scheduled drains, the autoscaler.
    let scaler = config
        .elastic
        .as_ref()
        .and_then(|plan| plan.autoscaler.clone().map(|cfg| Autoscaler::new(cluster.clone(), cfg)));
    let mut decommissions: Vec<u64> =
        config.elastic.as_ref().map(|p| p.decommission_at_us.clone()).unwrap_or_default();
    decommissions.sort_unstable();
    let mut next_decommission = 0usize;
    if let Some(plan) = &config.elastic {
        if plan.spot_workers > 0 {
            cluster.expand_class(plan.spot_workers, SPOT_CLASS);
        }
    }
    // The storm-recovery target is the fleet as provisioned, captured
    // before any lifecycle event can fire.
    let pre_storm_target = active_fleet(&cluster);
    let mut peak_workers = pre_storm_target;
    let mut recovered_at_us: Option<u64> = None;
    let mut scale_actions: Vec<(u64, i64)> = Vec::new();

    let mut queue = match config.mode {
        SchedulerMode::Wfq => Queue::Wfq(WfqScheduler::new()),
        SchedulerMode::Fifo => Queue::Fifo(FifoQueue::new()),
    };
    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut heap_seq = 0u64;
    let push_event =
        |heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>, seq: &mut u64, at: u64, ev: Event| {
            *seq += 1;
            heap.push(Reverse((at, *seq, ev)));
        };

    let mut meta: Vec<QueryMeta> = Vec::with_capacity(config.queries as usize);
    let mut dispatched_at: Vec<u64> = vec![0; config.queries as usize];
    let mut free_units = config.slots.max(1);
    // in-flight queries, keyed (completion time, query) → slot-units held;
    // the backfill horizon walks this in completion order
    let mut running: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    // measured service time per template — service is a pure function of
    // the SQL here, so after one run of a template the estimate is exact
    let mut service_est: HashMap<&'static str, u64> = HashMap::new();
    // a wide query whose grant is wider than the free capacity, and when
    // it was reserved: freed units accrue to it instead of being raided
    // by fresh narrow arrivals
    let mut reserved: Option<(u64, u64)> = None;

    let mut latency_us = Histogram::new();
    let mut queue_wait_us = Histogram::new();
    let mut class_latency: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut tenant_latency: BTreeMap<u32, Histogram> = BTreeMap::new();
    let mut digest = 0u64;
    let mut trace_digest = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;

    // waves a template needs at this worker count → WFQ cost estimate
    let workers = config.workers.max(1) as usize;
    let cost_of = |pages: usize| (pages.div_ceil(workers) as u64) * WAVE_COST_US;

    let first_gap = config.arrival.gap_us(config.seed, 0, 0) as u64;
    push_event(&mut heap, &mut heap_seq, first_gap, Event::Arrive(0));
    if let Some(plan) = &config.elastic {
        push_event(&mut heap, &mut heap_seq, plan.tick_every_us.max(1), Event::Tick);
    }

    while let Some(Reverse((at, _seq, event))) = heap.pop() {
        let now_us = clock.now().as_micros() as u64;
        if at > now_us {
            clock.advance_micros(at - now_us);
        }
        let now_us = clock.now().as_micros() as u64;

        match event {
            Event::Arrive(idx) => {
                metrics.incr(names::SIM_ARRIVALS);
                let tenant = zipf.tenant_for(config.seed, idx);
                let class = tenant_class(tenant, config.tenants);
                let template = pick_template(config.seed, idx, class);
                let cost_us = cost_of(template.pages);
                meta.push(QueryMeta {
                    arrival_us: now_us,
                    tenant,
                    class,
                    units: class.slot_units(),
                    cost_us,
                    sql: template.sql,
                });
                let weight = tenant_weight(tenant, config.zipf_exponent, class);
                queue.push(tenant, weight, class, cost_us, idx);
                if idx + 1 < config.queries {
                    let gap = config.arrival.gap_us(config.seed, idx + 1, now_us) as u64;
                    push_event(&mut heap, &mut heap_seq, now_us + gap, Event::Arrive(idx + 1));
                }
            }
            Event::Complete(idx) => {
                free_units += meta[idx as usize].units;
                running.remove(&(now_us, idx));
                let m = &meta[idx as usize];
                let latency = now_us.saturating_sub(m.arrival_us);
                latency_us.record(latency);
                histograms.record(names::HIST_SIM_LATENCY_US, latency);
                class_latency.entry(m.class.name()).or_default().record(latency);
                tenant_latency.entry(m.tenant).or_default().record(latency);
                digest = mix64(digest ^ mix64(idx) ^ mix64(u64::from(m.tenant)) ^ mix64(latency));
                completed += 1;
                metrics.incr(names::SIM_COMPLETED);
            }
            Event::Tick => {
                // `config.elastic` is always Some here — ticks are only
                // ever scheduled under a plan.
                if let Some(plan) = &config.elastic {
                    // advance drain phases, reap terminated workers, fire
                    // any revocation that came due on the master timeline
                    cluster.tick();
                    // scheduled graceful scale-downs: drain the coldest
                    // active worker at each planned instant
                    while next_decommission < decommissions.len()
                        && decommissions[next_decommission] <= now_us
                    {
                        next_decommission += 1;
                        if let Some(victim) = coldest_worker(&cluster) {
                            let _ = cluster.decommission_worker(victim);
                        }
                    }
                    if let Some(scaler) = &scaler {
                        match scaler.evaluate_with_depth(queue.len()) {
                            ScaleDecision::Out { added } => {
                                scale_actions.push((now_us, i64::from(added)));
                            }
                            ScaleDecision::In { .. } => scale_actions.push((now_us, -1)),
                            ScaleDecision::Hold => {}
                        }
                    }
                    let active = active_fleet(&cluster);
                    peak_workers = peak_workers.max(active);
                    if let Some(storm) = plan.revoke_spot_at_us {
                        if recovered_at_us.is_none()
                            && now_us >= storm
                            && cluster.metrics().get(names::CLUSTER_WORKERS_REVOKED) > 0
                            && active >= pre_storm_target
                        {
                            recovered_at_us = Some(now_us);
                        }
                    }
                    if completed + failed < config.queries {
                        push_event(
                            &mut heap,
                            &mut heap_seq,
                            now_us + plan.tick_every_us.max(1),
                            Event::Tick,
                        );
                    }
                }
            }
        }

        // dispatch: fill the free slot-units from the queue discipline
        loop {
            let avail = free_units;
            if avail == 0 {
                break;
            }
            let next = match &mut queue {
                // The naive baseline: strict arrival order. The oldest
                // query dispatches only when its grant fits; nothing may
                // jump the head, so a wide head idles the free capacity
                // behind it — the head-of-line blocking that motivated
                // replacing the naive admission queue.
                Queue::Fifo(q) => q.pop_if(|cand| meta[cand.item as usize].units <= avail),
                // WFQ with a standing reservation: the virtual-time head
                // dispatches when its grant fits; when it does not, freed
                // units accrue to it instead of being raided by fresh
                // narrow arrivals.
                Queue::Wfq(q) => {
                    if let Some((r, reserved_at)) = reserved {
                        if meta[r as usize].units <= avail {
                            reserved = None;
                            q.pop_first_fit(|cand| cand.item == r)
                        } else {
                            // The reserved grant is still wider than the
                            // free capacity. Walk the in-flight
                            // completions to the earliest instant it
                            // could be satisfied, then backfill only
                            // queries estimated to finish before that
                            // horizon — they borrow units the wide query
                            // cannot use yet, without delaying it. The
                            // patience window keeps narrow traffic
                            // flowing while the grant assembles: early in
                            // the reservation anything short enough to
                            // finish inside the window may borrow, and as
                            // the deadline nears, borrowing dries up and
                            // the freed units accumulate.
                            let mut acc = avail;
                            let mut horizon = None;
                            for (&(end_us, _), &units) in &running {
                                acc += units;
                                if acc >= meta[r as usize].units {
                                    horizon = Some(end_us);
                                    break;
                                }
                            }
                            let Some(horizon) = horizon else { break };
                            let bound = horizon.max(reserved_at + RESERVE_PATIENCE_US);
                            q.pop_first_fit(|cand| {
                                let c = &meta[cand.item as usize];
                                let est = service_est.get(c.sql).copied().unwrap_or(c.cost_us * 3);
                                cand.item != r && c.units <= avail && now_us + est <= bound
                            })
                        }
                    } else if let Some(blocked) =
                        q.peek_first_unfit(|cand| meta[cand.item as usize].units <= avail)
                    {
                        // The earliest-tag query whose grant is wider than
                        // the free capacity — not necessarily the global
                        // head: under strict lane priority, narrow urgent
                        // queries would otherwise raid every freed unit and
                        // a wide query one lane down would never see its
                        // grant accumulate.
                        reserved = Some((blocked.item, now_us));
                        continue;
                    } else {
                        // everything queued fits: dispatch in virtual-time
                        // order
                        q.pop()
                    }
                }
            };
            let Some(next) = next else { break };
            let idx = next.item;
            let m = &meta[idx as usize];
            let wait = now_us.saturating_sub(m.arrival_us);
            queue_wait_us.record(wait);
            histograms.record(names::HIST_SIM_QUEUE_WAIT_US, wait);
            dispatched_at[idx as usize] = now_us;
            let session = Session::new("memory", "default")
                .with_user(format!("t{}", m.tenant))
                .with_priority(m.class.lane());
            // the query's own timeline: a fork of the master clock
            let fork = clock.fork();
            match cluster.execute_clocked(m.sql, &session, &fork) {
                Ok(result) => {
                    free_units -= m.units;
                    trace_digest = mix64(trace_digest ^ result.info.trace.digest());
                    let service_us = (result.info.latency.as_micros() as u64).max(1);
                    running.insert((now_us + service_us, idx), m.units);
                    service_est.insert(m.sql, service_us);
                    push_event(&mut heap, &mut heap_seq, now_us + service_us, Event::Complete(idx));
                }
                Err(_) => {
                    // no fault sources are enabled, but a failure must not
                    // wedge the loop: count it and release the query
                    failed += 1;
                    metrics.incr(names::SIM_FAILED);
                    digest = mix64(digest ^ mix64(idx) ^ 0xbad);
                }
            }
        }
    }

    let makespan_us = clock.now().as_micros() as u64;
    let mut tenants = Vec::with_capacity(tenant_latency.len());
    let mut worst_p99_us = 0u64;
    let mut worst_tenant = 0u32;
    let mut slo_violations = 0u64;
    for (&tenant, hist) in &tenant_latency {
        let class = tenant_class(tenant, config.tenants);
        let p99 = hist.quantile(0.99);
        let target = config.slos.p99_target(class);
        let within = p99 <= target;
        if !within {
            slo_violations += 1;
        }
        if p99 > worst_p99_us {
            worst_p99_us = p99;
            worst_tenant = tenant;
        }
        tenants.push(TenantReport {
            tenant,
            class,
            queries: hist.count(),
            p50_us: hist.quantile(0.5),
            p99_us: p99,
            slo_p99_us: target,
            within_slo: within,
        });
    }

    let elastic = config.elastic.as_ref().map(|plan| ElasticReport {
        scale_outs: cluster.metrics().get(names::CLUSTER_SCALE_OUTS),
        workers_added: cluster.metrics().get(names::CLUSTER_SCALE_OUT_WORKERS),
        scale_ins: cluster.metrics().get(names::CLUSTER_SCALE_INS),
        workers_decommissioned: cluster.metrics().get(names::CLUSTER_WORKERS_DECOMMISSIONED),
        workers_revoked: cluster.metrics().get(names::CLUSTER_WORKERS_REVOKED),
        splits_handed_off: cluster.metrics().get(names::CLUSTER_SPLITS_HANDED_OFF),
        cache_entries_migrated: cluster.metrics().get(names::CLUSTER_CACHE_ENTRIES_MIGRATED),
        storm_at_us: plan.revoke_spot_at_us,
        recovered_at_us,
        recovery_bound_us: plan.recovery_bound_us,
        peak_workers,
        final_workers: active_fleet(&cluster),
        actions: scale_actions,
    });

    Ok(SimReport {
        mode: config.mode,
        arrivals: metrics.get(names::SIM_ARRIVALS),
        completed,
        failed,
        makespan_us,
        digest,
        trace_digest,
        latency_us,
        queue_wait_us,
        class_latency_us: class_latency,
        tenant_latency_us: tenant_latency,
        tenants,
        worst_p99_us,
        worst_tenant,
        slo_violations,
        metrics,
        histograms,
        elastic,
        telemetry_digest: cluster.telemetry().digest(),
        cache_digest: cluster.cache_digest(),
        telemetry_snapshots: cluster.telemetry().snapshots(),
        telemetry_series: cluster.telemetry().series().snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mode: SchedulerMode) -> SimConfig {
        SimConfig {
            seed: 11,
            tenants: 60,
            queries: 600,
            zipf_exponent: 1.0,
            arrival: ArrivalProcess::Diurnal {
                mean_interarrival_us: 100.0,
                amplitude: 0.6,
                cycle_us: 20_000,
            },
            workers: 4,
            slots: 6,
            mode,
            slos: SloPolicy::default(),
            elastic: None,
        }
    }

    #[test]
    fn simulation_completes_every_query() {
        let report = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        assert_eq!(report.arrivals, 600);
        assert_eq!(report.completed, 600);
        assert_eq!(report.failed, 0);
        assert!(report.makespan_us > 0);
        assert_eq!(report.latency_us.count(), 600);
        assert_eq!(report.queue_wait_us.count(), 600);
        // every class appears
        assert_eq!(report.class_latency_us.len(), 3);
        let total: u64 = report.tenants.iter().map(|t| t.queries).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let a = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        let b = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.tenant_latency_us, b.tenant_latency_us);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        let mut config = small_config(SchedulerMode::Wfq);
        config.seed = 12;
        let b = run_simulation(&config).unwrap();
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn wfq_and_fifo_see_the_same_workload() {
        let wfq = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        let fifo = run_simulation(&small_config(SchedulerMode::Fifo)).unwrap();
        assert_eq!(wfq.arrivals, fifo.arrivals);
        assert_eq!(wfq.completed, fifo.completed);
        // same queries, different order → different latency digests
        assert_ne!(wfq.digest, fifo.digest);
    }

    fn elastic_config(plan: ElasticPlan) -> SimConfig {
        SimConfig {
            seed: 23,
            tenants: 30,
            queries: 400,
            zipf_exponent: 0.8,
            arrival: ArrivalProcess::Diurnal {
                mean_interarrival_us: 120.0,
                amplitude: 0.5,
                cycle_us: 20_000,
            },
            workers: 4,
            slots: 6,
            mode: SchedulerMode::Wfq,
            slos: SloPolicy::default(),
            elastic: Some(plan),
        }
    }

    fn storm_plan() -> ElasticPlan {
        ElasticPlan {
            autoscaler: Some(AutoscalerConfig {
                min_workers: 2,
                max_workers: 16,
                high_water_depth: 2,
                low_water_depth: 0,
                scale_out_after: Duration::from_micros(500),
                scale_in_after: Duration::from_millis(200),
                scale_out_step: 2,
                cooldown: Duration::from_micros(1_000),
                worker_class: "ondemand".to_string(),
                busy_signal: false,
                busy_high_water_pct: 80,
                busy_low_water_pct: 20,
            }),
            spot_workers: 4,
            revoke_spot_at_us: Some(8_000),
            recovery_bound_us: 2_000_000,
            ..ElasticPlan::default()
        }
    }

    #[test]
    fn graceful_decommission_mid_run_fails_nothing() {
        let report = run_simulation(&elastic_config(ElasticPlan {
            decommission_at_us: vec![5_000, 12_000],
            ..ElasticPlan::default()
        }))
        .unwrap();
        assert_eq!(report.failed, 0, "graceful drains must not fail queries");
        assert_eq!(report.completed, 400);
        let e = report.elastic.unwrap();
        assert_eq!(e.workers_decommissioned, 2, "both drains ran to the reaper");
        assert_eq!(e.final_workers, 2);
    }

    #[test]
    fn spot_storm_recovers_within_bound_with_zero_failures() {
        let report = run_simulation(&elastic_config(storm_plan())).unwrap();
        assert_eq!(report.failed, 0, "survivors plus retries must absorb the storm");
        assert_eq!(report.completed, 400);
        let e = report.elastic.unwrap();
        assert_eq!(e.workers_revoked, 4, "the whole spot class went down");
        assert!(e.scale_outs > 0, "the autoscaler must backfill");
        assert!(
            e.recovered_at_us.is_some() && e.recovered_within_bound(),
            "capacity must return to the pre-storm level within the budget: {e:?}"
        );
    }

    #[test]
    fn elastic_runs_are_deterministic() {
        let a = run_simulation(&elastic_config(storm_plan())).unwrap();
        let b = run_simulation(&elastic_config(storm_plan())).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.elastic, b.elastic);
        assert_eq!(a.cache_digest, b.cache_digest, "storms must tear caches down identically");
    }

    #[test]
    fn wfq_protects_the_interactive_lane_under_the_rush() {
        let wfq = run_simulation(&small_config(SchedulerMode::Wfq)).unwrap();
        let fifo = run_simulation(&small_config(SchedulerMode::Fifo)).unwrap();
        let wfq_p99 = wfq.class_latency_us["interactive"].quantile(0.99);
        let fifo_p99 = fifo.class_latency_us["interactive"].quantile(0.99);
        assert!(
            wfq_p99 < fifo_p99,
            "interactive p99 under wfq ({wfq_p99}µs) should beat fifo ({fifo_p99}µs)"
        );
    }
}
