#![warn(missing_docs)]

//! Cluster-wide multi-query workload simulation.
//!
//! PR 5's discrete-event scheduler simulated *one* query at a time; this
//! crate lifts it to the cluster: thousands of Zipf-skewed tenants submit
//! tens of thousands of queries against one simulated Presto cluster, with
//! Poisson or diurnal arrival processes, per-tenant weighted fair queuing
//! over the admission lanes, and per-tenant latency SLO reports — all on
//! the virtual [`presto_common::SimClock`], deterministic in
//! `(seed, config)`.
//!
//! - [`workload`] — arrival processes, the Zipf tenant sampler, tenant
//!   classes (interactive / dashboard / batch) and the plan-template
//!   catalog, every draw pure in `(seed, stream, index)`;
//! - [`slo`] — declared per-class p99 targets in virtual time;
//! - [`sim`] — the event loop: queries queue under WFQ or FIFO, dispatch
//!   into real cluster executions on [`presto_common::SimClock::fork`]ed
//!   timelines, and fold their latencies and trace digests into a
//!   [`sim::SimReport`].

pub mod sim;
pub mod slo;
pub mod workload;

pub use sim::{
    run_simulation, ElasticPlan, ElasticReport, SchedulerMode, SimConfig, SimReport, TenantReport,
    SPOT_CLASS,
};
pub use slo::SloPolicy;
pub use workload::{tenant_class, ArrivalProcess, PlanTemplate, TenantClass, ZipfSampler};
