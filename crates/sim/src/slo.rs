//! Declared latency SLOs per workload class, in virtual time.

use crate::workload::TenantClass;

/// Per-class p99 latency targets, in virtual µs. The defaults mirror the
/// paper's tiers: interactive analysts expect answers in a few virtual
/// milliseconds, dashboards refresh on a deadline an order looser, and
/// batch pipelines only care about eventual completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Interactive p99 target (virtual µs).
    pub interactive_p99_us: u64,
    /// Dashboard p99 target (virtual µs).
    pub dashboard_p99_us: u64,
    /// Batch p99 target (virtual µs).
    pub batch_p99_us: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy { interactive_p99_us: 5_000, dashboard_p99_us: 25_000, batch_p99_us: 100_000 }
    }
}

impl SloPolicy {
    /// The p99 target a class declared.
    pub fn p99_target(&self, class: TenantClass) -> u64 {
        match class {
            TenantClass::Interactive => self.interactive_p99_us,
            TenantClass::Dashboard => self.dashboard_p99_us,
            TenantClass::Batch => self.batch_p99_us,
        }
    }
}
