//! Deterministic workload generation: arrival processes, tenant skew, and
//! the plan-template catalog.
//!
//! Every draw is a pure function of `(seed, stream, index)` through
//! [`presto_common::rng`], so the workload a config describes is identical
//! on every run and every host — the property the simulator's digests and
//! the CI determinism gate rely on. The diurnal rate curve is a *triangle*
//! wave rather than a sinusoid on purpose: it needs no transcendental
//! functions beyond the `ln` already inside the exponential draw, keeping
//! the bit pattern of every arrival time easy to reason about.

use presto_common::rng::{exp_draw, unit_draw};
use presto_resource::QueryPriority;

/// RNG stream salts: one per decision kind, so adding a draw to one stream
/// never shifts any other stream's sequence.
const ARRIVAL_STREAM: u64 = 0x4152_5249_5645_5f53;
const TENANT_STREAM: u64 = 0x5445_4e41_4e54_5f53;
const TEMPLATE_STREAM: u64 = 0x504c_414e_5f53_414c;

/// When queries arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean gap between consecutive arrivals, in virtual µs.
        mean_interarrival_us: f64,
    },
    /// Poisson arrivals whose *rate* follows a triangle-wave day: the rate
    /// multiplier climbs linearly from `1 - amplitude` at the start of each
    /// cycle to `1 + amplitude` at its midpoint and back, averaging 1 over
    /// a full cycle. The peak models the morning dashboard rush that
    /// transiently exceeds cluster capacity.
    Diurnal {
        /// Mean gap at the *average* rate, in virtual µs.
        mean_interarrival_us: f64,
        /// Peak-to-mean rate swing in `[0, 1)`.
        amplitude: f64,
        /// Length of one simulated day, in virtual µs.
        cycle_us: u64,
    },
}

impl ArrivalProcess {
    /// The gap (virtual µs) between arrival `index - 1` and arrival
    /// `index`, with the process currently at virtual time `at_us`. Pure in
    /// `(seed, index, at_us)`: the same inputs give the same gap, always.
    pub fn gap_us(&self, seed: u64, index: u64, at_us: u64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_interarrival_us } => {
                exp_draw(seed, ARRIVAL_STREAM, index, mean_interarrival_us)
            }
            ArrivalProcess::Diurnal { mean_interarrival_us, amplitude, cycle_us } => {
                let draw = exp_draw(seed, ARRIVAL_STREAM, index, mean_interarrival_us);
                draw / diurnal_rate(at_us, amplitude, cycle_us)
            }
        }
    }
}

/// The triangle-wave rate multiplier at `at_us`: `1 - amplitude` at the
/// cycle boundary, `1 + amplitude` at the midpoint.
fn diurnal_rate(at_us: u64, amplitude: f64, cycle_us: u64) -> f64 {
    let cycle = cycle_us.max(1);
    let phase = (at_us % cycle) as f64 / cycle as f64;
    let triangle = 1.0 - (2.0 * phase - 1.0).abs();
    let amplitude = amplitude.clamp(0.0, 0.99);
    (1.0 - amplitude) + 2.0 * amplitude * triangle
}

/// Zipfian tenant picker: tenant `0` is the heaviest, with mass
/// `∝ 1/(rank+1)^s`. Built once as a cumulative distribution; sampling is
/// a binary search over a uniform draw.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `tenants` tenants with exponent `s` (`s = 0` is
    /// uniform; larger `s` concentrates load on the head).
    pub fn new(tenants: u32, s: f64) -> ZipfSampler {
        let n = tenants.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Map a uniform draw in `[0, 1)` to a tenant id.
    pub fn sample(&self, unit: f64) -> u32 {
        let i = self.cdf.partition_point(|&c| c < unit);
        i.min(self.cdf.len() - 1) as u32
    }

    /// The tenant a given query index lands on.
    pub fn tenant_for(&self, seed: u64, index: u64) -> u32 {
        self.sample(unit_draw(seed, TENANT_STREAM, index))
    }
}

/// Workload class of a tenant, fixed by its popularity rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantClass {
    /// Ad-hoc analysts: many light tenants, small queries, tight SLO.
    Interactive,
    /// Scheduled dashboards: the popular head tenants, medium queries.
    Dashboard,
    /// ETL pipelines: a band of heavy tenants, large scans, loose SLO.
    Batch,
}

impl TenantClass {
    /// Human-readable class name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::Interactive => "interactive",
            TenantClass::Dashboard => "dashboard",
            TenantClass::Batch => "batch",
        }
    }

    /// Admission lane. Interactive rides the high-priority lane;
    /// dashboards and batch share the normal lane and rely on weights —
    /// parking batch in the low lane would let the fair queue starve it
    /// outright under sustained dashboard load.
    pub fn lane(self) -> QueryPriority {
        match self {
            TenantClass::Interactive => QueryPriority::High,
            TenantClass::Dashboard | TenantClass::Batch => QueryPriority::Normal,
        }
    }

    /// Fair-queuing base weight within the lane (scaled per tenant by
    /// [`tenant_weight`]). Batch groups carry the largest base weight:
    /// their queries hold the most slot-units, so an equal weight would
    /// let the fair queue defer them almost indefinitely behind a stream
    /// of cheap dashboard queries.
    pub fn weight(self) -> u64 {
        match self {
            TenantClass::Interactive => 4,
            TenantClass::Dashboard => 8,
            TenantClass::Batch => 24,
        }
    }

    /// Concurrent execution slot-units a query of this class holds while
    /// running — the coordinator's stand-in for the memory-and-worker
    /// grant a query of that size reserves. Large grants are what a naive
    /// FIFO admission queue blocks on.
    pub fn slot_units(self) -> usize {
        match self {
            TenantClass::Interactive => 1,
            TenantClass::Dashboard => 2,
            TenantClass::Batch => 5,
        }
    }
}

/// The provisioned scheduling weight of one tenant: its class's base
/// weight scaled by a popularity boost that tracks the Zipf demand curve
/// (heads get up to 8x). This mirrors how Presto resource groups are
/// provisioned in practice — `schedulingWeight` is sized to the group's
/// expected share, so a busy dashboard team owns a matching share of the
/// cluster instead of being throttled to a 1/N sliver, while the floor of
/// one base weight still guarantees every light tenant a share no heavy
/// tenant can take away.
pub fn tenant_weight(rank: u32, zipf_exponent: f64, class: TenantClass) -> u64 {
    let boost = (16.0 / f64::from(rank + 1).powf(zipf_exponent)).ceil().clamp(1.0, 16.0);
    class.weight() * boost as u64
}

/// A tenant's class from its Zipf rank: the popular head (top 10%) runs
/// dashboards, the next 10% are batch pipelines, and the long tail is
/// interactive analysts.
pub fn tenant_class(rank: u32, tenants: u32) -> TenantClass {
    let n = u64::from(tenants.max(1));
    let r = u64::from(rank);
    if r * 10 < n {
        TenantClass::Dashboard
    } else if r * 5 < n {
        TenantClass::Batch
    } else {
        TenantClass::Interactive
    }
}

/// One entry in the plan-template catalog: a SQL shape over one of the
/// simulator's seeded tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTemplate {
    /// The query text.
    pub sql: &'static str,
    /// Pages (= splits) the scan covers; drives the virtual service time.
    pub pages: usize,
}

/// Pages in the small / medium / large seeded tables.
pub const SMALL_PAGES: usize = 4;
/// Pages in the medium seeded table.
pub const MEDIUM_PAGES: usize = 16;
/// Pages in the large seeded table.
pub const LARGE_PAGES: usize = 48;

const INTERACTIVE_TEMPLATES: &[PlanTemplate] = &[
    PlanTemplate { sql: "SELECT count(*) FROM sim_small", pages: SMALL_PAGES },
    PlanTemplate { sql: "SELECT max(id) FROM sim_small", pages: SMALL_PAGES },
];

const DASHBOARD_TEMPLATES: &[PlanTemplate] = &[
    PlanTemplate { sql: "SELECT count(*) FROM sim_medium", pages: MEDIUM_PAGES },
    PlanTemplate { sql: "SELECT sum(id) FROM sim_medium", pages: MEDIUM_PAGES },
];

const BATCH_TEMPLATES: &[PlanTemplate] = &[
    PlanTemplate { sql: "SELECT sum(id) FROM sim_large", pages: LARGE_PAGES },
    PlanTemplate { sql: "SELECT count(*) FROM sim_large", pages: LARGE_PAGES },
];

/// The template catalog for one class.
pub fn templates(class: TenantClass) -> &'static [PlanTemplate] {
    match class {
        TenantClass::Interactive => INTERACTIVE_TEMPLATES,
        TenantClass::Dashboard => DASHBOARD_TEMPLATES,
        TenantClass::Batch => BATCH_TEMPLATES,
    }
}

/// The template query `index` runs, drawn uniformly from its class's
/// catalog — pure in `(seed, index)`.
pub fn pick_template(seed: u64, index: u64, class: TenantClass) -> PlanTemplate {
    let catalog = templates(class);
    let draw = unit_draw(seed, TEMPLATE_STREAM, index);
    let i = ((draw * catalog.len() as f64) as usize).min(catalog.len() - 1);
    catalog[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gaps_are_pure_in_seed_and_index() {
        let p = ArrivalProcess::Poisson { mean_interarrival_us: 100.0 };
        assert_eq!(p.gap_us(7, 3, 0).to_bits(), p.gap_us(7, 3, 0).to_bits());
        assert_ne!(p.gap_us(7, 3, 0).to_bits(), p.gap_us(8, 3, 0).to_bits());
        // Poisson ignores the current time entirely
        assert_eq!(p.gap_us(7, 3, 0).to_bits(), p.gap_us(7, 3, 999).to_bits());
    }

    #[test]
    fn diurnal_peak_compresses_gaps() {
        let d =
            ArrivalProcess::Diurnal { mean_interarrival_us: 100.0, amplitude: 0.5, cycle_us: 1000 };
        let trough = d.gap_us(7, 3, 0);
        let peak = d.gap_us(7, 3, 500);
        assert!(peak < trough, "peak gap {peak} should be under trough gap {trough}");
        // same draw, scaled by the rate ratio (1.5 / 0.5)
        assert!((trough / peak - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_dominates_the_tail() {
        let z = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for i in 0..10_000 {
            counts[z.tenant_for(42, i) as usize] += 1;
        }
        assert!(counts[0] > counts[50] * 10, "{} vs {}", counts[0], counts[50]);
        assert!(counts.iter().filter(|&&c| c > 0).count() > 50, "the tail still appears");
    }

    #[test]
    fn classes_partition_the_rank_space() {
        assert_eq!(tenant_class(0, 1000), TenantClass::Dashboard);
        assert_eq!(tenant_class(99, 1000), TenantClass::Dashboard);
        assert_eq!(tenant_class(100, 1000), TenantClass::Batch);
        assert_eq!(tenant_class(199, 1000), TenantClass::Batch);
        assert_eq!(tenant_class(200, 1000), TenantClass::Interactive);
        assert_eq!(tenant_class(999, 1000), TenantClass::Interactive);
    }

    #[test]
    fn provisioned_weights_track_the_demand_curve() {
        let head = tenant_weight(0, 0.7, TenantClass::Dashboard);
        let mid = tenant_weight(10, 0.7, TenantClass::Dashboard);
        let tail = tenant_weight(900, 0.7, TenantClass::Interactive);
        assert_eq!(head, 16 * TenantClass::Dashboard.weight(), "head gets the full boost");
        assert!(head > mid, "boost decays with rank: {head} vs {mid}");
        assert_eq!(tail, TenantClass::Interactive.weight(), "the tail keeps its base weight");
    }

    #[test]
    fn template_picks_stay_inside_the_class_catalog() {
        for i in 0..100 {
            let t = pick_template(11, i, TenantClass::Batch);
            assert!(templates(TenantClass::Batch).contains(&t));
        }
    }
}
