//! Recursive-descent SQL parser.

use presto_common::{PrestoError, Result};

use crate::ast::{BinaryOp, Expr, JoinType, Query, QueryExpr, SelectItem, Statement, TableRef};
use crate::lexer::{tokenize, Token};

/// Parse one SQL statement.
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = if parser.eat_keyword("explain") {
        if parser.eat_keyword("analyze") {
            Statement::ExplainAnalyze(parser.parse_query_expr()?)
        } else {
            Statement::Explain(parser.parse_query_expr()?)
        }
    } else {
        Statement::Query(parser.parse_query_expr()?)
    };
    parser.eat_symbol(";");
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("unexpected trailing tokens"));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> PrestoError {
        PrestoError::Parse(format!("{msg} at token {} ({:?})", self.pos, self.tokens.get(self.pos)))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{s}'")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) if !is_reserved(&w) => Ok(w),
            Some(Token::QuotedIdent(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    // ------------------------------------------------------------- query

    fn parse_query_expr(&mut self) -> Result<QueryExpr> {
        let mut branches = vec![self.parse_query()?];
        while self.eat_keyword("union") {
            self.expect_keyword("all")?;
            // ORDER BY / LIMIT before a UNION would be ambiguous; standard
            // SQL only allows them after the last branch (union-level)
            let prev = branches.last().expect("at least one branch");
            if !prev.order_by.is_empty() || prev.limit.is_some() {
                return Err(self.error(
                    "ORDER BY/LIMIT must follow the last UNION ALL branch                      (it applies to the whole union)",
                ));
            }
            branches.push(self.parse_query()?);
        }
        if branches.len() == 1 {
            return Ok(QueryExpr::Select(Box::new(branches.pop().expect("one branch"))));
        }
        // the trailing ORDER BY / LIMIT the last branch consumed belongs to
        // the union as a whole
        let mut last = branches.pop().expect("non-empty");
        let order_by = std::mem::take(&mut last.order_by);
        let limit = last.limit.take();
        branches.push(last);
        Ok(QueryExpr::UnionAll { branches, order_by, limit })
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut select = vec![self.parse_select_item()?];
        while self.eat_symbol(",") {
            select.push(self.parse_select_item()?);
        }
        let from = if self.eat_keyword("from") { Some(self.parse_table_ref()?) } else { None };
        let where_clause = if self.eat_keyword("where") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.parse_expr()?);
            while self.eat_symbol(",") {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("having") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.next() {
                Some(Token::Integer(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.error("expected LIMIT count")),
            }
        } else {
            None
        };
        Ok(Query { distinct, select, from, where_clause, group_by, having, order_by, limit })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("as") {
            Some(self.identifier()?)
        } else {
            // bare alias (not a keyword)
            match self.peek() {
                Some(Token::Word(w)) if !is_reserved(w) => {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                Some(Token::QuotedIdent(s)) => {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expression { expr, alias })
    }

    // -------------------------------------------------------------- from

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_keyword("cross") {
                self.expect_keyword("join")?;
                JoinType::Cross
            } else if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinType::Left
            } else if self.eat_keyword("inner") {
                self.expect_keyword("join")?;
                JoinType::Inner
            } else if self.eat_keyword("join") {
                JoinType::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinType::Cross {
                None
            } else {
                self.expect_keyword("on")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            let query = self.parse_query()?;
            self.expect_symbol(")")?;
            self.eat_keyword("as");
            let alias = self.identifier()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let mut parts = vec![self.identifier()?];
        while self.eat_symbol(".") {
            parts.push(self.identifier()?);
        }
        if parts.len() > 3 {
            return Err(self.error("table name has too many parts"));
        }
        let alias = if self.eat_keyword("as") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                Some(Token::Word(w)) if !is_reserved(w) => {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { parts, alias })
    }

    // ------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left =
                Expr::BinaryOp { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left =
                Expr::BinaryOp { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // postfix predicates
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.peek_keyword("not") {
            // lookahead for NOT IN / NOT BETWEEN / NOT LIKE
            let saved = self.pos;
            self.pos += 1;
            if self.peek_keyword("in") || self.peek_keyword("between") || self.peek_keyword("like")
            {
                true
            } else {
                self.pos = saved;
                false
            }
        } else {
            false
        };
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(",") {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("like") {
            let pattern = self.parse_additive()?;
            let like = Expr::BinaryOp {
                op: BinaryOp::Like,
                left: Box::new(left),
                right: Box::new(pattern),
            };
            return Ok(if negated { Expr::Not(Box::new(like)) } else { like });
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(BinaryOp::Eq),
            Some(Token::Symbol("<>")) => Some(BinaryOp::Neq),
            Some(Token::Symbol("<")) => Some(BinaryOp::Lt),
            Some(Token::Symbol("<=")) => Some(BinaryOp::Lte),
            Some(Token::Symbol(">")) => Some(BinaryOp::Gt),
            Some(Token::Symbol(">=")) => Some(BinaryOp::Gte),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.parse_additive()?;
                Ok(Expr::BinaryOp { op, left: Box::new(left), right: Box::new(right) })
            }
            None => Ok(left),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinaryOp::Add
            } else if self.eat_symbol("-") {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::BinaryOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinaryOp::Mul
            } else if self.eat_symbol("/") {
                BinaryOp::Div
            } else if self.eat_symbol("%") {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.parse_unary()?;
            left = Expr::BinaryOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            return Ok(Expr::Negate(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Integer(n)) => Ok(Expr::Integer(n)),
            Some(Token::Float(f)) => Ok(Expr::Float(f)),
            Some(Token::StringLit(s)) => Ok(Expr::StringLit(s)),
            Some(Token::Symbol("(")) => {
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Word(w)) if w == "true" => Ok(Expr::Boolean(true)),
            Some(Token::Word(w)) if w == "false" => Ok(Expr::Boolean(false)),
            Some(Token::Word(w)) if w == "null" => Ok(Expr::Null),
            Some(Token::Word(w)) if w == "case" => {
                let operand = if self.peek_keyword("when") {
                    None
                } else {
                    Some(Box::new(self.parse_expr()?))
                };
                let mut branches = Vec::new();
                while self.eat_keyword("when") {
                    let when = self.parse_expr()?;
                    self.expect_keyword("then")?;
                    let then = self.parse_expr()?;
                    branches.push((when, then));
                }
                if branches.is_empty() {
                    return Err(self.error("CASE needs at least one WHEN branch"));
                }
                let else_expr = if self.eat_keyword("else") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_keyword("end")?;
                Ok(Expr::Case { operand, branches, else_expr })
            }
            Some(Token::Word(w)) if w == "cast" => {
                self.expect_symbol("(")?;
                let expr = self.parse_expr()?;
                self.expect_keyword("as")?;
                let type_name = match self.next() {
                    Some(Token::Word(t)) => t,
                    _ => return Err(self.error("expected type name")),
                };
                self.expect_symbol(")")?;
                Ok(Expr::Cast { expr: Box::new(expr), type_name })
            }
            Some(Token::Word(w)) if !is_reserved(&w) => {
                // function call?
                if self.eat_symbol("(") {
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        return Ok(Expr::FunctionCall { name: w, args: vec![], is_star: true });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        args.push(self.parse_expr()?);
                        while self.eat_symbol(",") {
                            args.push(self.parse_expr()?);
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(Expr::FunctionCall { name: w, args, is_star: false });
                }
                // identifier chain
                let mut parts = vec![w];
                while self.eat_symbol(".") {
                    parts.push(self.identifier()?);
                }
                Ok(Expr::Identifier(parts))
            }
            Some(Token::QuotedIdent(s)) => {
                let mut parts = vec![s];
                while self.eat_symbol(".") {
                    parts.push(self.identifier()?);
                }
                Ok(Expr::Identifier(parts))
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected expression"))
            }
        }
    }
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "limit"
            | "join"
            | "inner"
            | "left"
            | "right"
            | "outer"
            | "cross"
            | "on"
            | "and"
            | "or"
            | "not"
            | "in"
            | "between"
            | "like"
            | "is"
            | "null"
            | "true"
            | "false"
            | "as"
            | "distinct"
            | "cast"
            | "desc"
            | "asc"
            | "explain"
            | "union"
            | "all"
            | "case"
            | "when"
            | "then"
            | "end"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(sql: &str) -> Query {
        match parse_sql(sql).unwrap() {
            Statement::Query(QueryExpr::Select(q)) => *q,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_trip_query() {
        let q = query(
            "SELECT base.driver_uuid FROM rawdata.schemaless_mezzanine_trips_rows \
             WHERE datestr = '2017-03-02' AND base.city_id in (12)",
        );
        assert_eq!(q.select.len(), 1);
        match &q.select[0] {
            SelectItem::Expression { expr: Expr::Identifier(parts), .. } => {
                assert_eq!(parts, &["base", "driver_uuid"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.from {
            Some(TableRef::Table { parts, .. }) => {
                assert_eq!(parts, &["rawdata", "schemaless_mezzanine_trips_rows"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_the_papers_geo_query() {
        let q = query(
            "SELECT c.city_id, count(*) FROM trips_table as t \
             JOIN city_table as c ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) \
             WHERE datestr = '2017-08-01' GROUP BY 1",
        );
        assert_eq!(q.group_by, vec![Expr::Integer(1)]);
        match &q.from {
            Some(TableRef::Join { kind: JoinType::Inner, on: Some(on), .. }) => match on {
                Expr::FunctionCall { name, args, .. } => {
                    assert_eq!(name, "st_contains");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &q.select[1] {
            SelectItem::Expression { expr: Expr::FunctionCall { is_star: true, .. }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parentheses() {
        let q = query("SELECT a + b * c FROM t");
        match &q.select[0] {
            SelectItem::Expression {
                expr: Expr::BinaryOp { op: BinaryOp::Add, right, .. },
                ..
            } => {
                assert!(matches!(**right, Expr::BinaryOp { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = query("SELECT (a + b) * c FROM t");
        match &q.select[0] {
            SelectItem::Expression { expr: Expr::BinaryOp { op: BinaryOp::Mul, .. }, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let q = query("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match q.where_clause.unwrap() {
            Expr::BinaryOp { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::BinaryOp { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_clause_set() {
        let q = query(
            "SELECT city, count(*) AS cnt FROM trips \
             WHERE fare BETWEEN 5 AND 50 AND city NOT IN ('x') AND note IS NOT NULL \
             GROUP BY city HAVING count(*) > 10 \
             ORDER BY cnt DESC, city LIMIT 20",
        );
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].1);
        assert!(!q.order_by[1].1);
        assert_eq!(q.limit, Some(20));
    }

    #[test]
    fn joins_and_subqueries() {
        let q = query(
            "SELECT * FROM (SELECT a FROM t1 LIMIT 5) s \
             LEFT JOIN t2 ON s.a = t2.a CROSS JOIN t3",
        );
        match q.from.unwrap() {
            TableRef::Join { kind: JoinType::Cross, left, .. } => match *left {
                TableRef::Join { kind: JoinType::Left, left: inner, .. } => match *inner {
                    TableRef::Subquery { alias, .. } => assert_eq!(alias, "s"),
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_expressions() {
        let q = query(
            "SELECT CASE WHEN fare > 20 THEN 'high' WHEN fare > 10 THEN 'mid' ELSE 'low' END FROM t",
        );
        match &q.select[0] {
            SelectItem::Expression {
                expr: Expr::Case { operand: None, branches, else_expr },
                ..
            } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = query("SELECT CASE status WHEN 'done' THEN 1 END FROM t");
        match &q.select[0] {
            SelectItem::Expression {
                expr: Expr::Case { operand: Some(_), branches, else_expr },
                ..
            } => {
                assert_eq!(branches.len(), 1);
                assert!(else_expr.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_sql("SELECT CASE END FROM t").is_err());
    }

    #[test]
    fn union_all_chains() {
        match parse_sql("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap() {
            Statement::Query(QueryExpr::UnionAll { branches, order_by, limit }) => {
                assert_eq!(branches.len(), 3);
                assert!(order_by.is_empty());
                assert_eq!(limit, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // UNION without ALL is unsupported (set semantics not implemented)
        assert!(parse_sql("SELECT 1 UNION SELECT 2").is_err());
    }

    #[test]
    fn union_level_order_by_and_limit() {
        // trailing ORDER BY / LIMIT bind to the whole union
        match parse_sql("SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY 1 DESC LIMIT 7")
            .unwrap()
        {
            Statement::Query(QueryExpr::UnionAll { branches, order_by, limit }) => {
                assert_eq!(branches.len(), 2);
                assert!(branches.iter().all(|b| b.order_by.is_empty() && b.limit.is_none()));
                assert_eq!(order_by.len(), 1);
                assert!(order_by[0].1);
                assert_eq!(limit, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // ...but not in the middle of a chain
        assert!(parse_sql("SELECT a FROM t ORDER BY 1 UNION ALL SELECT a FROM u").is_err());
        assert!(parse_sql("SELECT a FROM t LIMIT 3 UNION ALL SELECT a FROM u").is_err());
    }

    #[test]
    fn explain_cast_and_errors() {
        assert!(matches!(parse_sql("EXPLAIN SELECT 1").unwrap(), Statement::Explain(_)));
        assert!(matches!(
            parse_sql("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        // ANALYZE stays usable as a plain identifier elsewhere
        assert!(matches!(
            parse_sql("EXPLAIN SELECT analyze FROM t").unwrap(),
            Statement::Explain(_)
        ));
        let q = query("SELECT CAST(x AS bigint) FROM t");
        match &q.select[0] {
            SelectItem::Expression { expr: Expr::Cast { type_name, .. }, .. } => {
                assert_eq!(type_name, "bigint");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_sql("SELECT FROM t").is_err());
        assert!(parse_sql("SELECT a FROM").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE").is_err());
        assert!(parse_sql("SELECT a FROM t extra garbage !").is_err());
    }
}
