//! The SQL abstract syntax tree.

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query expression (SELECT, possibly UNION ALL chains).
    Query(QueryExpr),
    /// `EXPLAIN <query>`.
    Explain(QueryExpr),
    /// `EXPLAIN ANALYZE <query>` — execute, then render the plan annotated
    /// with per-operator runtime stats.
    ExplainAnalyze(QueryExpr),
}

/// A query expression: one SELECT or a UNION ALL chain.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A plain SELECT.
    Select(Box<Query>),
    /// `branch UNION ALL branch [...]` with an optional trailing ORDER BY /
    /// LIMIT that applies to the whole union (standard SQL semantics).
    UnionAll {
        /// The SELECT branches, in order (at least two).
        branches: Vec<Query>,
        /// Union-level ORDER BY keys `(expr, descending)`.
        order_by: Vec<(Expr, bool)>,
        /// Union-level LIMIT.
        limit: Option<u64>,
    },
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM clause (optional: `SELECT 1` is legal).
    pub from: Option<TableRef>,
    /// WHERE clause.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions (possibly ordinals).
    pub group_by: Vec<Expr>,
    /// HAVING clause.
    pub having: Option<Expr>,
    /// ORDER BY keys `(expr, descending)`.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expression {
        /// The expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `[catalog.][schema.]table [alias]`
    Table {
        /// Name parts as written (1–3 of them).
        parts: Vec<String>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `left JOIN right ON cond` / `left CROSS JOIN right`.
    Join {
        /// Left relation.
        left: Box<TableRef>,
        /// Right relation.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinType,
        /// ON condition (`None` for CROSS JOIN).
        on: Option<Expr>,
    },
    /// `(query) alias` — derived table.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN`.
    Cross,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `LIKE`
    Like,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified identifier chain: `city`, `t.city`,
    /// `base.city_id`, `t.base.city_id`. Resolution (alias vs column vs
    /// nested field) happens in the analyzer.
    Identifier(Vec<String>),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    StringLit(String),
    /// TRUE / FALSE.
    Boolean(bool),
    /// NULL.
    Null,
    /// Binary operation.
    BinaryOp {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Negate(Box<Expr>),
    /// Function call, e.g. `st_point(lng, lat)`, `count(*)`.
    FunctionCall {
        /// Function name (lower-cased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `count(*)`-style star argument?
        is_star: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Needle.
        expr: Box<Expr>,
        /// Haystack.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Value.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Value.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Value.
        expr: Box<Expr>,
        /// Target type name (lower-cased, e.g. `bigint`, `varchar`).
        type_name: String,
    },
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Optional operand (`CASE x WHEN 1 ...` vs `CASE WHEN cond ...`).
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` branches in order.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE result.
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Render a default output-column name for an unaliased select item.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Identifier(parts) => parts.last().cloned().unwrap_or_default(),
            Expr::FunctionCall { name, is_star: true, .. } => format!("{name}_star"),
            Expr::FunctionCall { name, .. } => name.clone(),
            Expr::Cast { expr, .. } => expr.default_name(),
            _ => "_col".to_string(),
        }
    }
}
