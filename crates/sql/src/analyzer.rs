//! Semantic analysis: resolve names against catalogs, type-check
//! expressions, lower the AST to a [`LogicalPlan`].

use presto_common::{DataType, PrestoError, Result, Schema};
use presto_connectors::{CatalogRegistry, ColumnPath, ScanRequest};
use presto_expr::{AggregateFunction, FunctionRegistry, RowExpression, SpecialForm};
use presto_plan::logical::{AggregateExpr, AggregateStep, JoinKind, LogicalPlan, SortKey};

use crate::ast::{BinaryOp, Expr, JoinType, Query, QueryExpr, SelectItem, TableRef};

/// Session context for analysis.
#[derive(Clone)]
pub struct AnalyzerContext {
    /// Registered catalogs.
    pub catalogs: CatalogRegistry,
    /// Function registry (built-ins + plugins).
    pub registry: FunctionRegistry,
    /// Catalog used for unqualified table names.
    pub default_catalog: String,
    /// Schema used for unqualified table names.
    pub default_schema: String,
}

/// Analyze a query expression into a logical plan (rooted at an Output node,
/// or a Union of Output-rooted sides with its own Sort/Limit on top).
pub fn analyze(query: &QueryExpr, ctx: &AnalyzerContext) -> Result<LogicalPlan> {
    match query {
        QueryExpr::Select(q) => {
            let (plan, _) = analyze_query(q, ctx)?;
            Ok(plan)
        }
        QueryExpr::UnionAll { branches, order_by, limit } => {
            let mut inputs = Vec::with_capacity(branches.len());
            let mut first_names: Option<Vec<String>> = None;
            for branch in branches {
                let (plan, names) = analyze_query(branch, ctx)?;
                if first_names.is_none() {
                    first_names = Some(names);
                }
                inputs.push(plan);
            }
            let names = first_names.expect("union has at least two branches");
            let union = LogicalPlan::Union { inputs };
            let schema = union.output_schema()?; // type-check the sides

            // union-level ORDER BY: ordinals and first-branch output names
            let mut plan = union;
            if !order_by.is_empty() {
                let mut keys = Vec::with_capacity(order_by.len());
                for (ast, desc) in order_by {
                    let expr = resolve_order_key(ast, &names, &schema, None, &[])?;
                    keys.push(SortKey { expr, descending: *desc });
                }
                plan = LogicalPlan::Sort { input: Box::new(plan), keys };
            }
            if let Some(limit) = limit {
                plan = LogicalPlan::Limit { input: Box::new(plan), count: *limit as usize };
            }
            Ok(plan)
        }
    }
}

// ------------------------------------------------------------------ scopes

#[derive(Debug, Clone)]
struct ScopeColumn {
    qualifier: Option<String>,
    name: String,
    data_type: DataType,
}

#[derive(Debug, Clone, Default)]
struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    /// Resolve an identifier chain to `(channel, remaining nested path)`.
    fn resolve(&self, parts: &[String]) -> Result<(usize, Vec<String>)> {
        // candidate interpretations, longest qualifier first
        let mut matches: Vec<(usize, Vec<String>)> = Vec::new();
        // qualifier.column[.fields...]
        if parts.len() >= 2 {
            for (i, c) in self.columns.iter().enumerate() {
                if c.qualifier.as_deref() == Some(parts[0].as_str()) && c.name == parts[1] {
                    matches.push((i, parts[2..].to_vec()));
                }
            }
        }
        // column[.fields...]
        if matches.is_empty() {
            for (i, c) in self.columns.iter().enumerate() {
                if c.name == parts[0] {
                    matches.push((i, parts[1..].to_vec()));
                }
            }
        }
        match matches.len() {
            0 => Err(PrestoError::Analysis(format!(
                "column '{}' cannot be resolved",
                parts.join(".")
            ))),
            1 => Ok(matches.remove(0)),
            _ => Err(PrestoError::Analysis(format!("column '{}' is ambiguous", parts.join(".")))),
        }
    }
}

// -------------------------------------------------------------------- FROM

fn analyze_table_ref(table_ref: &TableRef, ctx: &AnalyzerContext) -> Result<(LogicalPlan, Scope)> {
    match table_ref {
        TableRef::Table { parts, alias } => {
            let (mut catalog, mut schema, table) = match parts.len() {
                1 => (ctx.default_catalog.clone(), ctx.default_schema.clone(), parts[0].clone()),
                2 => (ctx.default_catalog.clone(), parts[0].clone(), parts[1].clone()),
                3 => (parts[0].clone(), parts[1].clone(), parts[2].clone()),
                n => return Err(PrestoError::Analysis(format!("table name has {n} parts"))),
            };
            let mut resolved = ctx.catalogs.table_schema(&catalog, &schema, &table);
            if resolved.is_err() && parts.len() == 2 && ctx.catalogs.get(&parts[0]).is_ok() {
                // `a.b` resolved as schema.table failed, but `a` names a
                // registered catalog — retry as catalog.default.table, the
                // reading `system.metrics` relies on.
                if let Ok(s) = ctx.catalogs.table_schema(&parts[0], "default", &table) {
                    catalog = parts[0].clone();
                    schema = "default".to_string();
                    resolved = Ok(s);
                }
            }
            let table_schema = resolved?;
            let request = ScanRequest::project(
                table_schema.fields().iter().map(|f| ColumnPath::whole(&f.name)).collect(),
            );
            let qualifier = alias.clone().unwrap_or_else(|| table.clone());
            let scope = Scope {
                columns: table_schema
                    .fields()
                    .iter()
                    .map(|f| ScopeColumn {
                        qualifier: Some(qualifier.clone()),
                        name: f.name.clone(),
                        data_type: f.data_type.clone(),
                    })
                    .collect(),
            };
            let plan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
            Ok((plan, scope))
        }
        TableRef::Subquery { query, alias } => {
            let (plan, names) = analyze_query(query, ctx)?;
            let schema = plan.output_schema()?;
            let scope = Scope {
                columns: names
                    .iter()
                    .zip(schema.fields())
                    .map(|(n, f)| ScopeColumn {
                        qualifier: Some(alias.clone()),
                        name: n.clone(),
                        data_type: f.data_type.clone(),
                    })
                    .collect(),
            };
            Ok((plan, scope))
        }
        TableRef::Join { left, right, kind, on } => {
            let (left_plan, left_scope) = analyze_table_ref(left, ctx)?;
            let (right_plan, right_scope) = analyze_table_ref(right, ctx)?;
            let mut combined = left_scope.clone();
            combined.columns.extend(right_scope.columns.clone());

            match kind {
                JoinType::Cross => Ok((
                    LogicalPlan::Join {
                        left: Box::new(left_plan),
                        right: Box::new(right_plan),
                        kind: JoinKind::Inner,
                        on: vec![],
                        residual: None,
                    },
                    combined,
                )),
                JoinType::Inner => {
                    let condition = on.as_ref().ok_or_else(|| {
                        PrestoError::Analysis("JOIN requires an ON condition".into())
                    })?;
                    let analyzed = analyze_expr(condition, &combined, ctx)?;
                    require_boolean(&analyzed, "JOIN condition")?;
                    // INNER JOIN ON cond ≡ cross join + filter; predicate
                    // pushdown promotes equi conjuncts to hash-join keys and
                    // the geospatial rule matches st_contains here (Fig 13).
                    let join = LogicalPlan::Join {
                        left: Box::new(left_plan),
                        right: Box::new(right_plan),
                        kind: JoinKind::Inner,
                        on: vec![],
                        residual: None,
                    };
                    Ok((
                        LogicalPlan::Filter { input: Box::new(join), predicate: analyzed },
                        combined,
                    ))
                }
                JoinType::Left => {
                    let condition = on.as_ref().ok_or_else(|| {
                        PrestoError::Analysis("LEFT JOIN requires an ON condition".into())
                    })?;
                    let analyzed = analyze_expr(condition, &combined, ctx)?;
                    require_boolean(&analyzed, "JOIN condition")?;
                    // ON semantics differ from WHERE for outer joins: keep
                    // equi conjuncts as keys, the rest as join residual.
                    let left_width = left_scope.columns.len();
                    let mut keys = Vec::new();
                    let mut residual = Vec::new();
                    for conjunct in analyzed.conjuncts() {
                        if let RowExpression::Call { handle, args } = &conjunct {
                            if handle.name == "eq" && args.len() == 2 {
                                let l_refs = args[0].referenced_columns();
                                let r_refs = args[1].referenced_columns();
                                let left_only = |v: &Vec<usize>| {
                                    !v.is_empty() && v.iter().all(|&c| c < left_width)
                                };
                                let right_only = |v: &Vec<usize>| {
                                    !v.is_empty() && v.iter().all(|&c| c >= left_width)
                                };
                                if left_only(&l_refs) && right_only(&r_refs) {
                                    keys.push((
                                        args[0].clone(),
                                        shift(args[1].clone(), left_width),
                                    ));
                                    continue;
                                }
                                if left_only(&r_refs) && right_only(&l_refs) {
                                    keys.push((
                                        args[1].clone(),
                                        shift(args[0].clone(), left_width),
                                    ));
                                    continue;
                                }
                            }
                        }
                        residual.push(conjunct);
                    }
                    Ok((
                        LogicalPlan::Join {
                            left: Box::new(left_plan),
                            right: Box::new(right_plan),
                            kind: JoinKind::Left,
                            on: keys,
                            residual: RowExpression::combine_conjuncts(residual),
                        },
                        combined,
                    ))
                }
            }
        }
    }
}

fn shift(expr: RowExpression, left_width: usize) -> RowExpression {
    expr.rewrite(&|e| match e {
        RowExpression::VariableReference { name, index, data_type } => {
            RowExpression::VariableReference { name, index: index - left_width, data_type }
        }
        other => other,
    })
}

// ------------------------------------------------------------- expressions

fn analyze_expr(expr: &Expr, scope: &Scope, ctx: &AnalyzerContext) -> Result<RowExpression> {
    match expr {
        Expr::Identifier(parts) => {
            let (channel, path) = scope.resolve(parts)?;
            let column = &scope.columns[channel];
            let mut out =
                RowExpression::column(column.name.clone(), channel, column.data_type.clone());
            // remaining parts dereference into nested structs (§V)
            for segment in &path {
                let DataType::Row(fields) = out.data_type() else {
                    return Err(PrestoError::Analysis(format!(
                        "cannot access field '{segment}' of non-struct type {}",
                        out.data_type()
                    )));
                };
                let idx = fields.iter().position(|f| f.name == *segment).ok_or_else(|| {
                    PrestoError::Analysis(format!("struct has no field '{segment}'"))
                })?;
                let field_type = fields[idx].data_type.clone();
                out = RowExpression::SpecialForm {
                    form: SpecialForm::Dereference { field_index: idx },
                    args: vec![out],
                    return_type: field_type,
                };
            }
            Ok(out)
        }
        Expr::Integer(n) => Ok(RowExpression::bigint(*n)),
        Expr::Float(f) => Ok(RowExpression::double(*f)),
        Expr::StringLit(s) => Ok(RowExpression::varchar(s.clone())),
        Expr::Boolean(b) => Ok(RowExpression::boolean(*b)),
        Expr::Null => Ok(RowExpression::null(DataType::Varchar)),
        Expr::BinaryOp { op, left, right } => {
            let l = analyze_expr(left, scope, ctx)?;
            let r = analyze_expr(right, scope, ctx)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    require_boolean(&l, "AND/OR operand")?;
                    require_boolean(&r, "AND/OR operand")?;
                    Ok(RowExpression::SpecialForm {
                        form: if *op == BinaryOp::And { SpecialForm::And } else { SpecialForm::Or },
                        args: vec![l, r],
                        return_type: DataType::Boolean,
                    })
                }
                _ => {
                    let name = match op {
                        BinaryOp::Eq => "eq",
                        BinaryOp::Neq => "neq",
                        BinaryOp::Lt => "lt",
                        BinaryOp::Lte => "lte",
                        BinaryOp::Gt => "gt",
                        BinaryOp::Gte => "gte",
                        BinaryOp::Add => "add",
                        BinaryOp::Sub => "sub",
                        BinaryOp::Mul => "mul",
                        BinaryOp::Div => "div",
                        BinaryOp::Mod => "mod",
                        BinaryOp::Like => "like",
                        BinaryOp::And | BinaryOp::Or => unreachable!(),
                    };
                    let handle = ctx.registry.resolve(name, &[l.data_type(), r.data_type()])?;
                    Ok(RowExpression::Call { handle, args: vec![l, r] })
                }
            }
        }
        Expr::Not(inner) => {
            let e = analyze_expr(inner, scope, ctx)?;
            require_boolean(&e, "NOT operand")?;
            let handle = ctx.registry.resolve("not", &[DataType::Boolean])?;
            Ok(RowExpression::Call { handle, args: vec![e] })
        }
        Expr::Negate(inner) => {
            let e = analyze_expr(inner, scope, ctx)?;
            let handle = ctx.registry.resolve("negate", &[e.data_type()])?;
            Ok(RowExpression::Call { handle, args: vec![e] })
        }
        Expr::FunctionCall { name, args, is_star } => {
            if AggregateFunction::from_name(name).is_some() || *is_star {
                return Err(PrestoError::Analysis(format!(
                    "aggregate function {name}() is not allowed here"
                )));
            }
            let analyzed: Vec<RowExpression> =
                args.iter().map(|a| analyze_expr(a, scope, ctx)).collect::<Result<Vec<_>>>()?;
            let arg_types: Vec<DataType> = analyzed.iter().map(|e| e.data_type()).collect();
            let handle = ctx.registry.resolve(name, &arg_types)?;
            Ok(RowExpression::Call { handle, args: analyzed })
        }
        Expr::InList { expr, list, negated } => {
            let needle = analyze_expr(expr, scope, ctx)?;
            let mut args = vec![needle];
            for item in list {
                args.push(analyze_expr(item, scope, ctx)?);
            }
            let in_expr = RowExpression::SpecialForm {
                form: SpecialForm::In,
                args,
                return_type: DataType::Boolean,
            };
            Ok(if *negated {
                let handle = ctx.registry.resolve("not", &[DataType::Boolean])?;
                RowExpression::Call { handle, args: vec![in_expr] }
            } else {
                in_expr
            })
        }
        Expr::Between { expr, low, high, negated } => {
            let between = RowExpression::SpecialForm {
                form: SpecialForm::Between,
                args: vec![
                    analyze_expr(expr, scope, ctx)?,
                    analyze_expr(low, scope, ctx)?,
                    analyze_expr(high, scope, ctx)?,
                ],
                return_type: DataType::Boolean,
            };
            Ok(if *negated {
                let handle = ctx.registry.resolve("not", &[DataType::Boolean])?;
                RowExpression::Call { handle, args: vec![between] }
            } else {
                between
            })
        }
        Expr::IsNull { expr, negated } => {
            let is_null = RowExpression::SpecialForm {
                form: SpecialForm::IsNull,
                args: vec![analyze_expr(expr, scope, ctx)?],
                return_type: DataType::Boolean,
            };
            Ok(if *negated {
                let handle = ctx.registry.resolve("not", &[DataType::Boolean])?;
                RowExpression::Call { handle, args: vec![is_null] }
            } else {
                is_null
            })
        }
        Expr::Cast { expr, type_name } => {
            let inner = analyze_expr(expr, scope, ctx)?;
            let target = parse_type_name(type_name)?;
            let handle = ctx.registry.resolve_cast(&inner.data_type(), &target);
            Ok(RowExpression::Call { handle, args: vec![inner] })
        }
        Expr::Case { operand, branches, else_expr } => {
            let operand = operand.as_ref().map(|o| analyze_expr(o, scope, ctx)).transpose()?;
            let analyzed: Vec<(RowExpression, RowExpression)> = branches
                .iter()
                .map(|(w, t)| Ok((analyze_expr(w, scope, ctx)?, analyze_expr(t, scope, ctx)?)))
                .collect::<Result<Vec<_>>>()?;
            let else_analyzed =
                else_expr.as_ref().map(|e| analyze_expr(e, scope, ctx)).transpose()?;
            build_case(operand, analyzed, else_analyzed, ctx)
        }
    }
}

/// Lower CASE to nested IF special forms, unifying the result type.
fn build_case(
    operand: Option<RowExpression>,
    branches: Vec<(RowExpression, RowExpression)>,
    else_expr: Option<RowExpression>,
    ctx: &AnalyzerContext,
) -> Result<RowExpression> {
    let is_null_literal =
        |e: &RowExpression| matches!(e, RowExpression::Constant { value, .. } if value.is_null());
    // result type: first non-NULL THEN/ELSE; every other branch must agree
    let mut result_type: Option<DataType> = None;
    for candidate in branches.iter().map(|(_, t)| t).chain(else_expr.iter()) {
        if is_null_literal(candidate) {
            continue;
        }
        match &result_type {
            None => result_type = Some(candidate.data_type()),
            Some(t) if *t == candidate.data_type() => {}
            Some(t) => {
                return Err(PrestoError::Analysis(format!(
                    "CASE branches have mixed types: {t} vs {}",
                    candidate.data_type()
                )))
            }
        }
    }
    let result_type = result_type
        .ok_or_else(|| PrestoError::Analysis("CASE needs at least one non-NULL result".into()))?;
    let retype = |e: RowExpression| -> RowExpression {
        if is_null_literal(&e) {
            RowExpression::null(result_type.clone())
        } else {
            e
        }
    };
    let mut acc = else_expr.map(retype).unwrap_or_else(|| RowExpression::null(result_type.clone()));
    for (when, then) in branches.into_iter().rev() {
        let condition = match &operand {
            // CASE x WHEN v THEN ... ≡ IF(x = v, ...)
            Some(op) => {
                let handle = ctx.registry.resolve("eq", &[op.data_type(), when.data_type()])?;
                RowExpression::Call { handle, args: vec![op.clone(), when] }
            }
            None => {
                require_boolean(&when, "CASE WHEN condition")?;
                when
            }
        };
        acc = RowExpression::SpecialForm {
            form: SpecialForm::If,
            args: vec![condition, retype(then), acc],
            return_type: result_type.clone(),
        };
    }
    Ok(acc)
}

fn parse_type_name(name: &str) -> Result<DataType> {
    match name {
        "boolean" => Ok(DataType::Boolean),
        "bigint" => Ok(DataType::Bigint),
        "integer" | "int" => Ok(DataType::Integer),
        "double" => Ok(DataType::Double),
        "varchar" => Ok(DataType::Varchar),
        "date" => Ok(DataType::Date),
        "timestamp" => Ok(DataType::Timestamp),
        other => Err(PrestoError::Analysis(format!("unknown type '{other}'"))),
    }
}

fn require_boolean(e: &RowExpression, context: &str) -> Result<()> {
    if e.data_type() != DataType::Boolean {
        return Err(PrestoError::Analysis(format!(
            "{context} must be boolean, got {}",
            e.data_type()
        )));
    }
    Ok(())
}

// ------------------------------------------------------------------- query

fn analyze_query(query: &Query, ctx: &AnalyzerContext) -> Result<(LogicalPlan, Vec<String>)> {
    // FROM
    let (mut plan, scope) = match &query.from {
        Some(table_ref) => analyze_table_ref(table_ref, ctx)?,
        None => (
            // SELECT without FROM: a single empty row
            LogicalPlan::Values { schema: Schema::empty(), rows: vec![vec![]] },
            Scope::default(),
        ),
    };

    // WHERE
    if let Some(where_expr) = &query.where_clause {
        if contains_aggregate(where_expr) {
            return Err(PrestoError::Analysis("WHERE clause cannot contain aggregates".into()));
        }
        let predicate = analyze_expr(where_expr, &scope, ctx)?;
        require_boolean(&predicate, "WHERE clause")?;
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
    }

    // expand select items
    let mut items: Vec<(String, Expr)> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                for c in &scope.columns {
                    // keep the qualifier so SELECT * over a join with shared
                    // column names resolves unambiguously
                    let parts = match &c.qualifier {
                        Some(q) => vec![q.clone(), c.name.clone()],
                        None => vec![c.name.clone()],
                    };
                    items.push((c.name.clone(), Expr::Identifier(parts)));
                }
            }
            SelectItem::Expression { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                items.push((name, expr.clone()));
            }
        }
    }

    // aggregation?
    let has_aggregates = items.iter().any(|(_, e)| contains_aggregate(e))
        || query.having.as_ref().is_some_and(contains_aggregate)
        || query.order_by.iter().any(|(e, _)| contains_aggregate(e));
    let aggregated = !query.group_by.is_empty() || has_aggregates;

    let mut output_names: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();
    dedupe_names(&mut output_names);

    if aggregated {
        // resolve GROUP BY items (ordinals refer to select items)
        let mut group_asts: Vec<Expr> = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            let ast = match g {
                Expr::Integer(n) => {
                    let idx = *n as usize;
                    if idx == 0 || idx > items.len() {
                        return Err(PrestoError::Analysis(format!(
                            "GROUP BY position {idx} is out of range"
                        )));
                    }
                    items[idx - 1].1.clone()
                }
                other => other.clone(),
            };
            if contains_aggregate(&ast) {
                return Err(PrestoError::Analysis("GROUP BY cannot contain aggregates".into()));
            }
            group_asts.push(ast);
        }
        let group_exprs: Vec<RowExpression> =
            group_asts.iter().map(|g| analyze_expr(g, &scope, ctx)).collect::<Result<Vec<_>>>()?;

        // collect distinct aggregate calls across select/having/order by
        let mut agg_calls: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| collect_aggregates(e, &mut agg_calls);
        for (_, e) in &items {
            collect(e);
        }
        if let Some(h) = &query.having {
            collect(h);
        }
        for (e, _) in &query.order_by {
            collect(e);
        }

        let mut aggregates = Vec::with_capacity(agg_calls.len());
        for (i, call) in agg_calls.iter().enumerate() {
            let Expr::FunctionCall { name, args, is_star } = call else {
                unreachable!("collect_aggregates only returns calls");
            };
            let function = if *is_star && name == "count" {
                AggregateFunction::CountStar
            } else {
                AggregateFunction::from_name(name)
                    .ok_or_else(|| PrestoError::Analysis(format!("unknown aggregate '{name}'")))?
            };
            let argument = if *is_star {
                None
            } else {
                if args.len() != 1 {
                    return Err(PrestoError::Analysis(format!(
                        "{name}() takes exactly one argument"
                    )));
                }
                Some(analyze_expr(&args[0], &scope, ctx)?)
            };
            // type-check
            function.return_type(argument.as_ref().map(|e| e.data_type()).as_ref())?;
            aggregates.push(AggregateExpr { function, argument, name: format!("agg_{i}") });
        }

        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: group_exprs.clone(),
            aggregates: aggregates.clone(),
            step: AggregateStep::Single,
        };
        let agg_schema = agg_plan.output_schema()?;

        // post-aggregation resolution: group items and aggregate calls map
        // to the aggregate node's output channels
        let resolver = PostAggResolver {
            group_asts: &group_asts,
            agg_calls: &agg_calls,
            agg_schema: &agg_schema,
            scope: &scope,
            ctx,
        };
        let select_exprs: Vec<(String, RowExpression)> = output_names
            .iter()
            .zip(items.iter())
            .map(|(name, (_, ast))| Ok((name.clone(), resolver.resolve(ast)?)))
            .collect::<Result<Vec<_>>>()?;

        plan = agg_plan;
        if let Some(having) = &query.having {
            let predicate = resolver.resolve(having)?;
            require_boolean(&predicate, "HAVING clause")?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }
        plan = LogicalPlan::Project { input: Box::new(plan), expressions: select_exprs.clone() };

        // ORDER BY over the projected output
        plan = apply_order_limit_output(
            plan,
            query,
            &output_names,
            Some(&resolver),
            &select_exprs,
            ctx,
        )?;
        Ok((plan, output_names))
    } else {
        let select_exprs: Vec<(String, RowExpression)> = output_names
            .iter()
            .zip(items.iter())
            .map(|(name, (_, ast))| Ok((name.clone(), analyze_expr(ast, &scope, ctx)?)))
            .collect::<Result<Vec<_>>>()?;
        plan = LogicalPlan::Project { input: Box::new(plan), expressions: select_exprs.clone() };

        if query.distinct {
            // DISTINCT = group by every output column
            let schema = plan.output_schema()?;
            let group_by = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| RowExpression::column(f.name.clone(), i, f.data_type.clone()))
                .collect();
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggregates: vec![],
                step: AggregateStep::Single,
            };
        }

        plan = apply_order_limit_output(plan, query, &output_names, None, &select_exprs, ctx)?;
        Ok((plan, output_names))
    }
}

fn apply_order_limit_output(
    mut plan: LogicalPlan,
    query: &Query,
    output_names: &[String],
    resolver: Option<&PostAggResolver<'_>>,
    select_exprs: &[(String, RowExpression)],
    _ctx: &AnalyzerContext,
) -> Result<LogicalPlan> {
    if !query.order_by.is_empty() {
        let schema = plan.output_schema()?;
        let mut keys = Vec::with_capacity(query.order_by.len());
        for (ast, desc) in &query.order_by {
            let expr = resolve_order_key(ast, output_names, &schema, resolver, select_exprs)?;
            keys.push(SortKey { expr, descending: *desc });
        }
        plan = LogicalPlan::Sort { input: Box::new(plan), keys };
    }
    if let Some(limit) = query.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), count: limit as usize };
    }
    Ok(LogicalPlan::Output { input: Box::new(plan), names: output_names.to_vec() })
}

/// Resolve an ORDER BY key: ordinal, output-name reference, or (in
/// aggregated queries) an expression present in the select list.
fn resolve_order_key(
    ast: &Expr,
    output_names: &[String],
    schema: &Schema,
    resolver: Option<&PostAggResolver<'_>>,
    select_exprs: &[(String, RowExpression)],
) -> Result<RowExpression> {
    if let Expr::Integer(n) = ast {
        let idx = *n as usize;
        if idx == 0 || idx > output_names.len() {
            return Err(PrestoError::Analysis(format!("ORDER BY position {idx} is out of range")));
        }
        let field = schema.field_at(idx - 1);
        return Ok(RowExpression::column(field.name.clone(), idx - 1, field.data_type.clone()));
    }
    if let Expr::Identifier(parts) = ast {
        if parts.len() == 1 {
            if let Some(idx) = output_names.iter().position(|n| *n == parts[0]) {
                let field = schema.field_at(idx);
                return Ok(RowExpression::column(field.name.clone(), idx, field.data_type.clone()));
            }
        }
    }
    // aggregated queries: find a select item with the same resolved form
    if let Some(r) = resolver {
        let resolved = r.resolve(ast)?;
        if let Some(idx) = select_exprs.iter().position(|(_, e)| *e == resolved) {
            let field = schema.field_at(idx);
            return Ok(RowExpression::column(field.name.clone(), idx, field.data_type.clone()));
        }
        return Err(PrestoError::Analysis(
            "ORDER BY expression must appear in the SELECT list".into(),
        ));
    }
    Err(PrestoError::Analysis(format!(
        "cannot resolve ORDER BY expression '{}'",
        ast.default_name()
    )))
}

// ------------------------------------------------------ aggregate plumbing

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::FunctionCall { name, is_star, args } => {
            *is_star
                || AggregateFunction::from_name(name).is_some()
                || args.iter().any(contains_aggregate)
        }
        Expr::BinaryOp { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Not(e) | Expr::Negate(e) => contains_aggregate(e),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Cast { expr, .. } => contains_aggregate(expr),
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || branches.iter().any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        _ => false,
    }
}

fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::FunctionCall { name, is_star, args } => {
            if *is_star || AggregateFunction::from_name(name).is_some() {
                if !out.contains(e) {
                    out.push(e.clone());
                }
            } else {
                for a in args {
                    collect_aggregates(a, out);
                }
            }
        }
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Not(e) | Expr::Negate(e) => collect_aggregates(e, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for l in list {
                collect_aggregates(l, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                collect_aggregates(op, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out);
            }
        }
        _ => {}
    }
}

/// Rewrites post-aggregation expressions: group items and aggregate calls
/// become references to the Aggregate node's output channels.
struct PostAggResolver<'a> {
    group_asts: &'a [Expr],
    agg_calls: &'a [Expr],
    agg_schema: &'a Schema,
    scope: &'a Scope,
    ctx: &'a AnalyzerContext,
}

impl PostAggResolver<'_> {
    fn resolve(&self, ast: &Expr) -> Result<RowExpression> {
        // whole expression is a group item?
        if let Some(idx) = self.group_asts.iter().position(|g| g == ast) {
            let field = self.agg_schema.field_at(idx);
            return Ok(RowExpression::column(field.name.clone(), idx, field.data_type.clone()));
        }
        // whole expression is an aggregate call?
        if let Some(idx) = self.agg_calls.iter().position(|a| a == ast) {
            let channel = self.group_asts.len() + idx;
            let field = self.agg_schema.field_at(channel);
            return Ok(RowExpression::column(field.name.clone(), channel, field.data_type.clone()));
        }
        // recurse into compound expressions
        match ast {
            Expr::BinaryOp { op, left, right } => {
                let rewritten = Expr::BinaryOp {
                    op: *op,
                    left: Box::new(Expr::Null),
                    right: Box::new(Expr::Null),
                };
                let _ = rewritten;
                let l = self.resolve(left)?;
                let r = self.resolve(right)?;
                match op {
                    BinaryOp::And | BinaryOp::Or => Ok(RowExpression::SpecialForm {
                        form: if *op == BinaryOp::And { SpecialForm::And } else { SpecialForm::Or },
                        args: vec![l, r],
                        return_type: DataType::Boolean,
                    }),
                    _ => {
                        let name = match op {
                            BinaryOp::Eq => "eq",
                            BinaryOp::Neq => "neq",
                            BinaryOp::Lt => "lt",
                            BinaryOp::Lte => "lte",
                            BinaryOp::Gt => "gt",
                            BinaryOp::Gte => "gte",
                            BinaryOp::Add => "add",
                            BinaryOp::Sub => "sub",
                            BinaryOp::Mul => "mul",
                            BinaryOp::Div => "div",
                            BinaryOp::Mod => "mod",
                            BinaryOp::Like => "like",
                            _ => unreachable!(),
                        };
                        let handle =
                            self.ctx.registry.resolve(name, &[l.data_type(), r.data_type()])?;
                        Ok(RowExpression::Call { handle, args: vec![l, r] })
                    }
                }
            }
            Expr::Not(inner) => {
                let e = self.resolve(inner)?;
                let handle = self.ctx.registry.resolve("not", &[DataType::Boolean])?;
                Ok(RowExpression::Call { handle, args: vec![e] })
            }
            Expr::Negate(inner) => {
                let e = self.resolve(inner)?;
                let handle = self.ctx.registry.resolve("negate", &[e.data_type()])?;
                Ok(RowExpression::Call { handle, args: vec![e] })
            }
            Expr::Cast { expr, type_name } => {
                let inner = self.resolve(expr)?;
                let target = parse_type_name(type_name)?;
                let handle = self.ctx.registry.resolve_cast(&inner.data_type(), &target);
                Ok(RowExpression::Call { handle, args: vec![inner] })
            }
            Expr::FunctionCall { name, args, is_star: false } => {
                let analyzed: Vec<RowExpression> =
                    args.iter().map(|a| self.resolve(a)).collect::<Result<Vec<_>>>()?;
                let arg_types: Vec<DataType> = analyzed.iter().map(|e| e.data_type()).collect();
                let handle = self.ctx.registry.resolve(name, &arg_types)?;
                Ok(RowExpression::Call { handle, args: analyzed })
            }
            Expr::Case { operand, branches, else_expr } => {
                let operand = operand.as_ref().map(|o| self.resolve(o)).transpose()?;
                let analyzed: Vec<(RowExpression, RowExpression)> = branches
                    .iter()
                    .map(|(w, t)| Ok((self.resolve(w)?, self.resolve(t)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_analyzed = else_expr.as_ref().map(|e| self.resolve(e)).transpose()?;
                build_case(operand, analyzed, else_analyzed, self.ctx)
            }
            // literals pass through; bare identifiers must be group keys
            Expr::Integer(_)
            | Expr::Float(_)
            | Expr::StringLit(_)
            | Expr::Boolean(_)
            | Expr::Null => analyze_expr(ast, self.scope, self.ctx),
            Expr::Identifier(parts) => Err(PrestoError::Analysis(format!(
                "column '{}' must appear in GROUP BY or inside an aggregate",
                parts.join(".")
            ))),
            other => Err(PrestoError::Analysis(format!(
                "expression {other:?} is not valid after aggregation"
            ))),
        }
    }
}

fn dedupe_names(names: &mut [String]) {
    for i in 0..names.len() {
        let mut n = 1;
        while names[..i].contains(&names[i]) {
            names[i] = format!("{}_{n}", names[i]);
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use presto_common::Field;
    use presto_connectors::memory::MemoryConnector;
    use std::sync::Arc;

    fn test_ctx() -> AnalyzerContext {
        let catalogs = CatalogRegistry::new();
        let memory = MemoryConnector::new();
        memory
            .create_table(
                "default",
                "trips",
                Schema::new(vec![
                    Field::new("datestr", DataType::Varchar),
                    Field::new(
                        "base",
                        DataType::row(vec![
                            Field::new("driver_uuid", DataType::Varchar),
                            Field::new("city_id", DataType::Bigint),
                        ]),
                    ),
                    Field::new("fare", DataType::Double),
                ])
                .unwrap(),
                vec![],
            )
            .unwrap();
        memory
            .create_table(
                "default",
                "cities",
                Schema::new(vec![
                    Field::new("city_id", DataType::Bigint),
                    Field::new("geo_shape", DataType::Varchar),
                ])
                .unwrap(),
                vec![],
            )
            .unwrap();
        catalogs.register("memory", Arc::new(memory));
        AnalyzerContext {
            catalogs,
            registry: FunctionRegistry::new(),
            default_catalog: "memory".into(),
            default_schema: "default".into(),
        }
    }

    fn plan_for(sql: &str) -> LogicalPlan {
        let ctx = test_ctx();
        match parse_sql(sql).unwrap() {
            crate::ast::Statement::Query(q) => analyze(&q, &ctx).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn analyze_err(sql: &str) -> PrestoError {
        let ctx = test_ctx();
        match parse_sql(sql).unwrap() {
            crate::ast::Statement::Query(q) => analyze(&q, &ctx).unwrap_err(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_select_resolves_nested_fields() {
        let plan = plan_for(
            "SELECT base.driver_uuid FROM trips WHERE datestr = '2017-03-02' AND base.city_id IN (12)",
        );
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.fields()[0].name, "driver_uuid");
        assert_eq!(schema.fields()[0].data_type, DataType::Varchar);
    }

    #[test]
    fn wildcard_and_aliases() {
        let plan = plan_for("SELECT * FROM trips t");
        assert_eq!(plan.output_schema().unwrap().len(), 3);
        let plan = plan_for("SELECT t.fare AS price FROM trips t");
        assert_eq!(plan.output_schema().unwrap().fields()[0].name, "price");
        // SELECT * over a join whose sides share column names must expand
        // with qualifiers, not die with a spurious ambiguity error
        let plan = plan_for("SELECT * FROM cities a JOIN cities b ON a.city_id = b.city_id");
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.len(), 4);
    }

    #[test]
    fn group_by_ordinal_matches_paper_query() {
        let plan =
            plan_for("SELECT datestr, count(*) FROM trips GROUP BY 1 ORDER BY 2 DESC LIMIT 5");
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.fields()[0].name, "datestr");
        assert_eq!(schema.fields()[1].data_type, DataType::Bigint);
        // shape: Output(Limit(Sort(Project(Aggregate(...)))))
        let LogicalPlan::Output { input, .. } = &plan else { panic!() };
        let LogicalPlan::Limit { input, .. } = input.as_ref() else { panic!() };
        assert!(matches!(input.as_ref(), LogicalPlan::Sort { .. }));
    }

    #[test]
    fn having_and_aggregate_exprs() {
        let plan = plan_for(
            "SELECT datestr, sum(fare) AS total FROM trips \
             GROUP BY datestr HAVING count(*) > 2",
        );
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.fields()[1].name, "total");
        assert_eq!(schema.fields()[1].data_type, DataType::Double);
    }

    #[test]
    fn join_on_becomes_filter_over_cross_join() {
        let plan = plan_for("SELECT t.fare FROM trips t JOIN cities c ON base.city_id = c.city_id");
        fn find_filter_over_join(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { input, .. } => {
                    matches!(input.as_ref(), LogicalPlan::Join { .. })
                        || find_filter_over_join(input)
                }
                _ => p.children().into_iter().any(find_filter_over_join),
            }
        }
        assert!(find_filter_over_join(&plan));
    }

    #[test]
    fn left_join_extracts_keys_and_residual() {
        let plan = plan_for(
            "SELECT t.fare FROM trips t LEFT JOIN cities c \
             ON base.city_id = c.city_id AND c.city_id > 5",
        );
        fn find_join(p: &LogicalPlan) -> Option<(&LogicalPlan, usize, bool)> {
            match p {
                LogicalPlan::Join { on, residual, kind: JoinKind::Left, .. } => {
                    Some((p, on.len(), residual.is_some()))
                }
                _ => p.children().into_iter().find_map(find_join),
            }
        }
        let (_, keys, has_residual) = find_join(&plan).expect("left join in plan");
        assert_eq!(keys, 1);
        assert!(has_residual);
    }

    #[test]
    fn distinct_becomes_group_by_all() {
        let plan = plan_for("SELECT DISTINCT datestr FROM trips");
        fn has_empty_agg(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Aggregate { aggregates, .. } => aggregates.is_empty(),
                _ => p.children().into_iter().any(has_empty_agg),
            }
        }
        assert!(has_empty_agg(&plan));
    }

    #[test]
    fn subquery_scopes() {
        let plan =
            plan_for("SELECT s.d FROM (SELECT datestr AS d FROM trips LIMIT 10) s WHERE s.d = 'x'");
        assert_eq!(plan.output_schema().unwrap().fields()[0].name, "d");
    }

    #[test]
    fn analysis_errors() {
        assert!(analyze_err("SELECT nope FROM trips").message().contains("cannot be resolved"));
        assert!(analyze_err("SELECT datestr FROM missing_table").code() == "ANALYSIS_ERROR");
        assert!(analyze_err("SELECT fare FROM trips GROUP BY datestr")
            .message()
            .contains("must appear in GROUP BY"));
        assert!(analyze_err("SELECT count(*) FROM trips WHERE count(*) > 1")
            .message()
            .contains("WHERE clause cannot contain aggregates"));
        assert!(analyze_err("SELECT datestr + 1 FROM trips").code() == "ANALYSIS_ERROR");
        // type-strict: no implicit varchar/bigint comparison
        assert!(analyze_err("SELECT * FROM trips WHERE datestr = 5").code() == "ANALYSIS_ERROR");
    }

    #[test]
    fn case_lowers_to_nested_if() {
        let plan = plan_for(
            "SELECT CASE WHEN fare > 20.0 THEN 'high' ELSE 'low' END AS bucket FROM trips",
        );
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.fields()[0].name, "bucket");
        assert_eq!(schema.fields()[0].data_type, DataType::Varchar);
        // mixed branch types are rejected (type-strict engine)
        let err = analyze_err("SELECT CASE WHEN fare > 20.0 THEN 'high' ELSE 1 END FROM trips");
        assert!(err.message().contains("mixed types"), "{err}");
        // all-NULL CASE is meaningless
        assert!(analyze_err("SELECT CASE WHEN fare > 1.0 THEN null END FROM trips")
            .message()
            .contains("non-NULL"));
    }

    #[test]
    fn case_with_aggregates_after_group_by() {
        let plan = plan_for(
            "SELECT datestr, CASE WHEN count(*) > 5 THEN 'busy' ELSE 'quiet' END              FROM trips GROUP BY 1",
        );
        assert_eq!(plan.output_schema().unwrap().len(), 2);
    }

    #[test]
    fn union_all_type_checks() {
        let plan = plan_for("SELECT fare FROM trips UNION ALL SELECT fare FROM trips");
        assert!(matches!(plan, LogicalPlan::Union { ref inputs } if inputs.len() == 2));
        assert_eq!(plan.output_schema().unwrap().fields()[0].data_type, DataType::Double);
        let err = analyze_err("SELECT fare FROM trips UNION ALL SELECT datestr FROM trips");
        assert!(err.message().contains("mismatched"), "{err}");
    }

    #[test]
    fn select_without_from() {
        let plan = plan_for("SELECT 1 + 1 AS two");
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.fields()[0].name, "two");
        assert_eq!(schema.fields()[0].data_type, DataType::Bigint);
    }
}
