#![warn(missing_docs)]

//! SQL frontend: lexer → parser → AST → analyzer → logical plan (Fig 1:
//! "Presto coordinator parses incoming SQL, and tokenizes it into Abstract
//! Syntax Tree (AST). Analyzer generates logical plan from AST").
//!
//! Supported surface (everything the paper's example queries need, §V.C and
//! §VI.C, plus joins/subqueries/aggregations):
//!
//! ```sql
//! SELECT [DISTINCT] items FROM catalog.schema.table [alias]
//!   [ [LEFT|CROSS] JOIN t2 ON cond ] ...
//!   [WHERE cond] [GROUP BY exprs|ordinals] [HAVING cond]
//!   [ORDER BY exprs [DESC]] [LIMIT n]
//! ```
//!
//! with `UNION ALL` between SELECTs, nested field dereference
//! (`base.city_id`), IN lists, BETWEEN, LIKE, IS \[NOT\] NULL, CAST,
//! CASE WHEN, arithmetic, function calls (including the plugin functions
//! `st_point` / `st_contains`), `count(*)`, and derived tables.

pub mod analyzer;
pub mod ast;
pub mod lexer;
pub mod parser;

pub use analyzer::{analyze, AnalyzerContext};
pub use ast::{Expr, Query, SelectItem, Statement, TableRef};
pub use parser::parse_sql;
