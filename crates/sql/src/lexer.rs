//! SQL tokenizer.

use presto_common::{PrestoError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted identifiers are lower-cased).
    Word(String),
    /// Double-quoted identifier (case preserved).
    QuotedIdent(String),
    /// Single-quoted string literal.
    StringLit(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// Operator or punctuation: `= <> != < <= > >= + - * / % ( ) , . ;`
    Symbol(&'static str),
}

impl Token {
    /// True when this is the given keyword (case-insensitive at lex time).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w == kw)
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                // accumulate raw bytes and convert once, so multi-byte UTF-8
                // characters survive intact
                let mut buf: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            buf.push(b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            buf.push(b);
                            i += 1;
                        }
                        None => return Err(PrestoError::Parse("unterminated string".into())),
                    }
                }
                let s = String::from_utf8(buf)
                    .map_err(|_| PrestoError::Parse("invalid UTF-8 in string literal".into()))?;
                tokens.push(Token::StringLit(s));
            }
            b'"' => {
                let mut buf: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            buf.push(b);
                            i += 1;
                        }
                        None => return Err(PrestoError::Parse("unterminated identifier".into())),
                    }
                }
                let s = String::from_utf8(buf)
                    .map_err(|_| PrestoError::Parse("invalid UTF-8 in identifier".into()))?;
                tokens.push(Token::QuotedIdent(s));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                if is_float {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|_| PrestoError::Parse(format!("bad number '{text}'")))?,
                    ));
                } else {
                    tokens.push(Token::Integer(
                        text.parse()
                            .map_err(|_| PrestoError::Parse(format!("bad number '{text}'")))?,
                    ));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap().to_lowercase();
                tokens.push(Token::Word(word));
            }
            b'<' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol("<="));
                i += 2;
            }
            b'<' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token::Symbol("<>"));
                i += 2;
            }
            b'>' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(">="));
                i += 2;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol("<>"));
                i += 2;
            }
            b'=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            b'<' => {
                tokens.push(Token::Symbol("<"));
                i += 1;
            }
            b'>' => {
                tokens.push(Token::Symbol(">"));
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Symbol("+"));
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Symbol("-"));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Symbol("*"));
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Symbol("/"));
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Symbol("%"));
                i += 1;
            }
            b'(' => {
                tokens.push(Token::Symbol("("));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Symbol(")"));
                i += 1;
            }
            b',' => {
                tokens.push(Token::Symbol(","));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Symbol("."));
                i += 1;
            }
            b';' => {
                tokens.push(Token::Symbol(";"));
                i += 1;
            }
            other => {
                return Err(PrestoError::Parse(format!(
                    "unexpected character '{}' at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_query() {
        let tokens = tokenize(
            "SELECT base.driver_uuid FROM rawdata.schemaless_mezzanine_trips_rows \
             WHERE datestr = '2017-03-02' AND base.city_id in (12)",
        )
        .unwrap();
        assert!(tokens.contains(&Token::Word("select".into())));
        assert!(tokens.contains(&Token::StringLit("2017-03-02".into())));
        assert!(tokens.contains(&Token::Integer(12)));
        assert!(tokens.contains(&Token::Symbol(".")));
    }

    #[test]
    fn numbers_strings_escapes() {
        let tokens = tokenize("1 2.5 1e3 'it''s' \"Mixed Case\"").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Integer(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::StringLit("it's".into()),
                Token::QuotedIdent("Mixed Case".into()),
            ]
        );
    }

    #[test]
    fn utf8_strings_survive_intact() {
        let tokens = tokenize("'Köln' \"Šibenik 市\"").unwrap();
        assert_eq!(
            tokens,
            vec![Token::StringLit("Köln".into()), Token::QuotedIdent("Šibenik 市".into()),]
        );
    }

    #[test]
    fn operators_and_comments() {
        let tokens = tokenize("a >= 1 -- comment\n AND b <> c != d").unwrap();
        assert_eq!(tokens.iter().filter(|t| **t == Token::Symbol("<>")).count(), 2);
        assert!(tokens.contains(&Token::Symbol(">=")));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("price #").is_err());
    }
}
