//! Execution context: catalogs, functions, memory pool, exchange bindings.

use std::collections::HashMap;
use std::sync::Arc;

use presto_common::metrics::CounterSet;
use presto_common::trace::{SpanId, Trace};
use presto_common::{Page, Result};
use presto_connectors::CatalogRegistry;
use presto_expr::{Evaluator, FunctionRegistry};
use presto_resource::{MemoryPool, QueryPool, ReservationKind, SpillManager};

/// Everything an executing plan needs.
#[derive(Clone)]
pub struct ExecutionContext {
    /// Registered connectors.
    pub catalogs: CatalogRegistry,
    /// Expression evaluator (shares the session's function registry).
    pub evaluator: Evaluator,
    /// Bytes of materialized state (join builds, aggregation tables, sort
    /// buffers) allowed before `"Insufficient Resource"`; `None` = unlimited.
    /// Mirrors the per-query limit on [`ExecutionContext::pool`].
    pub memory_budget: Option<usize>,
    /// Pages bound for `RemoteSource` leaves, keyed by fragment id —
    /// populated by the cluster runtime when executing upper fragments.
    pub remote_sources: HashMap<u32, Vec<Page>>,
    /// Execution counters (`exec.rows_scanned`, `exec.splits`, ...).
    pub metrics: CounterSet,
    /// This query's slice of the (cluster) memory pool. Blocking operators
    /// hold RAII reservations against it.
    pub pool: Arc<QueryPool>,
    /// Spill manager for blocking operators; `None` disables spilling (the
    /// operator fails with `"Insufficient Resource"` instead).
    pub spill: Option<Arc<SpillManager>>,
    /// Trace collecting operator spans for this execution. Standalone
    /// contexts get a private trace on a private clock; the engine and
    /// cluster install the query's shared trace instead.
    pub trace: Trace,
    /// Parent span for operator spans opened by the executor — the task or
    /// query span this fragment runs under.
    pub root_span: Option<SpanId>,
}

impl ExecutionContext {
    /// Context over catalogs with a default function registry and no budget.
    pub fn new(catalogs: CatalogRegistry) -> ExecutionContext {
        ExecutionContext::with_registry(catalogs, FunctionRegistry::new())
    }

    /// Context with an explicit function registry (plugins registered).
    pub fn with_registry(
        catalogs: CatalogRegistry,
        registry: FunctionRegistry,
    ) -> ExecutionContext {
        ExecutionContext {
            catalogs,
            evaluator: Evaluator::new(registry),
            memory_budget: None,
            remote_sources: HashMap::new(),
            metrics: CounterSet::new(),
            pool: MemoryPool::unbounded().register_query(None),
            spill: None,
            trace: Trace::default(),
            root_span: None,
        }
    }

    /// Install the query's shared trace; executor spans nest under `parent`.
    pub fn with_trace(mut self, trace: Trace, parent: Option<SpanId>) -> ExecutionContext {
        self.trace = trace;
        self.root_span = parent;
        self
    }

    /// Set the memory budget (standalone contexts: re-registers this query
    /// on a private unbounded cluster pool with the given per-query limit).
    pub fn with_memory_budget(mut self, bytes: usize) -> ExecutionContext {
        self.memory_budget = Some(bytes);
        self.pool = MemoryPool::unbounded().register_query(Some(bytes));
        self
    }

    /// Attach this query to an externally managed pool slice (the engine
    /// registers the query on the shared cluster pool) and optionally a
    /// spill manager.
    pub fn with_resources(
        mut self,
        pool: Arc<QueryPool>,
        spill: Option<Arc<SpillManager>>,
    ) -> ExecutionContext {
        self.memory_budget = pool.limit();
        self.pool = pool;
        self.spill = spill;
        self
    }

    /// Bind pages for a `RemoteSource` fragment.
    pub fn bind_remote_source(&mut self, fragment: u32, pages: Vec<Page>) {
        self.remote_sources.insert(fragment, pages);
    }

    /// Reserve materialized-state memory; errors with the §XII.C message
    /// when the session budget is exceeded.
    ///
    /// Legacy non-RAII entry point — operator code should prefer
    /// [`QueryPool::reserve`] guards, which release on early-error unwinds.
    pub fn reserve_memory(&self, bytes: usize) -> Result<()> {
        self.pool.try_reserve(bytes, ReservationKind::User)
    }

    /// Release previously reserved memory.
    pub fn release_memory(&self, bytes: usize) {
        self.pool.release(bytes, ReservationKind::User);
    }

    /// Bytes currently reserved.
    pub fn reserved_memory(&self) -> usize {
        self.pool.reserved()
    }

    /// The reservation kind blocking operators should use: revocable when a
    /// spill manager is attached (the arbiter can then ask for the memory
    /// back), plain user memory otherwise.
    pub fn operator_reservation_kind(&self) -> ReservationKind {
        if self.spill.is_some() {
            ReservationKind::Revocable
        } else {
            ReservationKind::User
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_budget_enforced() {
        let ctx = ExecutionContext::new(CatalogRegistry::new()).with_memory_budget(1000);
        ctx.reserve_memory(600).unwrap();
        let err = ctx.reserve_memory(600).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(err.message().contains("Insufficient Resource"));
        // the failed reservation was rolled back
        assert_eq!(ctx.reserved_memory(), 600);
        ctx.release_memory(600);
        assert_eq!(ctx.reserved_memory(), 0);
        ctx.reserve_memory(900).unwrap();
    }

    #[test]
    fn unlimited_without_budget() {
        let ctx = ExecutionContext::new(CatalogRegistry::new());
        ctx.reserve_memory(usize::MAX / 2).unwrap();
    }

    #[test]
    fn externally_managed_pool_is_adopted() {
        let cluster = MemoryPool::new(Some(1 << 20));
        let query = cluster.register_query(Some(4096));
        let ctx = ExecutionContext::new(CatalogRegistry::new()).with_resources(query, None);
        assert_eq!(ctx.memory_budget, Some(4096));
        ctx.reserve_memory(4096).unwrap();
        assert_eq!(cluster.used(), 4096);
        assert!(ctx.reserve_memory(1).is_err());
        ctx.release_memory(4096);
        assert_eq!(cluster.used(), 0);
    }
}
