//! Execution context: catalogs, functions, memory budget, exchange bindings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use presto_common::metrics::CounterSet;
use presto_common::{Page, PrestoError, Result};
use presto_connectors::CatalogRegistry;
use presto_expr::{Evaluator, FunctionRegistry};

/// Everything an executing plan needs.
#[derive(Clone)]
pub struct ExecutionContext {
    /// Registered connectors.
    pub catalogs: CatalogRegistry,
    /// Expression evaluator (shares the session's function registry).
    pub evaluator: Evaluator,
    /// Bytes of materialized state (join builds, aggregation tables, sort
    /// buffers) allowed before `"Insufficient Resource"`; `None` = unlimited.
    pub memory_budget: Option<usize>,
    /// Pages bound for `RemoteSource` leaves, keyed by fragment id —
    /// populated by the cluster runtime when executing upper fragments.
    pub remote_sources: HashMap<u32, Vec<Page>>,
    /// Execution counters (`exec.rows_scanned`, `exec.splits`, ...).
    pub metrics: CounterSet,
    reserved: Arc<AtomicUsize>,
}

impl ExecutionContext {
    /// Context over catalogs with a default function registry and no budget.
    pub fn new(catalogs: CatalogRegistry) -> ExecutionContext {
        ExecutionContext::with_registry(catalogs, FunctionRegistry::new())
    }

    /// Context with an explicit function registry (plugins registered).
    pub fn with_registry(
        catalogs: CatalogRegistry,
        registry: FunctionRegistry,
    ) -> ExecutionContext {
        ExecutionContext {
            catalogs,
            evaluator: Evaluator::new(registry),
            memory_budget: None,
            remote_sources: HashMap::new(),
            metrics: CounterSet::new(),
            reserved: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> ExecutionContext {
        self.memory_budget = Some(bytes);
        self
    }

    /// Bind pages for a `RemoteSource` fragment.
    pub fn bind_remote_source(&mut self, fragment: u32, pages: Vec<Page>) {
        self.remote_sources.insert(fragment, pages);
    }

    /// Reserve materialized-state memory; errors with the §XII.C message
    /// when the session budget is exceeded.
    pub fn reserve_memory(&self, bytes: usize) -> Result<()> {
        let total = self.reserved.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(budget) = self.memory_budget {
            if total > budget {
                self.reserved.fetch_sub(bytes, Ordering::Relaxed);
                return Err(PrestoError::InsufficientResources(format!(
                    "Insufficient Resource: query requires {total} bytes of memory, \
                     budget is {budget} bytes (consider running this query on Spark/Hive)"
                )));
            }
        }
        Ok(())
    }

    /// Release previously reserved memory.
    pub fn release_memory(&self, bytes: usize) {
        self.reserved.fetch_sub(bytes.min(self.reserved.load(Ordering::Relaxed)), Ordering::Relaxed);
    }

    /// Bytes currently reserved.
    pub fn reserved_memory(&self) -> usize {
        self.reserved.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_budget_enforced() {
        let ctx = ExecutionContext::new(CatalogRegistry::new()).with_memory_budget(1000);
        ctx.reserve_memory(600).unwrap();
        let err = ctx.reserve_memory(600).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(err.message().contains("Insufficient Resource"));
        // the failed reservation was rolled back
        assert_eq!(ctx.reserved_memory(), 600);
        ctx.release_memory(600);
        assert_eq!(ctx.reserved_memory(), 0);
        ctx.reserve_memory(900).unwrap();
    }

    #[test]
    fn unlimited_without_budget() {
        let ctx = ExecutionContext::new(CatalogRegistry::new());
        ctx.reserve_memory(usize::MAX / 2).unwrap();
    }
}
