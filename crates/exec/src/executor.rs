//! The recursive plan executor.
//!
//! Blocking operators (hash aggregation, hash-join build, sort) account
//! their materialized state against the query's memory pool through RAII
//! [`presto_resource::Reservation`] guards — reservations release on every
//! exit path, including early `?` unwinds. When the context carries a spill
//! manager, those operators reserve *revocable* memory and fall back to
//! Grace-style partitioned spilling when a reservation fails instead of
//! surfacing `"Insufficient Resource"`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use presto_common::metrics::names;
use presto_common::trace::{SpanId, SpanKind};
use presto_common::{Block, Page, PrestoError, Result, Value};
use presto_expr::{Accumulator, AggregateFunction, RowExpression};
use presto_geo::index::GeofenceIndex;
use presto_plan::logical::{AggregateExpr, AggregateStep, JoinKind, LogicalPlan, SortKey};
use presto_resource::{ReservationKind, SpillFile};

use crate::context::ExecutionContext;

/// Fan-out of Grace partitioning when an operator spills.
const SPILL_PARTITIONS: usize = 8;

/// Virtual nanoseconds charged per operator invocation. The executor is the
/// only simulator of CPU work, so it advances the trace's clock by a simple
/// rows-processed cost model — this is what makes operator busy times and
/// query-latency histograms non-zero *and* seed-deterministic.
const OP_BASE_NANOS: u64 = 1_000;
/// Virtual nanoseconds charged per output row.
const OP_ROW_NANOS: u64 = 100;

fn is_insufficient(e: &PrestoError) -> bool {
    matches!(e, PrestoError::InsufficientResources(_))
}

/// The context's spill manager. Spill fallbacks only run after the caller
/// observed `ctx.spill.is_some()`, so a miss here is an engine bug — but it
/// must surface as an error with query context, not a panic that takes the
/// whole engine loop down.
fn spill_manager(ctx: &ExecutionContext) -> Result<std::sync::Arc<presto_resource::SpillManager>> {
    ctx.spill.as_ref().cloned().ok_or_else(|| {
        PrestoError::Internal(format!(
            "query {}: spill fallback entered without a spill manager",
            ctx.pool.query_id()
        ))
    })
}

/// Execute a plan to completion, returning its output pages.
///
/// Every plan node gets an operator span in `ctx.trace`, nested under
/// `ctx.root_span`, annotated with rows/bytes/pages out, peak memory growth,
/// and spill bytes — the raw material of `EXPLAIN ANALYZE`.
pub fn execute(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<Vec<Page>> {
    execute_traced(plan, ctx, ctx.root_span)
}

fn execute_traced(
    plan: &LogicalPlan,
    ctx: &ExecutionContext,
    parent: Option<SpanId>,
) -> Result<Vec<Page>> {
    // An OOM-arbiter victim unwinds at the next operator boundary, freeing
    // its reservations for the queries that were starved.
    ctx.pool.check_killed()?;
    let span = ctx.trace.begin(SpanKind::Operator, plan.label(), parent);
    let spill_before = ctx.metrics.get(names::SPILL_BYTES_WRITTEN);
    let peak_before = ctx.pool.peak();
    match execute_node(plan, ctx, span) {
        Ok(pages) => {
            let rows_out: u64 = pages.iter().map(|p| p.positions() as u64).sum();
            let bytes_out: u64 = pages.iter().map(|p| p.memory_size() as u64).sum();
            ctx.trace.set_attr(span, "rows_out", rows_out);
            ctx.trace.set_attr(span, "bytes_out", bytes_out);
            ctx.trace.set_attr(span, "pages_out", pages.len() as u64);
            if ctx.trace.attr(span, "rows_in").is_none() {
                let from_children = ctx.trace.child_attr_sum(span, "rows_out");
                ctx.trace.set_attr(span, "rows_in", from_children);
            }
            let spilled = ctx.metrics.get(names::SPILL_BYTES_WRITTEN) - spill_before;
            ctx.trace.set_attr(span, "spill_bytes", spilled);
            let peak_growth = ctx.pool.peak().saturating_sub(peak_before);
            ctx.trace.set_attr(span, "peak_memory", peak_growth as u64);
            let cost = OP_BASE_NANOS + OP_ROW_NANOS.saturating_mul(rows_out);
            ctx.trace.clock().advance(Duration::from_nanos(cost));
            ctx.trace.end(span);
            Ok(pages)
        }
        Err(e) => {
            ctx.trace.set_attr(span, "error", 1);
            ctx.trace.end(span);
            Err(e)
        }
    }
}

fn execute_node(plan: &LogicalPlan, ctx: &ExecutionContext, span: SpanId) -> Result<Vec<Page>> {
    match plan {
        LogicalPlan::TableScan { catalog, schema, table, request, .. } => {
            let connector = ctx.catalogs.get(catalog)?;
            let splits = connector.splits(schema, table, request)?;
            ctx.metrics.add(names::EXEC_SPLITS, splits.len() as u64);
            ctx.trace.set_attr(span, "splits", splits.len() as u64);
            let mut pages = Vec::new();
            let mut scanned = 0u64;
            let hooks = presto_connectors::ScanHooks::none();
            for split in &splits {
                for page in connector.scan_split(split, request, &hooks)? {
                    scanned += page.positions() as u64;
                    if !page.is_empty() {
                        pages.push(page);
                    }
                }
            }
            ctx.metrics.add(names::EXEC_ROWS_SCANNED, scanned);
            ctx.trace.set_attr(span, "rows_in", scanned);
            Ok(pages)
        }
        LogicalPlan::Values { schema, rows } => {
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let mut blocks = Vec::with_capacity(schema.len());
            for (c, field) in schema.fields().iter().enumerate() {
                let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                blocks.push(Block::from_values(&field.data_type, &column)?);
            }
            Ok(vec![if blocks.is_empty() {
                Page::zero_column(rows.len())
            } else {
                Page::new(blocks)?
            }])
        }
        LogicalPlan::Filter { input, predicate } => {
            let pages = execute_traced(input, ctx, Some(span))?;
            let mut out = Vec::with_capacity(pages.len());
            for page in pages {
                let mask_block = ctx.evaluator.evaluate(predicate, &page)?;
                let mask: Vec<bool> = (0..page.positions())
                    .map(|i| !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true))
                    .collect();
                let filtered = page.filter(&mask);
                if !filtered.is_empty() {
                    out.push(filtered);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, expressions } => {
            let pages = execute_traced(input, ctx, Some(span))?;
            let mut out = Vec::with_capacity(pages.len());
            for page in pages {
                let mut blocks = Vec::with_capacity(expressions.len());
                for (_, e) in expressions {
                    blocks.push(ctx.evaluator.evaluate(e, &page)?);
                }
                out.push(if blocks.is_empty() {
                    Page::zero_column(page.positions())
                } else {
                    Page::new(blocks)?
                });
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group_by, aggregates, step } => {
            execute_aggregate(input, group_by, aggregates, *step, plan, ctx, span)
        }
        LogicalPlan::Join { left, right, kind, on, residual } => {
            execute_join(left, right, *kind, on, residual.as_ref(), ctx, span)
        }
        LogicalPlan::GeoJoin { probe, fences, probe_lng, probe_lat, fence_shape } => {
            execute_geo_join(probe, fences, probe_lng, probe_lat, fence_shape, ctx, span)
        }
        LogicalPlan::Sort { input, keys } => {
            let (page, indices) = sorted_indices(input, keys, ctx, span)?;
            Ok(match page {
                Some(p) => vec![p.take(&indices)],
                None => Vec::new(),
            })
        }
        LogicalPlan::TopN { input, keys, count } => {
            let (page, mut indices) = sorted_indices(input, keys, ctx, span)?;
            indices.truncate(*count);
            Ok(match page {
                Some(p) => vec![p.take(&indices)],
                None => Vec::new(),
            })
        }
        LogicalPlan::Limit { input, count } => {
            let pages = execute_traced(input, ctx, Some(span))?;
            let mut out = Vec::new();
            let mut kept = 0;
            for page in pages {
                if kept >= *count {
                    break;
                }
                let take = (*count - kept).min(page.positions());
                kept += take;
                out.push(if take == page.positions() { page } else { page.slice(0, take) });
            }
            Ok(out)
        }
        LogicalPlan::Output { input, .. } => execute_traced(input, ctx, Some(span)),
        LogicalPlan::Union { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                out.extend(execute_traced(input, ctx, Some(span))?);
            }
            Ok(out)
        }
        LogicalPlan::RemoteSource { fragment, .. } => {
            ctx.remote_sources.get(fragment).cloned().ok_or_else(|| {
                PrestoError::Execution(format!("remote source fragment {fragment} not bound"))
            })
        }
    }
}

// ------------------------------------------------------------- aggregation

#[allow(clippy::too_many_arguments)]
fn execute_aggregate(
    input: &LogicalPlan,
    group_by: &[RowExpression],
    aggregates: &[AggregateExpr],
    step: AggregateStep,
    plan: &LogicalPlan,
    ctx: &ExecutionContext,
    span: SpanId,
) -> Result<Vec<Page>> {
    let pages = execute_traced(input, ctx, Some(span))?;
    let rows = match aggregate_rows(&pages, group_by, aggregates, step, ctx) {
        Ok(rows) => rows,
        // Grace fallback needs equi keys to partition on and columns to
        // spill; a global aggregate's state is one row and never spills.
        Err(e) if is_insufficient(&e) && ctx.spill.is_some() && !group_by.is_empty() => {
            match spillable_schema(input) {
                Some(schema) => spill_aggregate(&pages, &schema, group_by, aggregates, step, ctx)?,
                None => return Err(e),
            }
        }
        Err(e) => return Err(e),
    };
    emit_aggregate_rows(rows, plan)
}

/// In-memory hash aggregation over `pages`, returning one unsorted row per
/// group. The hash table is accounted through an RAII reservation that
/// grows as groups appear and releases when the rows are handed back.
fn aggregate_rows(
    pages: &[Page],
    group_by: &[RowExpression],
    aggregates: &[AggregateExpr],
    step: AggregateStep,
    ctx: &ExecutionContext,
) -> Result<Vec<Vec<Value>>> {
    let mut table_memory = ctx.pool.reserve(0, ctx.operator_reservation_kind())?;
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    let mut reserved = 0usize;

    for page in pages {
        // vectorized: evaluate keys and arguments once per page
        let key_blocks =
            group_by.iter().map(|e| ctx.evaluator.evaluate(e, page)).collect::<Result<Vec<_>>>()?;
        let arg_blocks = aggregates
            .iter()
            .map(|a| a.argument.as_ref().map(|e| ctx.evaluator.evaluate(e, page)).transpose())
            .collect::<Result<Vec<_>>>()?;
        for i in 0..page.positions() {
            let key: Vec<Value> = key_blocks.iter().map(|b| b.value(i)).collect();
            let accs = groups.entry(key).or_insert_with(|| {
                reserved += 64 + aggregates.len() * 48;
                aggregates.iter().map(|a| a.function.new_accumulator()).collect()
            });
            for ((acc, agg), arg) in accs.iter_mut().zip(aggregates).zip(&arg_blocks) {
                match step {
                    AggregateStep::Single => match arg {
                        None => acc.add_count(1),
                        Some(block) => acc.add(&block.value(i)),
                    },
                    // Fig 2: merge connector-produced partials — counts sum,
                    // sums sum, min/max re-compare.
                    AggregateStep::FinalOverPartial => {
                        let partial = arg
                            .as_ref()
                            .ok_or_else(|| {
                                PrestoError::Internal(
                                    "final aggregation needs partial columns".into(),
                                )
                            })?
                            .value(i);
                        match agg.function {
                            AggregateFunction::Count | AggregateFunction::CountStar => {
                                acc.add_count(partial.as_i64().unwrap_or(0));
                            }
                            _ => acc.add(&partial),
                        }
                    }
                }
            }
        }
        // coarse memory accounting on the hash table
        if reserved > 0 {
            table_memory.grow(reserved)?;
            reserved = 0;
        }
    }

    // Global aggregation over zero rows still yields one output row.
    if groups.is_empty() && group_by.is_empty() {
        groups
            .insert(Vec::new(), aggregates.iter().map(|a| a.function.new_accumulator()).collect());
    }

    // Materialize in sorted order: the hash table's iteration order varies
    // run-to-run, and these rows feed operator row counts and (via the
    // spill-concat path) downstream pages — every consumer must see the
    // same sequence on every same-seed replay.
    let mut rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(Accumulator::finish));
            key
        })
        .collect();
    rows.sort_by(|a, b| cmp_rows(a, b));
    Ok(rows)
}

/// Total order over result rows: lexicographic by column `total_cmp`.
fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| *o != std::cmp::Ordering::Equal)
        .unwrap_or(std::cmp::Ordering::Equal)
}

/// Grace aggregation: hash-partition the input on the group keys, spill each
/// partition, then aggregate the partitions one at a time — peak memory is
/// one partition's hash table instead of the whole table.
fn spill_aggregate(
    pages: &[Page],
    input_schema: &presto_common::Schema,
    group_by: &[RowExpression],
    aggregates: &[AggregateExpr],
    step: AggregateStep,
    ctx: &ExecutionContext,
) -> Result<Vec<Vec<Value>>> {
    let spill = spill_manager(ctx)?;
    let key_exprs: Vec<&RowExpression> = group_by.iter().collect();
    let parts = partition_pages(pages, &key_exprs, ctx)?;
    let mut files = Vec::with_capacity(SPILL_PARTITIONS);
    for part in &parts {
        files.push(if part.is_empty() {
            None
        } else {
            Some(spill.spill_pages(input_schema, part)?)
        });
    }
    drop(parts);
    let mut rows = Vec::new();
    for file in files.into_iter().flatten() {
        let part_pages = spill.read(&file)?;
        rows.extend(aggregate_rows(&part_pages, group_by, aggregates, step, ctx)?);
        spill.remove(file)?;
    }
    Ok(rows)
}

/// Sort the result rows deterministically and lay them out as pages.
/// (`aggregate_rows` already sorts its own output; this re-sort makes the
/// spill path deterministic too, where per-partition results concatenate.)
fn emit_aggregate_rows(mut rows: Vec<Vec<Value>>, plan: &LogicalPlan) -> Result<Vec<Page>> {
    rows.sort_by(|a, b| cmp_rows(a, b));

    let schema = plan.output_schema()?;
    let mut blocks = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    Ok(vec![if blocks.is_empty() { Page::zero_column(rows.len()) } else { Page::new(blocks)? }])
}

// -------------------------------------------------------------------- join

#[allow(clippy::too_many_arguments)]
fn execute_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    on: &[(RowExpression, RowExpression)],
    residual: Option<&RowExpression>,
    ctx: &ExecutionContext,
    span: SpanId,
) -> Result<Vec<Page>> {
    let left_pages = execute_traced(left, ctx, Some(span))?;
    let right_pages = execute_traced(right, ctx, Some(span))?;
    // Build side: the right input, materialized (distributed hash join is
    // the production default, §XII.A).
    let build = match right_pages.len() {
        0 => {
            let schema = right.output_schema()?;
            empty_page(&schema)?
        }
        _ => Page::concat(&right_pages)?,
    };

    if on.is_empty() {
        // Nested-loop cross join with optional residual — the shape the
        // geospatial rewrite replaces (§VI.C's "brute force" plan). Without
        // equi keys there is nothing to Grace-partition on, so this path
        // never spills.
        let _build_memory = ctx.pool.reserve(build.memory_size(), ReservationKind::User)?;
        let mut out = Vec::new();
        for probe in &left_pages {
            let mut probe_idx = Vec::new();
            let mut build_idx = Vec::new();
            for i in 0..probe.positions() {
                for j in 0..build.positions() {
                    probe_idx.push(i);
                    build_idx.push(j);
                }
            }
            let page = stitch(probe, &probe_idx, &build, &build_idx)?;
            let page = apply_residual(page, residual, ctx)?;
            if !page.is_empty() {
                out.push(page);
            }
        }
        return Ok(out);
    }

    match hash_join_pages(&left_pages, &build, kind, on, residual, right, ctx) {
        Ok(out) => Ok(out),
        Err(e) if is_insufficient(&e) && ctx.spill.is_some() => {
            match (spillable_schema(left), spillable_schema(right)) {
                (Some(probe_schema), Some(build_schema)) => grace_hash_join(
                    &left_pages,
                    &right_pages,
                    kind,
                    on,
                    residual,
                    &probe_schema,
                    &build_schema,
                    right,
                    ctx,
                ),
                _ => Err(e),
            }
        }
        Err(e) => Err(e),
    }
}

/// Hash join `probe_pages` against a materialized `build` page. Build-side
/// state (the concatenated build page plus the hash table) is held under an
/// RAII reservation for the duration of the probe.
fn hash_join_pages(
    probe_pages: &[Page],
    build: &Page,
    kind: JoinKind,
    on: &[(RowExpression, RowExpression)],
    residual: Option<&RowExpression>,
    right_plan: &LogicalPlan,
    ctx: &ExecutionContext,
) -> Result<Vec<Page>> {
    let mut build_memory =
        ctx.pool.reserve(build.memory_size(), ctx.operator_reservation_kind())?;

    // Hash join on equi keys.
    let build_keys =
        on.iter().map(|(_, r)| ctx.evaluator.evaluate(r, build)).collect::<Result<Vec<_>>>()?;
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for j in 0..build.positions() {
        let key: Vec<Value> = build_keys.iter().map(|b| b.value(j)).collect();
        if key.iter().any(Value::is_null) {
            continue; // SQL equi-join never matches NULL keys
        }
        table.entry(key).or_default().push(j);
    }
    build_memory.grow(table.len() * 48)?;

    let mut out = Vec::new();
    for probe in probe_pages {
        let probe_keys =
            on.iter().map(|(l, _)| ctx.evaluator.evaluate(l, probe)).collect::<Result<Vec<_>>>()?;
        // Key-matched candidate pairs; probe rows with no key match are
        // remembered separately so LEFT joins can null-extend them.
        let mut cand_probe = Vec::new();
        let mut cand_build = Vec::new();
        for i in 0..probe.positions() {
            let key: Vec<Value> = probe_keys.iter().map(|b| b.value(i)).collect();
            let matches = if key.iter().any(Value::is_null) { None } else { table.get(&key) };
            if let Some(rows) = matches {
                for &j in rows {
                    cand_probe.push(i);
                    cand_build.push(j);
                }
            }
        }
        // ON-clause residual filters *candidate pairs*, before outer-join
        // null extension — a pair failing the residual is not a match, so
        // its LEFT row must still appear null-extended.
        let survivors: Vec<bool> = match residual {
            None => vec![true; cand_probe.len()],
            Some(expr) => {
                let pairs = stitch(probe, &cand_probe, build, &cand_build)?;
                let mask_block = ctx.evaluator.evaluate(expr, &pairs)?;
                (0..pairs.positions())
                    .map(|i| !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true))
                    .collect()
            }
        };
        let mut probe_idx = Vec::new();
        let mut build_idx: Vec<Option<usize>> = Vec::new();
        let mut matched = vec![false; probe.positions()];
        for (pair, keep) in survivors.iter().enumerate() {
            if *keep {
                matched[cand_probe[pair]] = true;
                probe_idx.push(cand_probe[pair]);
                build_idx.push(Some(cand_build[pair]));
            }
        }
        if kind == JoinKind::Left {
            for (i, was_matched) in matched.iter().enumerate() {
                if !was_matched {
                    probe_idx.push(i);
                    build_idx.push(None);
                }
            }
        }
        let page = stitch_nullable(probe, &probe_idx, build, &build_idx, right_plan)?;
        if !page.is_empty() {
            out.push(page);
        }
    }
    Ok(out)
}

/// Grace hash join: both sides are hash-partitioned on the join keys and
/// spilled, then each partition pair is joined independently — peak memory
/// is one partition's build side instead of the whole build side.
///
/// Probe rows with NULL keys go to partition 0 (see [`partition_of`]) so
/// LEFT joins still null-extend them; matching rows always share a
/// partition because both sides hash the same key values.
#[allow(clippy::too_many_arguments)]
fn grace_hash_join(
    probe_pages: &[Page],
    build_pages: &[Page],
    kind: JoinKind,
    on: &[(RowExpression, RowExpression)],
    residual: Option<&RowExpression>,
    probe_schema: &presto_common::Schema,
    build_schema: &presto_common::Schema,
    right_plan: &LogicalPlan,
    ctx: &ExecutionContext,
) -> Result<Vec<Page>> {
    let spill = spill_manager(ctx)?;
    let probe_exprs: Vec<&RowExpression> = on.iter().map(|(l, _)| l).collect();
    let build_exprs: Vec<&RowExpression> = on.iter().map(|(_, r)| r).collect();
    let probe_parts = partition_pages(probe_pages, &probe_exprs, ctx)?;
    let build_parts = partition_pages(build_pages, &build_exprs, ctx)?;

    let mut files: Vec<(Option<SpillFile>, Option<SpillFile>)> =
        Vec::with_capacity(SPILL_PARTITIONS);
    for p in 0..SPILL_PARTITIONS {
        let probe_file = if probe_parts[p].is_empty() {
            None
        } else {
            Some(spill.spill_pages(probe_schema, &probe_parts[p])?)
        };
        let build_file = if build_parts[p].is_empty() {
            None
        } else {
            Some(spill.spill_pages(build_schema, &build_parts[p])?)
        };
        files.push((probe_file, build_file));
    }
    drop(probe_parts);
    drop(build_parts);

    let mut out = Vec::new();
    for (probe_file, build_file) in files {
        let probe = match &probe_file {
            Some(f) => spill.read(f)?,
            None => Vec::new(),
        };
        if !probe.is_empty() {
            let build_part = match &build_file {
                Some(f) => spill.read(f)?,
                None => Vec::new(),
            };
            let build = if build_part.is_empty() {
                empty_page(build_schema)?
            } else {
                Page::concat(&build_part)?
            };
            out.extend(hash_join_pages(&probe, &build, kind, on, residual, right_plan, ctx)?);
        }
        if let Some(f) = probe_file {
            spill.remove(f)?;
        }
        if let Some(f) = build_file {
            spill.remove(f)?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------- spill partitioning

/// Hash-partition pages into [`SPILL_PARTITIONS`] buckets by key columns.
fn partition_pages(
    pages: &[Page],
    key_exprs: &[&RowExpression],
    ctx: &ExecutionContext,
) -> Result<Vec<Vec<Page>>> {
    let mut parts: Vec<Vec<Page>> = vec![Vec::new(); SPILL_PARTITIONS];
    for page in pages {
        let key_blocks = key_exprs
            .iter()
            .map(|e| ctx.evaluator.evaluate(e, page))
            .collect::<Result<Vec<_>>>()?;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); SPILL_PARTITIONS];
        for i in 0..page.positions() {
            let key: Vec<Value> = key_blocks.iter().map(|b| b.value(i)).collect();
            buckets[partition_of(&key)].push(i);
        }
        for (part, indices) in parts.iter_mut().zip(&buckets) {
            if !indices.is_empty() {
                part.push(page.take(indices));
            }
        }
    }
    Ok(parts)
}

/// Deterministic partition for a key. NULL-containing keys never hash-match
/// anything, so they are parked together in partition 0.
fn partition_of(key: &[Value]) -> usize {
    if key.iter().any(Value::is_null) {
        return 0;
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % SPILL_PARTITIONS
}

/// The input's schema if its pages can be spilled (parquet needs at least
/// one column); `None` keeps the original reservation error.
fn spillable_schema(plan: &LogicalPlan) -> Option<presto_common::Schema> {
    match plan.output_schema() {
        Ok(schema) if !schema.is_empty() => Some(schema),
        _ => None,
    }
}

fn apply_residual(
    page: Page,
    residual: Option<&RowExpression>,
    ctx: &ExecutionContext,
) -> Result<Page> {
    match residual {
        None => Ok(page),
        Some(expr) => {
            if page.is_empty() {
                return Ok(page);
            }
            let mask_block = ctx.evaluator.evaluate(expr, &page)?;
            let mask: Vec<bool> = (0..page.positions())
                .map(|i| !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true))
                .collect();
            Ok(page.filter(&mask))
        }
    }
}

/// Combine probe rows and build rows side by side.
fn stitch(probe: &Page, probe_idx: &[usize], build: &Page, build_idx: &[usize]) -> Result<Page> {
    let left = probe.take(probe_idx);
    let right = build.take(build_idx);
    let mut blocks = left.into_blocks();
    blocks.extend(right.into_blocks());
    if blocks.is_empty() {
        Ok(Page::zero_column(probe_idx.len()))
    } else {
        Page::new(blocks)
    }
}

/// Like [`stitch`] but build-side misses become NULL rows (left join).
fn stitch_nullable(
    probe: &Page,
    probe_idx: &[usize],
    build: &Page,
    build_idx: &[Option<usize>],
    right_plan: &LogicalPlan,
) -> Result<Page> {
    if build_idx.iter().all(Option::is_some) {
        let plain: Vec<usize> = build_idx.iter().filter_map(|o| *o).collect();
        return stitch(probe, probe_idx, build, &plain);
    }
    let left = probe.take(probe_idx);
    let right_schema = right_plan.output_schema()?;
    let mut blocks = left.into_blocks();
    for (c, field) in right_schema.fields().iter().enumerate() {
        let column: Vec<Value> = build_idx
            .iter()
            .map(|o| match o {
                Some(j) => build.block(c).value(*j),
                None => Value::Null,
            })
            .collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    if blocks.is_empty() {
        Ok(Page::zero_column(probe_idx.len()))
    } else {
        Page::new(blocks)
    }
}

// ---------------------------------------------------------------- geo join

#[allow(clippy::too_many_arguments)]
fn execute_geo_join(
    probe: &LogicalPlan,
    fences: &LogicalPlan,
    probe_lng: &RowExpression,
    probe_lat: &RowExpression,
    fence_shape: &RowExpression,
    ctx: &ExecutionContext,
    span: SpanId,
) -> Result<Vec<Page>> {
    // build_geo_index (§VI.E): consume the fence side, parse WKT shapes,
    // build the QuadTree on the fly.
    let fence_pages = execute_traced(fences, ctx, Some(span))?;
    let fence_page = match fence_pages.len() {
        0 => empty_page(&fences.output_schema()?)?,
        _ => Page::concat(&fence_pages)?,
    };
    // RAII: the fence-side reservation releases even when an early `?`
    // (bad WKT, evaluation error) unwinds out of this function.
    let _fence_memory = ctx.pool.reserve(fence_page.memory_size(), ReservationKind::User)?;
    let shapes = ctx.evaluator.evaluate(fence_shape, &fence_page)?;
    let mut rows_with_shapes = Vec::with_capacity(fence_page.positions());
    for j in 0..fence_page.positions() {
        if let Some(wkt) = shapes.str_at(j) {
            rows_with_shapes.push((j as i64, wkt.to_string()));
        }
    }
    let index = GeofenceIndex::build_from_wkt(rows_with_shapes)?;
    ctx.metrics.add(names::EXEC_GEO_INDEX_FENCES, index.len() as u64);

    let probe_pages = execute_traced(probe, ctx, Some(span))?;
    let mut out = Vec::new();
    for page in &probe_pages {
        let lng = ctx.evaluator.evaluate(probe_lng, page)?;
        let lat = ctx.evaluator.evaluate(probe_lat, page)?;
        let mut probe_idx = Vec::new();
        let mut fence_idx = Vec::new();
        for i in 0..page.positions() {
            let (Some(x), Some(y)) = (lng.value(i).as_f64(), lat.value(i).as_f64()) else {
                continue;
            };
            for fence_row in index.find_containing(&presto_geo::Point::new(x, y)) {
                probe_idx.push(i);
                fence_idx.push(fence_row as usize);
            }
        }
        ctx.metrics.add(names::EXEC_GEO_CONTAINS_CALLS, index.contains_calls());
        let stitched = stitch(page, &probe_idx, &fence_page, &fence_idx)?;
        if !stitched.is_empty() {
            out.push(stitched);
        }
    }
    Ok(out)
}

// -------------------------------------------------------------------- sort

fn sorted_indices(
    input: &LogicalPlan,
    keys: &[SortKey],
    ctx: &ExecutionContext,
    span: SpanId,
) -> Result<(Option<Page>, Vec<usize>)> {
    let pages = execute_traced(input, ctx, Some(span))?;
    if pages.is_empty() {
        return Ok((None, Vec::new()));
    }
    let total: usize = pages.iter().map(|p| p.memory_size()).sum();
    let _sort_memory = match ctx.pool.reserve(total, ctx.operator_reservation_kind()) {
        Ok(reservation) => reservation,
        Err(e) if is_insufficient(&e) && ctx.spill.is_some() => {
            return match spillable_schema(input) {
                Some(schema) => {
                    let sorted = external_sort(&pages, keys, &schema, ctx)?;
                    let n = sorted.positions();
                    // identity permutation: TopN truncates it as usual
                    Ok((Some(sorted), (0..n).collect()))
                }
                None => Err(e),
            };
        }
        Err(e) => return Err(e),
    };
    let page = Page::concat(&pages)?;
    let key_blocks =
        keys.iter().map(|k| ctx.evaluator.evaluate(&k.expr, &page)).collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..page.positions()).collect();
    indices.sort_by(|&a, &b| {
        for (block, key) in key_blocks.iter().zip(keys) {
            let ord = block.value(a).total_cmp(&block.value(b));
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok((Some(page), indices))
}

/// External merge sort: each input page becomes a spilled sorted run (only
/// one page is reserved at a time), then the runs are k-way merged. Ties
/// break by (run order, row order), reproducing exactly what a stable sort
/// over the concatenated input would produce.
fn external_sort(
    pages: &[Page],
    keys: &[SortKey],
    schema: &presto_common::Schema,
    ctx: &ExecutionContext,
) -> Result<Page> {
    let spill = spill_manager(ctx)?;

    // Phase 1: sorted runs. A page that alone exceeds the budget is halved
    // (recursively, in order — run order must stay the row order) until its
    // pieces fit, so even a single oversized input page can sort.
    let mut worklist: Vec<Page> = pages.iter().rev().filter(|p| !p.is_empty()).cloned().collect();
    let mut run_files = Vec::new();
    while let Some(page) = worklist.pop() {
        let _run_memory =
            match ctx.pool.reserve(page.memory_size(), ctx.operator_reservation_kind()) {
                Ok(reservation) => reservation,
                Err(e) if is_insufficient(&e) && page.positions() > 1 => {
                    let mid = page.positions() / 2;
                    worklist.push(page.slice(mid, page.positions() - mid));
                    worklist.push(page.slice(0, mid));
                    continue;
                }
                Err(e) => return Err(e),
            };
        let key_blocks = keys
            .iter()
            .map(|k| ctx.evaluator.evaluate(&k.expr, &page))
            .collect::<Result<Vec<_>>>()?;
        let mut indices: Vec<usize> = (0..page.positions()).collect();
        indices.sort_by(|&a, &b| {
            for (block, key) in key_blocks.iter().zip(keys) {
                let ord = block.value(a).total_cmp(&block.value(b));
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        run_files.push(spill.spill_pages(schema, &[page.take(&indices)])?);
    }

    // Phase 2: k-way merge.
    struct Run {
        rows: Vec<Vec<Value>>,
        keys: Vec<Block>,
        cursor: usize,
    }
    let mut runs = Vec::with_capacity(run_files.len());
    for file in &run_files {
        let run_pages = spill.read(file)?;
        let page = Page::concat(&run_pages)?;
        let key_blocks = keys
            .iter()
            .map(|k| ctx.evaluator.evaluate(&k.expr, &page))
            .collect::<Result<Vec<_>>>()?;
        runs.push(Run { rows: page.rows(), keys: key_blocks, cursor: 0 });
    }
    let run_less = |a: &Run, b: &Run| -> bool {
        for (k, key) in keys.iter().enumerate() {
            let ord = a.keys[k].value(a.cursor).total_cmp(&b.keys[k].value(b.cursor));
            let ord = if key.descending { ord.reverse() } else { ord };
            match ord {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        false // equal keys: the earlier run wins (stability)
    };
    let total_rows: usize = runs.iter().map(|r| r.rows.len()).sum();
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(total_rows);
    for _ in 0..total_rows {
        let mut best = usize::MAX;
        for r in 0..runs.len() {
            if runs[r].cursor >= runs[r].rows.len() {
                continue;
            }
            if best == usize::MAX || run_less(&runs[r], &runs[best]) {
                best = r;
            }
        }
        let run = &mut runs[best];
        rows.push(run.rows[run.cursor].clone());
        run.cursor += 1;
    }
    for file in run_files {
        spill.remove(file)?;
    }

    let mut blocks = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    Page::new(blocks)
}

fn empty_page(schema: &presto_common::Schema) -> Result<Page> {
    let blocks: Vec<Block> = schema
        .fields()
        .iter()
        .map(|f| Block::from_values(&f.data_type, &[]))
        .collect::<Result<Vec<_>>>()?;
    if blocks.is_empty() {
        Ok(Page::zero_column(0))
    } else {
        Page::new(blocks)
    }
}

// A convenience used by tests and the engine facade.
/// Gather all output rows of a plan (materializing).
pub fn execute_to_rows(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<Vec<Vec<Value>>> {
    Ok(execute(plan, ctx)?.iter().flat_map(|p| p.rows()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field, Schema};
    use presto_connectors::memory::MemoryConnector;
    use presto_connectors::{CatalogRegistry, ColumnPath, ScanRequest};
    use presto_expr::FunctionHandle;
    use std::sync::Arc;

    fn ctx_with_table() -> ExecutionContext {
        let registry = CatalogRegistry::new();
        let memory = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
            Field::new("fare", DataType::Double),
        ])
        .unwrap();
        let page = Page::new(vec![
            Block::bigint(vec![1, 2, 3, 4, 5, 6]),
            Block::varchar(&["sf", "nyc", "sf", "la", "nyc", "sf"]),
            Block::double(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        ])
        .unwrap();
        memory.create_table("default", "trips", schema, vec![page]).unwrap();
        registry.register("memory", Arc::new(memory));
        ExecutionContext::new(registry)
    }

    fn trips_scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            catalog: "memory".into(),
            schema: "default".into(),
            table: "trips".into(),
            table_schema: Schema::new(vec![
                Field::new("id", DataType::Bigint),
                Field::new("city", DataType::Varchar),
                Field::new("fare", DataType::Double),
            ])
            .unwrap(),
            request: ScanRequest::project(vec![
                ColumnPath::whole("id"),
                ColumnPath::whole("city"),
                ColumnPath::whole("fare"),
            ]),
        }
    }

    fn eq(l: RowExpression, r: RowExpression) -> RowExpression {
        RowExpression::Call {
            handle: FunctionHandle::new(
                "eq",
                vec![l.data_type(), r.data_type()],
                DataType::Boolean,
            ),
            args: vec![l, r],
        }
    }

    #[test]
    fn scan_filter_project() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(trips_scan()),
                predicate: eq(
                    RowExpression::column("city", 1, DataType::Varchar),
                    RowExpression::varchar("sf"),
                ),
            }),
            expressions: vec![("id".into(), RowExpression::column("id", 0, DataType::Bigint))],
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Bigint(1)], vec![Value::Bigint(3)], vec![Value::Bigint(6)]]
        );
    }

    #[test]
    fn group_by_aggregation() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(trips_scan()),
            group_by: vec![RowExpression::column("city", 1, DataType::Varchar)],
            aggregates: vec![
                AggregateExpr {
                    function: AggregateFunction::CountStar,
                    argument: None,
                    name: "cnt".into(),
                },
                AggregateExpr {
                    function: AggregateFunction::Sum,
                    argument: Some(RowExpression::column("fare", 2, DataType::Double)),
                    name: "total".into(),
                },
            ],
            step: AggregateStep::Single,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["la".into(), Value::Bigint(1), Value::Double(40.0)],
                vec!["nyc".into(), Value::Bigint(2), Value::Double(70.0)],
                vec!["sf".into(), Value::Bigint(3), Value::Double(100.0)],
            ]
        );
    }

    #[test]
    fn global_aggregation_on_empty_input_yields_one_row() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(trips_scan()),
                predicate: eq(
                    RowExpression::column("city", 1, DataType::Varchar),
                    RowExpression::varchar("nowhere"),
                ),
            }),
            group_by: vec![],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::CountStar,
                argument: None,
                name: "cnt".into(),
            }],
            step: AggregateStep::Single,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(0)]]);
    }

    #[test]
    fn final_over_partial_merges_counts() {
        let ctx = ctx_with_table();
        // partials: (city, partial_count) from two "splits"
        let partials = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("city", DataType::Varchar),
                Field::new("cnt", DataType::Bigint),
            ])
            .unwrap(),
            rows: vec![
                vec!["sf".into(), Value::Bigint(2)],
                vec!["sf".into(), Value::Bigint(3)],
                vec!["la".into(), Value::Bigint(1)],
            ],
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(partials),
            group_by: vec![RowExpression::column("city", 0, DataType::Varchar)],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::Count,
                argument: Some(RowExpression::column("cnt", 1, DataType::Bigint)),
                name: "cnt".into(),
            }],
            step: AggregateStep::FinalOverPartial,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(
            rows,
            vec![vec!["la".into(), Value::Bigint(1)], vec!["sf".into(), Value::Bigint(5)],]
        );
    }

    #[test]
    fn hash_join_inner_and_left() {
        let ctx = ctx_with_table();
        let cities = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("name", DataType::Varchar),
                Field::new("state", DataType::Varchar),
            ])
            .unwrap(),
            rows: vec![vec!["sf".into(), "CA".into()], vec!["nyc".into(), "NY".into()]],
        };
        let join = |kind| LogicalPlan::Join {
            left: Box::new(trips_scan()),
            right: Box::new(cities.clone()),
            kind,
            on: vec![(
                RowExpression::column("city", 1, DataType::Varchar),
                RowExpression::column("name", 0, DataType::Varchar),
            )],
            residual: None,
        };
        let inner = execute_to_rows(&join(JoinKind::Inner), &ctx).unwrap();
        assert_eq!(inner.len(), 5); // la has no match
        let left = execute_to_rows(&join(JoinKind::Left), &ctx).unwrap();
        assert_eq!(left.len(), 6);
        let la_row = left.iter().find(|r| r[1] == "la".into()).unwrap();
        assert_eq!(la_row[3], Value::Null);
        assert_eq!(la_row[4], Value::Null);
    }

    #[test]
    fn cross_join_with_residual() {
        let ctx = ctx_with_table();
        let nums = LogicalPlan::Values {
            schema: Schema::new(vec![Field::new("n", DataType::Bigint)]).unwrap(),
            rows: vec![vec![Value::Bigint(1)], vec![Value::Bigint(2)]],
        };
        let plan = LogicalPlan::Join {
            left: Box::new(nums.clone()),
            right: Box::new(nums),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(RowExpression::Call {
                handle: FunctionHandle::new(
                    "lt",
                    vec![DataType::Bigint, DataType::Bigint],
                    DataType::Boolean,
                ),
                args: vec![
                    RowExpression::column("n", 0, DataType::Bigint),
                    RowExpression::column("n2", 1, DataType::Bigint),
                ],
            }),
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(1), Value::Bigint(2)]]);
    }

    #[test]
    fn geo_join_matches_points_to_fences() {
        let ctx = ctx_with_table();
        let trips = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("lng", DataType::Double),
                Field::new("lat", DataType::Double),
            ])
            .unwrap(),
            rows: vec![
                vec![Value::Double(0.5), Value::Double(0.5)],
                vec![Value::Double(5.5), Value::Double(5.5)],
                vec![Value::Double(99.0), Value::Double(99.0)],
            ],
        };
        let cities = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("city_id", DataType::Bigint),
                Field::new("shape", DataType::Varchar),
            ])
            .unwrap(),
            rows: vec![
                vec![Value::Bigint(1), "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))".into()],
                vec![Value::Bigint(2), "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))".into()],
            ],
        };
        let plan = LogicalPlan::GeoJoin {
            probe: Box::new(trips),
            fences: Box::new(cities),
            probe_lng: RowExpression::column("lng", 0, DataType::Double),
            probe_lat: RowExpression::column("lat", 1, DataType::Double),
            fence_shape: RowExpression::column("shape", 1, DataType::Varchar),
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::Bigint(1)); // first point in city 1
        assert_eq!(rows[1][2], Value::Bigint(2));
    }

    #[test]
    fn sort_topn_limit() {
        let ctx = ctx_with_table();
        let keys = vec![SortKey {
            expr: RowExpression::column("fare", 2, DataType::Double),
            descending: true,
        }];
        let sorted = execute_to_rows(
            &LogicalPlan::Sort { input: Box::new(trips_scan()), keys: keys.clone() },
            &ctx,
        )
        .unwrap();
        assert_eq!(sorted[0][2], Value::Double(60.0));
        assert_eq!(sorted[5][2], Value::Double(10.0));

        let top2 = execute_to_rows(
            &LogicalPlan::TopN { input: Box::new(trips_scan()), keys, count: 2 },
            &ctx,
        )
        .unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1][2], Value::Double(50.0));

        let limited =
            execute_to_rows(&LogicalPlan::Limit { input: Box::new(trips_scan()), count: 4 }, &ctx)
                .unwrap();
        assert_eq!(limited.len(), 4);
    }

    /// Budget-capped context with an in-memory spill manager attached, so
    /// blocking operators spill instead of failing.
    fn ctx_with_spill(budget: usize) -> ExecutionContext {
        let ctx = ctx_with_table().with_memory_budget(budget);
        let spill = presto_resource::SpillManager::in_memory(ctx.metrics.clone());
        let pool = ctx.pool.clone();
        ctx.with_resources(pool, Some(Arc::new(spill)))
    }

    fn sorted_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn spilled_aggregation_matches_in_memory() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(trips_scan()),
            group_by: vec![RowExpression::column("city", 1, DataType::Varchar)],
            aggregates: vec![
                AggregateExpr {
                    function: AggregateFunction::CountStar,
                    argument: None,
                    name: "cnt".into(),
                },
                AggregateExpr {
                    function: AggregateFunction::Sum,
                    argument: Some(RowExpression::column("fare", 2, DataType::Double)),
                    name: "total".into(),
                },
            ],
            step: AggregateStep::Single,
        };
        let unconstrained = execute_to_rows(&plan, &ctx_with_table()).unwrap();
        // 3 groups need 3 * (64 + 2*48) = 480 bytes; budget 400 forces the
        // Grace fallback, and each partition's slice fits.
        let ctx = ctx_with_spill(400);
        let spilled = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(spilled, unconstrained);
        assert!(ctx.metrics.get("spill.files") > 0, "aggregation did not spill");
        assert_eq!(ctx.reserved_memory(), 0, "reservation leaked");
    }

    #[test]
    fn spilled_join_matches_in_memory() {
        // Large enough that a partition's build slice is much smaller than
        // the whole build side (page overhead doesn't shrink with rows).
        let schema =
            Schema::new(vec![Field::new("k", DataType::Bigint), Field::new("v", DataType::Double)])
                .unwrap();
        let mut rows: Vec<Vec<Value>> =
            (0..128i64).map(|i| vec![Value::Bigint(i % 8), Value::Double(i as f64)]).collect();
        // NULL probe keys must survive the LEFT join via partition 0
        rows.push(vec![Value::Null, Value::Double(-1.0)]);
        let big = LogicalPlan::Values { schema, rows };
        let plan = LogicalPlan::Join {
            left: Box::new(big.clone()),
            right: Box::new(big.clone()),
            kind: JoinKind::Left,
            on: vec![(
                RowExpression::column("k", 0, DataType::Bigint),
                RowExpression::column("k", 0, DataType::Bigint),
            )],
            residual: None,
        };
        let unconstrained = execute_to_rows(&plan, &ctx_with_table()).unwrap();
        // one byte short of the materialized build side
        let build_size = execute(&big, &ctx_with_table()).unwrap()[0].memory_size();
        let ctx = ctx_with_spill(build_size - 1);
        let spilled = execute_to_rows(&plan, &ctx).unwrap();
        // Grace partitioning reorders rows across partitions
        assert_eq!(sorted_rows(spilled), sorted_rows(unconstrained));
        assert!(ctx.metrics.get("spill.files") > 0, "join did not spill");
        assert_eq!(ctx.reserved_memory(), 0, "reservation leaked");
    }

    #[test]
    fn spilled_sort_matches_in_memory() {
        // two input pages, so the external sort can hold one run at a time
        let two_scans = LogicalPlan::Union { inputs: vec![trips_scan(), trips_scan()] };
        let keys = vec![SortKey {
            expr: RowExpression::column("fare", 2, DataType::Double),
            descending: true,
        }];
        let plan = LogicalPlan::Sort { input: Box::new(two_scans), keys };
        let unconstrained = execute_to_rows(&plan, &ctx_with_table()).unwrap();
        let page_size = execute(&trips_scan(), &ctx_with_table()).unwrap()[0].memory_size();
        // fits one page (a run) but not both
        let ctx = ctx_with_spill(page_size + page_size / 2);
        let spilled = execute_to_rows(&plan, &ctx).unwrap();
        // external merge sort must reproduce the stable in-memory order exactly
        assert_eq!(spilled, unconstrained);
        assert!(ctx.metrics.get("spill.files") > 0, "sort did not spill");
        assert_eq!(ctx.reserved_memory(), 0, "reservation leaked");
    }

    #[test]
    fn big_join_raises_insufficient_resources() {
        let ctx = ctx_with_table().with_memory_budget(64);
        let plan = LogicalPlan::Join {
            left: Box::new(trips_scan()),
            right: Box::new(trips_scan()),
            kind: JoinKind::Inner,
            on: vec![(
                RowExpression::column("id", 0, DataType::Bigint),
                RowExpression::column("id", 0, DataType::Bigint),
            )],
            residual: None,
        };
        let err = execute(&plan, &ctx).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
    }

    #[test]
    fn remote_source_binds_pages() {
        let mut ctx = ctx_with_table();
        let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
        let page = Page::new(vec![Block::bigint(vec![7])]).unwrap();
        ctx.bind_remote_source(3, vec![page]);
        let plan = LogicalPlan::RemoteSource { fragment: 3, schema };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(7)]]);
        let unbound = LogicalPlan::RemoteSource { fragment: 9, schema: Schema::empty() };
        assert!(execute(&unbound, &ctx).is_err());
    }
}
