//! The recursive plan executor.

use std::collections::HashMap;

use presto_common::{Block, Page, PrestoError, Result, Value};
use presto_expr::{Accumulator, AggregateFunction, RowExpression};
use presto_geo::index::GeofenceIndex;
use presto_plan::logical::{AggregateExpr, AggregateStep, JoinKind, LogicalPlan, SortKey};

use crate::context::ExecutionContext;

/// Execute a plan to completion, returning its output pages.
pub fn execute(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<Vec<Page>> {
    match plan {
        LogicalPlan::TableScan { catalog, schema, table, request, .. } => {
            let connector = ctx.catalogs.get(catalog)?;
            let splits = connector.splits(schema, table, request)?;
            ctx.metrics.add("exec.splits", splits.len() as u64);
            let mut pages = Vec::new();
            for split in &splits {
                for page in connector.scan_split(split, request)? {
                    ctx.metrics.add("exec.rows_scanned", page.positions() as u64);
                    if !page.is_empty() {
                        pages.push(page);
                    }
                }
            }
            Ok(pages)
        }
        LogicalPlan::Values { schema, rows } => {
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let mut blocks = Vec::with_capacity(schema.len());
            for (c, field) in schema.fields().iter().enumerate() {
                let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                blocks.push(Block::from_values(&field.data_type, &column)?);
            }
            Ok(vec![if blocks.is_empty() {
                Page::zero_column(rows.len())
            } else {
                Page::new(blocks)?
            }])
        }
        LogicalPlan::Filter { input, predicate } => {
            let pages = execute(input, ctx)?;
            let mut out = Vec::with_capacity(pages.len());
            for page in pages {
                let mask_block = ctx.evaluator.evaluate(predicate, &page)?;
                let mask: Vec<bool> = (0..page.positions())
                    .map(|i| {
                        !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true)
                    })
                    .collect();
                let filtered = page.filter(&mask);
                if !filtered.is_empty() {
                    out.push(filtered);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, expressions } => {
            let pages = execute(input, ctx)?;
            let mut out = Vec::with_capacity(pages.len());
            for page in pages {
                let mut blocks = Vec::with_capacity(expressions.len());
                for (_, e) in expressions {
                    blocks.push(ctx.evaluator.evaluate(e, &page)?);
                }
                out.push(if blocks.is_empty() {
                    Page::zero_column(page.positions())
                } else {
                    Page::new(blocks)?
                });
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group_by, aggregates, step } => {
            execute_aggregate(input, group_by, aggregates, *step, plan, ctx)
        }
        LogicalPlan::Join { left, right, kind, on, residual } => {
            execute_join(left, right, *kind, on, residual.as_ref(), ctx)
        }
        LogicalPlan::GeoJoin { probe, fences, probe_lng, probe_lat, fence_shape } => {
            execute_geo_join(probe, fences, probe_lng, probe_lat, fence_shape, ctx)
        }
        LogicalPlan::Sort { input, keys } => {
            let (page, indices) = sorted_indices(input, keys, ctx)?;
            Ok(match page {
                Some(p) => vec![p.take(&indices)],
                None => Vec::new(),
            })
        }
        LogicalPlan::TopN { input, keys, count } => {
            let (page, mut indices) = sorted_indices(input, keys, ctx)?;
            indices.truncate(*count);
            Ok(match page {
                Some(p) => vec![p.take(&indices)],
                None => Vec::new(),
            })
        }
        LogicalPlan::Limit { input, count } => {
            let pages = execute(input, ctx)?;
            let mut out = Vec::new();
            let mut kept = 0;
            for page in pages {
                if kept >= *count {
                    break;
                }
                let take = (*count - kept).min(page.positions());
                kept += take;
                out.push(if take == page.positions() {
                    page
                } else {
                    page.slice(0, take)
                });
            }
            Ok(out)
        }
        LogicalPlan::Output { input, .. } => execute(input, ctx),
        LogicalPlan::Union { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                out.extend(execute(input, ctx)?);
            }
            Ok(out)
        }
        LogicalPlan::RemoteSource { fragment, .. } => {
            ctx.remote_sources.get(fragment).cloned().ok_or_else(|| {
                PrestoError::Execution(format!("remote source fragment {fragment} not bound"))
            })
        }
    }
}

// ------------------------------------------------------------- aggregation

fn execute_aggregate(
    input: &LogicalPlan,
    group_by: &[RowExpression],
    aggregates: &[AggregateExpr],
    step: AggregateStep,
    plan: &LogicalPlan,
    ctx: &ExecutionContext,
) -> Result<Vec<Page>> {
    let pages = execute(input, ctx)?;
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    let mut reserved = 0usize;

    for page in &pages {
        // vectorized: evaluate keys and arguments once per page
        let key_blocks = group_by
            .iter()
            .map(|e| ctx.evaluator.evaluate(e, page))
            .collect::<Result<Vec<_>>>()?;
        let arg_blocks = aggregates
            .iter()
            .map(|a| a.argument.as_ref().map(|e| ctx.evaluator.evaluate(e, page)).transpose())
            .collect::<Result<Vec<_>>>()?;
        for i in 0..page.positions() {
            let key: Vec<Value> = key_blocks.iter().map(|b| b.value(i)).collect();
            let accs = groups.entry(key).or_insert_with(|| {
                reserved += 64 + aggregates.len() * 48;
                aggregates.iter().map(|a| a.function.new_accumulator()).collect()
            });
            for ((acc, agg), arg) in accs.iter_mut().zip(aggregates).zip(&arg_blocks) {
                match step {
                    AggregateStep::Single => match arg {
                        None => acc.add_count(1),
                        Some(block) => acc.add(&block.value(i)),
                    },
                    // Fig 2: merge connector-produced partials — counts sum,
                    // sums sum, min/max re-compare.
                    AggregateStep::FinalOverPartial => {
                        let partial = arg
                            .as_ref()
                            .ok_or_else(|| {
                                PrestoError::Internal(
                                    "final aggregation needs partial columns".into(),
                                )
                            })?
                            .value(i);
                        match agg.function {
                            AggregateFunction::Count | AggregateFunction::CountStar => {
                                acc.add_count(partial.as_i64().unwrap_or(0));
                            }
                            _ => acc.add(&partial),
                        }
                    }
                }
            }
        }
        // coarse memory accounting on the hash table
        if reserved > 0 {
            ctx.reserve_memory(reserved)?;
            reserved = 0;
        }
    }

    // Global aggregation over zero rows still yields one output row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| a.function.new_accumulator()).collect(),
        );
    }

    let mut rows: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(Accumulator::finish));
            key
        })
        .collect();
    rows.sort_by(|a, b|

        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal));

    let schema = plan.output_schema()?;
    let mut blocks = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    Ok(vec![if blocks.is_empty() {
        Page::zero_column(rows.len())
    } else {
        Page::new(blocks)?
    }])
}

// -------------------------------------------------------------------- join

fn execute_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    on: &[(RowExpression, RowExpression)],
    residual: Option<&RowExpression>,
    ctx: &ExecutionContext,
) -> Result<Vec<Page>> {
    let left_pages = execute(left, ctx)?;
    let right_pages = execute(right, ctx)?;
    // Build side: the right input, materialized (distributed hash join is
    // the production default, §XII.A).
    let build = match right_pages.len() {
        0 => {
            let schema = right.output_schema()?;
            empty_page(&schema)?
        }
        _ => Page::concat(&right_pages)?,
    };
    ctx.reserve_memory(build.memory_size())?;

    let mut out = Vec::new();
    if on.is_empty() {
        // Nested-loop cross join with optional residual — the shape the
        // geospatial rewrite replaces (§VI.C's "brute force" plan).
        for probe in &left_pages {
            let mut probe_idx = Vec::new();
            let mut build_idx = Vec::new();
            for i in 0..probe.positions() {
                for j in 0..build.positions() {
                    probe_idx.push(i);
                    build_idx.push(j);
                }
            }
            let page = stitch(probe, &probe_idx, &build, &build_idx)?;
            let page = apply_residual(page, residual, ctx)?;
            if !page.is_empty() {
                out.push(page);
            }
        }
        ctx.release_memory(build.memory_size());
        return Ok(out);
    }

    // Hash join on equi keys.
    let build_keys = on
        .iter()
        .map(|(_, r)| ctx.evaluator.evaluate(r, &build))
        .collect::<Result<Vec<_>>>()?;
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for j in 0..build.positions() {
        let key: Vec<Value> = build_keys.iter().map(|b| b.value(j)).collect();
        if key.iter().any(Value::is_null) {
            continue; // SQL equi-join never matches NULL keys
        }
        table.entry(key).or_default().push(j);
    }
    ctx.reserve_memory(table.len() * 48)?;

    for probe in &left_pages {
        let probe_keys = on
            .iter()
            .map(|(l, _)| ctx.evaluator.evaluate(l, probe))
            .collect::<Result<Vec<_>>>()?;
        // Key-matched candidate pairs; probe rows with no key match are
        // remembered separately so LEFT joins can null-extend them.
        let mut cand_probe = Vec::new();
        let mut cand_build = Vec::new();
        for i in 0..probe.positions() {
            let key: Vec<Value> = probe_keys.iter().map(|b| b.value(i)).collect();
            let matches = if key.iter().any(Value::is_null) {
                None
            } else {
                table.get(&key)
            };
            if let Some(rows) = matches {
                for &j in rows {
                    cand_probe.push(i);
                    cand_build.push(j);
                }
            }
        }
        // ON-clause residual filters *candidate pairs*, before outer-join
        // null extension — a pair failing the residual is not a match, so
        // its LEFT row must still appear null-extended.
        let survivors: Vec<bool> = match residual {
            None => vec![true; cand_probe.len()],
            Some(expr) => {
                let pairs = stitch(probe, &cand_probe, &build, &cand_build)?;
                let mask_block = ctx.evaluator.evaluate(expr, &pairs)?;
                (0..pairs.positions())
                    .map(|i| {
                        !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true)
                    })
                    .collect()
            }
        };
        let mut probe_idx = Vec::new();
        let mut build_idx: Vec<Option<usize>> = Vec::new();
        let mut matched = vec![false; probe.positions()];
        for (pair, keep) in survivors.iter().enumerate() {
            if *keep {
                matched[cand_probe[pair]] = true;
                probe_idx.push(cand_probe[pair]);
                build_idx.push(Some(cand_build[pair]));
            }
        }
        if kind == JoinKind::Left {
            for (i, was_matched) in matched.iter().enumerate() {
                if !was_matched {
                    probe_idx.push(i);
                    build_idx.push(None);
                }
            }
        }
        let page = stitch_nullable(probe, &probe_idx, &build, &build_idx, right)?;
        if !page.is_empty() {
            out.push(page);
        }
    }
    ctx.release_memory(build.memory_size());
    Ok(out)
}

fn apply_residual(
    page: Page,
    residual: Option<&RowExpression>,
    ctx: &ExecutionContext,
) -> Result<Page> {
    match residual {
        None => Ok(page),
        Some(expr) => {
            if page.is_empty() {
                return Ok(page);
            }
            let mask_block = ctx.evaluator.evaluate(expr, &page)?;
            let mask: Vec<bool> = (0..page.positions())
                .map(|i| !mask_block.is_null(i) && mask_block.value(i).as_bool() == Some(true))
                .collect();
            Ok(page.filter(&mask))
        }
    }
}

/// Combine probe rows and build rows side by side.
fn stitch(probe: &Page, probe_idx: &[usize], build: &Page, build_idx: &[usize]) -> Result<Page> {
    let left = probe.take(probe_idx);
    let right = build.take(build_idx);
    let mut blocks = left.into_blocks();
    blocks.extend(right.into_blocks());
    if blocks.is_empty() {
        Ok(Page::zero_column(probe_idx.len()))
    } else {
        Page::new(blocks)
    }
}

/// Like [`stitch`] but build-side misses become NULL rows (left join).
fn stitch_nullable(
    probe: &Page,
    probe_idx: &[usize],
    build: &Page,
    build_idx: &[Option<usize>],
    right_plan: &LogicalPlan,
) -> Result<Page> {
    if build_idx.iter().all(Option::is_some) {
        let plain: Vec<usize> = build_idx.iter().map(|o| o.unwrap()).collect();
        return stitch(probe, probe_idx, build, &plain);
    }
    let left = probe.take(probe_idx);
    let right_schema = right_plan.output_schema()?;
    let mut blocks = left.into_blocks();
    for (c, field) in right_schema.fields().iter().enumerate() {
        let column: Vec<Value> = build_idx
            .iter()
            .map(|o| match o {
                Some(j) => build.block(c).value(*j),
                None => Value::Null,
            })
            .collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    if blocks.is_empty() {
        Ok(Page::zero_column(probe_idx.len()))
    } else {
        Page::new(blocks)
    }
}

// ---------------------------------------------------------------- geo join

fn execute_geo_join(
    probe: &LogicalPlan,
    fences: &LogicalPlan,
    probe_lng: &RowExpression,
    probe_lat: &RowExpression,
    fence_shape: &RowExpression,
    ctx: &ExecutionContext,
) -> Result<Vec<Page>> {
    // build_geo_index (§VI.E): consume the fence side, parse WKT shapes,
    // build the QuadTree on the fly.
    let fence_pages = execute(fences, ctx)?;
    let fence_page = match fence_pages.len() {
        0 => empty_page(&fences.output_schema()?)?,
        _ => Page::concat(&fence_pages)?,
    };
    ctx.reserve_memory(fence_page.memory_size())?;
    let shapes = ctx.evaluator.evaluate(fence_shape, &fence_page)?;
    let mut rows_with_shapes = Vec::with_capacity(fence_page.positions());
    for j in 0..fence_page.positions() {
        if let Some(wkt) = shapes.str_at(j) {
            rows_with_shapes.push((j as i64, wkt.to_string()));
        }
    }
    let index = GeofenceIndex::build_from_wkt(rows_with_shapes)?;
    ctx.metrics.add("exec.geo_index_fences", index.len() as u64);

    let probe_pages = execute(probe, ctx)?;
    let mut out = Vec::new();
    for page in &probe_pages {
        let lng = ctx.evaluator.evaluate(probe_lng, page)?;
        let lat = ctx.evaluator.evaluate(probe_lat, page)?;
        let mut probe_idx = Vec::new();
        let mut fence_idx = Vec::new();
        for i in 0..page.positions() {
            let (Some(x), Some(y)) = (lng.value(i).as_f64(), lat.value(i).as_f64()) else {
                continue;
            };
            for fence_row in index.find_containing(&presto_geo::Point::new(x, y)) {
                probe_idx.push(i);
                fence_idx.push(fence_row as usize);
            }
        }
        ctx.metrics.add("exec.geo_contains_calls", index.contains_calls());
        let stitched = stitch(page, &probe_idx, &fence_page, &fence_idx)?;
        if !stitched.is_empty() {
            out.push(stitched);
        }
    }
    ctx.release_memory(fence_page.memory_size());
    Ok(out)
}

// -------------------------------------------------------------------- sort

fn sorted_indices(
    input: &LogicalPlan,
    keys: &[SortKey],
    ctx: &ExecutionContext,
) -> Result<(Option<Page>, Vec<usize>)> {
    let pages = execute(input, ctx)?;
    if pages.is_empty() {
        return Ok((None, Vec::new()));
    }
    let page = Page::concat(&pages)?;
    ctx.reserve_memory(page.memory_size())?;
    let key_blocks = keys
        .iter()
        .map(|k| ctx.evaluator.evaluate(&k.expr, &page))
        .collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..page.positions()).collect();
    indices.sort_by(|&a, &b| {
        for (block, key) in key_blocks.iter().zip(keys) {
            let ord = block.value(a).total_cmp(&block.value(b));
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    ctx.release_memory(page.memory_size());
    Ok((Some(page), indices))
}

fn empty_page(schema: &presto_common::Schema) -> Result<Page> {
    let blocks: Vec<Block> = schema
        .fields()
        .iter()
        .map(|f| Block::from_values(&f.data_type, &[]))
        .collect::<Result<Vec<_>>>()?;
    if blocks.is_empty() {
        Ok(Page::zero_column(0))
    } else {
        Page::new(blocks)
    }
}

// A convenience used by tests and the engine facade.
/// Gather all output rows of a plan (materializing).
pub fn execute_to_rows(plan: &LogicalPlan, ctx: &ExecutionContext) -> Result<Vec<Vec<Value>>> {
    Ok(execute(plan, ctx)?.iter().flat_map(|p| p.rows()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field, Schema};
    use presto_connectors::memory::MemoryConnector;
    use presto_connectors::{CatalogRegistry, ColumnPath, ScanRequest};
    use presto_expr::FunctionHandle;
    use std::sync::Arc;

    fn ctx_with_table() -> ExecutionContext {
        let registry = CatalogRegistry::new();
        let memory = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
            Field::new("fare", DataType::Double),
        ])
        .unwrap();
        let page = Page::new(vec![
            Block::bigint(vec![1, 2, 3, 4, 5, 6]),
            Block::varchar(&["sf", "nyc", "sf", "la", "nyc", "sf"]),
            Block::double(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        ])
        .unwrap();
        memory.create_table("default", "trips", schema, vec![page]).unwrap();
        registry.register("memory", Arc::new(memory));
        ExecutionContext::new(registry)
    }

    fn trips_scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            catalog: "memory".into(),
            schema: "default".into(),
            table: "trips".into(),
            table_schema: Schema::new(vec![
                Field::new("id", DataType::Bigint),
                Field::new("city", DataType::Varchar),
                Field::new("fare", DataType::Double),
            ])
            .unwrap(),
            request: ScanRequest::project(vec![
                ColumnPath::whole("id"),
                ColumnPath::whole("city"),
                ColumnPath::whole("fare"),
            ]),
        }
    }

    fn eq(l: RowExpression, r: RowExpression) -> RowExpression {
        RowExpression::Call {
            handle: FunctionHandle::new(
                "eq",
                vec![l.data_type(), r.data_type()],
                DataType::Boolean,
            ),
            args: vec![l, r],
        }
    }

    #[test]
    fn scan_filter_project() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(trips_scan()),
                predicate: eq(
                    RowExpression::column("city", 1, DataType::Varchar),
                    RowExpression::varchar("sf"),
                ),
            }),
            expressions: vec![("id".into(), RowExpression::column("id", 0, DataType::Bigint))],
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(1)], vec![Value::Bigint(3)], vec![Value::Bigint(6)]]);
    }

    #[test]
    fn group_by_aggregation() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(trips_scan()),
            group_by: vec![RowExpression::column("city", 1, DataType::Varchar)],
            aggregates: vec![
                AggregateExpr {
                    function: AggregateFunction::CountStar,
                    argument: None,
                    name: "cnt".into(),
                },
                AggregateExpr {
                    function: AggregateFunction::Sum,
                    argument: Some(RowExpression::column("fare", 2, DataType::Double)),
                    name: "total".into(),
                },
            ],
            step: AggregateStep::Single,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["la".into(), Value::Bigint(1), Value::Double(40.0)],
                vec!["nyc".into(), Value::Bigint(2), Value::Double(70.0)],
                vec!["sf".into(), Value::Bigint(3), Value::Double(100.0)],
            ]
        );
    }

    #[test]
    fn global_aggregation_on_empty_input_yields_one_row() {
        let ctx = ctx_with_table();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(trips_scan()),
                predicate: eq(
                    RowExpression::column("city", 1, DataType::Varchar),
                    RowExpression::varchar("nowhere"),
                ),
            }),
            group_by: vec![],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::CountStar,
                argument: None,
                name: "cnt".into(),
            }],
            step: AggregateStep::Single,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(0)]]);
    }

    #[test]
    fn final_over_partial_merges_counts() {
        let ctx = ctx_with_table();
        // partials: (city, partial_count) from two "splits"
        let partials = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("city", DataType::Varchar),
                Field::new("cnt", DataType::Bigint),
            ])
            .unwrap(),
            rows: vec![
                vec!["sf".into(), Value::Bigint(2)],
                vec!["sf".into(), Value::Bigint(3)],
                vec!["la".into(), Value::Bigint(1)],
            ],
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(partials),
            group_by: vec![RowExpression::column("city", 0, DataType::Varchar)],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::Count,
                argument: Some(RowExpression::column("cnt", 1, DataType::Bigint)),
                name: "cnt".into(),
            }],
            step: AggregateStep::FinalOverPartial,
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["la".into(), Value::Bigint(1)],
                vec!["sf".into(), Value::Bigint(5)],
            ]
        );
    }

    #[test]
    fn hash_join_inner_and_left() {
        let ctx = ctx_with_table();
        let cities = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("name", DataType::Varchar),
                Field::new("state", DataType::Varchar),
            ])
            .unwrap(),
            rows: vec![
                vec!["sf".into(), "CA".into()],
                vec!["nyc".into(), "NY".into()],
            ],
        };
        let join = |kind| LogicalPlan::Join {
            left: Box::new(trips_scan()),
            right: Box::new(cities.clone()),
            kind,
            on: vec![(
                RowExpression::column("city", 1, DataType::Varchar),
                RowExpression::column("name", 0, DataType::Varchar),
            )],
            residual: None,
        };
        let inner = execute_to_rows(&join(JoinKind::Inner), &ctx).unwrap();
        assert_eq!(inner.len(), 5); // la has no match
        let left = execute_to_rows(&join(JoinKind::Left), &ctx).unwrap();
        assert_eq!(left.len(), 6);
        let la_row = left.iter().find(|r| r[1] == "la".into()).unwrap();
        assert_eq!(la_row[3], Value::Null);
        assert_eq!(la_row[4], Value::Null);
    }

    #[test]
    fn cross_join_with_residual() {
        let ctx = ctx_with_table();
        let nums = LogicalPlan::Values {
            schema: Schema::new(vec![Field::new("n", DataType::Bigint)]).unwrap(),
            rows: vec![vec![Value::Bigint(1)], vec![Value::Bigint(2)]],
        };
        let plan = LogicalPlan::Join {
            left: Box::new(nums.clone()),
            right: Box::new(nums),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(RowExpression::Call {
                handle: FunctionHandle::new(
                    "lt",
                    vec![DataType::Bigint, DataType::Bigint],
                    DataType::Boolean,
                ),
                args: vec![
                    RowExpression::column("n", 0, DataType::Bigint),
                    RowExpression::column("n2", 1, DataType::Bigint),
                ],
            }),
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(1), Value::Bigint(2)]]);
    }

    #[test]
    fn geo_join_matches_points_to_fences() {
        let ctx = ctx_with_table();
        let trips = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("lng", DataType::Double),
                Field::new("lat", DataType::Double),
            ])
            .unwrap(),
            rows: vec![
                vec![Value::Double(0.5), Value::Double(0.5)],
                vec![Value::Double(5.5), Value::Double(5.5)],
                vec![Value::Double(99.0), Value::Double(99.0)],
            ],
        };
        let cities = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("city_id", DataType::Bigint),
                Field::new("shape", DataType::Varchar),
            ])
            .unwrap(),
            rows: vec![
                vec![Value::Bigint(1), "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))".into()],
                vec![Value::Bigint(2), "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))".into()],
            ],
        };
        let plan = LogicalPlan::GeoJoin {
            probe: Box::new(trips),
            fences: Box::new(cities),
            probe_lng: RowExpression::column("lng", 0, DataType::Double),
            probe_lat: RowExpression::column("lat", 1, DataType::Double),
            fence_shape: RowExpression::column("shape", 1, DataType::Varchar),
        };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][2], Value::Bigint(1)); // first point in city 1
        assert_eq!(rows[1][2], Value::Bigint(2));
    }

    #[test]
    fn sort_topn_limit() {
        let ctx = ctx_with_table();
        let keys = vec![SortKey {
            expr: RowExpression::column("fare", 2, DataType::Double),
            descending: true,
        }];
        let sorted = execute_to_rows(
            &LogicalPlan::Sort { input: Box::new(trips_scan()), keys: keys.clone() },
            &ctx,
        )
        .unwrap();
        assert_eq!(sorted[0][2], Value::Double(60.0));
        assert_eq!(sorted[5][2], Value::Double(10.0));

        let top2 = execute_to_rows(
            &LogicalPlan::TopN { input: Box::new(trips_scan()), keys, count: 2 },
            &ctx,
        )
        .unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1][2], Value::Double(50.0));

        let limited = execute_to_rows(
            &LogicalPlan::Limit { input: Box::new(trips_scan()), count: 4 },
            &ctx,
        )
        .unwrap();
        assert_eq!(limited.len(), 4);
    }

    #[test]
    fn big_join_raises_insufficient_resources() {
        let ctx = ctx_with_table().with_memory_budget(64);
        let plan = LogicalPlan::Join {
            left: Box::new(trips_scan()),
            right: Box::new(trips_scan()),
            kind: JoinKind::Inner,
            on: vec![(
                RowExpression::column("id", 0, DataType::Bigint),
                RowExpression::column("id", 0, DataType::Bigint),
            )],
            residual: None,
        };
        let err = execute(&plan, &ctx).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
    }

    #[test]
    fn remote_source_binds_pages() {
        let mut ctx = ctx_with_table();
        let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
        let page = Page::new(vec![Block::bigint(vec![7])]).unwrap();
        ctx.bind_remote_source(3, vec![page]);
        let plan = LogicalPlan::RemoteSource { fragment: 3, schema };
        let rows = execute_to_rows(&plan, &ctx).unwrap();
        assert_eq!(rows, vec![vec![Value::Bigint(7)]]);
        let unbound = LogicalPlan::RemoteSource {
            fragment: 9,
            schema: Schema::empty(),
        };
        assert!(execute(&unbound, &ctx).is_err());
    }
}
