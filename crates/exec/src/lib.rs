#![warn(missing_docs)]

//! Vectorized plan execution (§III: "Some workers are scanning files, some
//! workers are streaming data from underlying connectors, and some workers
//! are running SQL aggregations, joins, etc.").
//!
//! The executor evaluates a [`presto_plan::LogicalPlan`] over pages:
//! connector scans, vectorized filter/project, hash aggregation (single and
//! final-over-partial for aggregation pushdown), hash joins and cross joins,
//! the QuadTree [`GeoJoin`](presto_plan::LogicalPlan::GeoJoin) of §VI, sort
//! / top-N / limit, and exchange sources bound by the cluster runtime.
//!
//! Memory is accounted against a session budget; exceeding it raises the
//! paper's infamous `"Insufficient Resource"` error (§XII.C: "When users are
//! joining two large tables, Presto will return an error").

pub mod context;
pub mod exchange;
pub mod executor;

pub use context::ExecutionContext;
pub use executor::execute;
