//! Exchange delivery: the simulated page channel between a leaf fragment's
//! workers and the coordinator.
//!
//! In real Presto an exchange is an HTTP stream and can fail or stall
//! mid-transfer, independently of the scan tasks that produced the pages.
//! [`deliver`] models that: every page crossing the channel consults the
//! cluster's [`FaultInjector`] mid-stream hooks
//! ([`FaultInjector::on_exchange_page`]), so a chaos plan can stall a
//! transfer (the delay lands on the virtual clock) or tear it (the
//! delivery fails with a retryable error and the coordinator may retry the
//! whole transfer — pages are still buffered on the producer side).
//! Decisions are a pure function of (seed, fragment, page ordinal,
//! attempt), so a retried delivery re-draws with its new attempt number
//! instead of tearing forever.

use std::time::Duration;

use presto_common::fault::{FaultInjector, PageFault};
use presto_common::{Page, PrestoError, Result, SimClock};

/// Deliver one fragment's pages across the simulated exchange channel.
///
/// `attempt` is 1-based; retried deliveries pass 2, 3, … so one-shot
/// exchange faults spare the retry. Stalls advance `clock` by their delay
/// and the transfer continues; a tear aborts the delivery with
/// [`PrestoError::TransientExhausted`] (retryable — the producer still has
/// the pages). Returns the total stall time injected into this delivery.
pub fn deliver(
    injector: &FaultInjector,
    clock: &SimClock,
    fragment: u32,
    pages: &[Page],
    attempt: u64,
) -> Result<Duration> {
    let mut stalled = Duration::ZERO;
    if !injector.is_enabled() {
        return Ok(stalled);
    }
    for ordinal in 1..=pages.len() as u64 {
        match injector.on_exchange_page(fragment, ordinal, attempt) {
            PageFault::None => {}
            PageFault::Stall(delay) => {
                clock.advance(delay);
                stalled += delay;
            }
            PageFault::Tear => {
                return Err(PrestoError::TransientExhausted(format!(
                    "exchange for fragment {fragment} tore at page {ordinal} (injected)"
                )));
            }
        }
    }
    Ok(stalled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::fault::FaultPlan;
    use presto_common::Block;

    fn pages(n: usize) -> Vec<Page> {
        (0..n).map(|i| Page::new(vec![Block::bigint(vec![i as i64])]).unwrap()).collect()
    }

    #[test]
    fn disabled_injector_is_free() {
        let injector = FaultInjector::disabled();
        let clock = SimClock::new();
        let stalled = deliver(&injector, &clock, 1, &pages(8), 1).unwrap();
        assert_eq!(stalled, Duration::ZERO);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn stall_lands_on_the_virtual_clock() {
        let injector = FaultInjector::new(
            3,
            FaultPlan::new().stall_exchange_page(1, 2, Duration::from_millis(40)),
        );
        let clock = SimClock::new();
        let stalled = deliver(&injector, &clock, 1, &pages(4), 1).unwrap();
        assert_eq!(stalled, Duration::from_millis(40));
        assert_eq!(clock.now(), Duration::from_millis(40));
        // a different fragment is untouched
        assert_eq!(deliver(&injector, &clock, 2, &pages(4), 1).unwrap(), Duration::ZERO);
    }

    #[test]
    fn tear_is_retryable_and_spares_the_retry() {
        let injector = FaultInjector::new(3, FaultPlan::new().tear_exchange_page(7, 3));
        let clock = SimClock::new();
        let err = deliver(&injector, &clock, 7, &pages(5), 1).unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(err.message().contains("tore at page 3"), "{err}");
        // one-shot spec: the second delivery attempt goes through
        assert!(deliver(&injector, &clock, 7, &pages(5), 2).is_ok());
    }

    #[test]
    fn rate_tears_are_pure_in_fragment_page_attempt() {
        let draw = |fragment, attempt| {
            let injector = FaultInjector::new(9, FaultPlan::new().exchange_tear_rate(0.5));
            let clock = SimClock::new();
            deliver(&injector, &clock, fragment, &pages(16), attempt).is_ok()
        };
        for fragment in 1..4 {
            for attempt in 1..4 {
                assert_eq!(draw(fragment, attempt), draw(fragment, attempt));
            }
        }
    }
}
