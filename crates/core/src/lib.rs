#![warn(missing_docs)]

//! The engine facade: sessions, catalogs, and end-to-end SQL.
//!
//! [`engine::PrestoEngine`] wires the whole paper-stack together: SQL text →
//! parser → analyzer → rule-based optimizer (with every §IV/§V/§VI pushdown
//! and rewrite) → fragmenter → vectorized execution over connectors. The
//! geospatial plugin (§VI.E) is registered by default, so `st_point` /
//! `st_contains` work both as plain functions and as the QuadTree join
//! rewrite.

pub mod engine;
pub mod plugin;
pub mod session;

pub use engine::{PrestoEngine, QueryInfo, QueryResult};
pub use session::Session;
