//! The Presto Geospatial plugin (§VI.E): scalar geo functions registered
//! through the plugin framework ([`presto_expr::FunctionRegistry`]).
//!
//! These are the *naive-path* functions — `st_contains` parses and tests one
//! (shape, point) pair per call, which is exactly the per-pair cost §VI.C
//! complains about. The optimizer's GeoJoin rewrite replaces repeated
//! `st_contains` evaluation with the QuadTree index; these functions remain
//! for non-join usage and as the semantics oracle for the rewrite.

use std::sync::Arc;

use presto_common::{DataType, PrestoError, Value};
use presto_expr::FunctionRegistry;
use presto_geo::wkt::{parse_wkt, to_wkt};
use presto_geo::{Geometry, Point};

/// Register `st_point`, `st_contains`, `st_x`, `st_y` into a registry.
pub fn register_geospatial_plugin(registry: &FunctionRegistry) {
    registry.register_custom(
        "st_point",
        Arc::new(|args: &[DataType]| {
            (args.len() == 2 && args.iter().all(DataType::is_numeric)).then_some(DataType::Varchar)
        }),
        Arc::new(|args: &[Value]| {
            let (Some(lng), Some(lat)) = (args[0].as_f64(), args[1].as_f64()) else {
                return Ok(Value::Null);
            };
            Ok(Value::Varchar(to_wkt(&Geometry::Point(Point::new(lng, lat)))))
        }),
    );
    registry.register_custom(
        "st_contains",
        Arc::new(|args: &[DataType]| {
            (args == [DataType::Varchar, DataType::Varchar]).then_some(DataType::Boolean)
        }),
        Arc::new(|args: &[Value]| {
            let (Some(shape), Some(point)) = (args[0].as_str(), args[1].as_str()) else {
                return Ok(Value::Null);
            };
            let shape = parse_wkt(shape)
                .map_err(|e| PrestoError::Execution(format!("st_contains: {e}")))?;
            let point = parse_wkt(point)
                .map_err(|e| PrestoError::Execution(format!("st_contains: {e}")))?;
            let Geometry::Point(p) = point else {
                return Err(PrestoError::Execution(
                    "st_contains: second argument must be a point".into(),
                ));
            };
            Ok(Value::Boolean(shape.contains(&p)))
        }),
    );
    registry.register_custom(
        "st_x",
        Arc::new(|args: &[DataType]| (args == [DataType::Varchar]).then_some(DataType::Double)),
        Arc::new(|args: &[Value]| match args[0].as_str() {
            Some(wkt) => match parse_wkt(wkt) {
                Ok(Geometry::Point(p)) => Ok(Value::Double(p.lng)),
                _ => Ok(Value::Null),
            },
            None => Ok(Value::Null),
        }),
    );
    registry.register_custom(
        "st_y",
        Arc::new(|args: &[DataType]| (args == [DataType::Varchar]).then_some(DataType::Double)),
        Arc::new(|args: &[Value]| match args[0].as_str() {
            Some(wkt) => match parse_wkt(wkt) {
                Ok(Geometry::Point(p)) => Ok(Value::Double(p.lat)),
                _ => Ok(Value::Null),
            },
            None => Ok(Value::Null),
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_register_and_evaluate() {
        let registry = FunctionRegistry::new();
        register_geospatial_plugin(&registry);
        assert!(registry.contains("st_point"));
        assert!(registry.contains("st_contains"));

        let st_point = registry.custom("st_point").unwrap();
        let p = (st_point.eval)(&[Value::Double(0.5), Value::Double(0.5)]).unwrap();
        assert_eq!(p, Value::Varchar("POINT (0.5 0.5)".into()));

        let st_contains = registry.custom("st_contains").unwrap();
        let square = Value::Varchar("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))".into());
        assert_eq!((st_contains.eval)(&[square.clone(), p]).unwrap(), Value::Boolean(true));
        assert_eq!(
            (st_contains.eval)(&[square.clone(), Value::Varchar("POINT (5 5)".into())]).unwrap(),
            Value::Boolean(false)
        );
        assert!((st_contains.eval)(&[square, Value::Varchar("garbage".into())]).is_err());

        let st_x = registry.custom("st_x").unwrap();
        assert_eq!(
            (st_x.eval)(&[Value::Varchar("POINT (3 4)".into())]).unwrap(),
            Value::Double(3.0)
        );
    }
}
