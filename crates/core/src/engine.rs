//! `PrestoEngine`: the coordinator-in-a-box.
//!
//! Fig 1's lifecycle, end to end: SQL → tokens → AST → analyzer → logical
//! plan → optimizer rounds → (optionally) fragmenter → execution. The local
//! engine executes unfragmented plans directly; the cluster runtime
//! ([`presto-cluster`](https://crates.io)) uses [`PrestoEngine::plan`] +
//! [`presto_plan::fragment_plan`] to run fragments on simulated workers.

use std::sync::Arc;
use std::time::Duration;

use presto_common::clock::SimStopwatch;
use presto_common::metrics::{names, CounterSet};
use presto_common::telemetry::TelemetryRegistry;
use presto_common::trace::{OperatorStats, SpanId, SpanKind, Trace};
use presto_common::{Page, PrestoError, Result, Schema, Value};
use presto_connectors::{CatalogRegistry, Connector};
use presto_exec::{execute, ExecutionContext};
use presto_expr::{Evaluator, FunctionRegistry};
use presto_plan::{explain, explain_analyze, fragment_plan, optimize, LogicalPlan, PlanFragment};
use presto_resource::{QueryPool, ResourceManager, SpillManager};
use presto_sql::{analyze, parse_sql, AnalyzerContext, Statement};

use crate::plugin::register_geospatial_plugin;
use crate::session::Session;

/// Observability record of one executed query: its trace, end-to-end
/// virtual latency, and peak memory — the repro of Presto's `QueryInfo`.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// The query's span tree (query → operator; the cluster runtime adds
    /// stage and task levels).
    pub trace: Trace,
    /// End-to-end virtual latency.
    pub latency: Duration,
    /// Peak bytes reserved against the query's memory pool.
    pub peak_memory: usize,
}

impl QueryInfo {
    /// An empty record (plans that never executed, e.g. plain `EXPLAIN`).
    pub fn empty() -> QueryInfo {
        QueryInfo { trace: Trace::default(), latency: Duration::ZERO, peak_memory: 0 }
    }

    /// Per-operator runtime stats in plan pre-order.
    pub fn operator_stats(&self) -> Vec<OperatorStats> {
        self.trace.operator_stats()
    }
}

/// A completed query's output.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names and types.
    pub schema: Schema,
    /// Output pages.
    pub pages: Vec<Page>,
    /// Per-query counters: `memory.reserved_peak`, `spill.bytes_written`,
    /// `spill.files`, `admission.queued`, `admission.wait_virtual_ms`, plus
    /// the executor's `exec.*` counters.
    pub metrics: CounterSet,
    /// Trace, latency, and memory observability for this query.
    pub info: QueryInfo,
}

impl QueryResult {
    /// Total output rows.
    pub fn row_count(&self) -> usize {
        self.pages.iter().map(Page::positions).sum()
    }

    /// Materialize all rows (for display and tests).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.pages.iter().flat_map(|p| p.rows()).collect()
    }

    /// Render as a simple text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self.schema.fields().iter().map(|f| f.name.as_str()).collect();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in self.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// One-column varchar result carrying rendered plan text (EXPLAIN variants).
fn plan_text_result(text: String, metrics: CounterSet, info: QueryInfo) -> Result<QueryResult> {
    let schema =
        Schema::new(vec![presto_common::Field::new("plan", presto_common::DataType::Varchar)])?;
    let block = presto_common::Block::varchar(&[text.as_str()]);
    Ok(QueryResult { schema, pages: vec![Page::new(vec![block])?], metrics, info })
}

/// The engine: catalogs + functions + optimizer + executor.
///
/// Cloning shares catalogs and functions (an engine is one "cluster brain";
/// the cluster crate instantiates several for federation).
///
/// ```
/// use std::sync::Arc;
/// use presto_core::PrestoEngine;
/// use presto_connectors::memory::MemoryConnector;
/// use presto_common::{Block, DataType, Field, Page, Schema, Value};
///
/// let engine = PrestoEngine::new();
/// let memory = MemoryConnector::new();
/// memory.create_table(
///     "default", "trips",
///     Schema::new(vec![
///         Field::new("city", DataType::Varchar),
///         Field::new("fare", DataType::Double),
///     ])?,
///     vec![Page::new(vec![
///         Block::varchar(&["sf", "nyc", "sf"]),
///         Block::double(vec![10.0, 20.0, 30.0]),
///     ])?],
/// )?;
/// engine.register_catalog("memory", Arc::new(memory));
///
/// let result = engine.execute(
///     "SELECT city, sum(fare) AS revenue FROM trips GROUP BY city ORDER BY 2 DESC",
/// )?;
/// assert_eq!(result.rows()[0], vec![Value::from("sf"), Value::Double(40.0)]);
/// # Ok::<(), presto_common::PrestoError>(())
/// ```
#[derive(Clone)]
pub struct PrestoEngine {
    catalogs: CatalogRegistry,
    registry: FunctionRegistry,
    resources: ResourceManager,
    telemetry: Arc<TelemetryRegistry>,
}

impl Default for PrestoEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PrestoEngine {
    /// Engine with built-in functions and the geospatial plugin registered.
    /// Resource management defaults to unbounded (no admission queue, no
    /// cluster memory cap).
    pub fn new() -> PrestoEngine {
        let registry = FunctionRegistry::new();
        register_geospatial_plugin(&registry);
        PrestoEngine {
            catalogs: CatalogRegistry::new(),
            registry,
            resources: ResourceManager::unbounded(),
            telemetry: Arc::new(TelemetryRegistry::new()),
        }
    }

    /// Swap in a configured resource manager (cluster memory pool,
    /// admission control, spill filesystem). Clones of the engine share it.
    pub fn with_resources(mut self, resources: ResourceManager) -> PrestoEngine {
        self.resources = resources;
        self
    }

    /// Swap in a shared telemetry registry (the cluster runtime injects the
    /// one its snapshots land in, so `EXPLAIN ANALYZE` footers and the
    /// `system` catalog read live fleet state). Clones share it.
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryRegistry>) -> PrestoEngine {
        self.telemetry = telemetry;
        self
    }

    /// The engine's telemetry registry.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// The engine's resource manager.
    pub fn resources(&self) -> &ResourceManager {
        &self.resources
    }

    /// Register a connector under a catalog name.
    pub fn register_catalog(&self, name: impl Into<String>, connector: Arc<dyn Connector>) {
        self.catalogs.register(name, connector);
    }

    /// The catalog registry.
    pub fn catalogs(&self) -> &CatalogRegistry {
        &self.catalogs
    }

    /// The function registry (for further plugin registration).
    pub fn functions(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Parse + analyze + optimize into a logical plan.
    pub fn plan(&self, sql: &str, session: &Session) -> Result<LogicalPlan> {
        let statement = parse_sql(sql)?;
        let query = match &statement {
            Statement::Query(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
        };
        let analyzer_ctx = AnalyzerContext {
            catalogs: self.catalogs.clone(),
            registry: self.registry.clone(),
            default_catalog: session.catalog.clone(),
            default_schema: session.schema.clone(),
        };
        let plan = analyze(query, &analyzer_ctx)?;
        let evaluator = Evaluator::new(self.registry.clone());
        optimize(plan, &self.catalogs, &evaluator, &session.optimizer)
    }

    /// Fragment an optimized plan into stages (§III).
    pub fn fragment(&self, sql: &str, session: &Session) -> Result<Vec<PlanFragment>> {
        fragment_plan(self.plan(sql, session)?)
    }

    /// EXPLAIN: the optimized plan as text.
    pub fn explain(&self, sql: &str, session: &Session) -> Result<String> {
        Ok(explain(&self.plan(sql, session)?))
    }

    /// Execute a query under a session.
    ///
    /// The query first passes admission control (§XII), then runs under a
    /// per-query slice of the engine's cluster memory pool. Queue-wait,
    /// peak-memory, and spill counters land on [`QueryResult::metrics`].
    pub fn execute_with_session(&self, sql: &str, session: &Session) -> Result<QueryResult> {
        let statement = parse_sql(sql)?;
        if let Statement::Explain(_) = statement {
            let text = self.explain(sql, session)?;
            return plan_text_result(text, CounterSet::new(), QueryInfo::empty());
        }
        let plan = self.plan(sql, session)?;
        let metrics = CounterSet::new();
        let _permit =
            self.resources.admission().admit(&session.user, session.priority, &metrics)?;
        let (result, info) = self.run_plan_traced(&plan, session, &metrics);
        if let Statement::ExplainAnalyze(_) = statement {
            // EXPLAIN ANALYZE runs the query, then reports the plan tree
            // annotated with the operator stats the trace collected, plus a
            // telemetry footer: how hot the fleet ran while this query was
            // sampled, and how many snapshots back the claim.
            result?;
            let mut text = explain_analyze(&plan, &info.operator_stats());
            let snapshots = self.telemetry.snapshots();
            let peak_busy = self.telemetry.series().get(names::TS_FLEET_BUSY_PCT).peak();
            text.push_str(&format!(
                "Telemetry  {{snapshots: {snapshots}, peak busy: {peak_busy}%}}\n"
            ));
            return plan_text_result(text, metrics, info);
        }
        let schema = plan.output_schema()?;
        Ok(QueryResult { schema, pages: result?, metrics, info })
    }

    /// Execute an optimized plan under a fresh query span, timing it against
    /// the engine's virtual clock. Returns the execution outcome alongside
    /// the [`QueryInfo`] (populated even on failure, for postmortems).
    fn run_plan_traced(
        &self,
        plan: &LogicalPlan,
        session: &Session,
        metrics: &CounterSet,
    ) -> (Result<Vec<Page>>, QueryInfo) {
        let trace = Trace::new(self.resources.clock().clone());
        let root = trace.begin(SpanKind::Query, "query", None);
        let watch = SimStopwatch::start(trace.clock());
        let (ctx, pool) = self.execution_context(session, metrics);
        let ctx = ctx.with_trace(trace.clone(), Some(root));
        let result = execute(plan, &ctx);
        metrics.add(names::MEMORY_RESERVED_PEAK, pool.peak() as u64);
        debug_assert_eq!(pool.reserved(), 0, "query left memory reserved after completion");
        trace.end(root);
        let info = QueryInfo { trace, latency: watch.elapsed(), peak_memory: pool.peak() };
        (result, info)
    }

    /// Build a per-query execution context: a fresh query slice of the
    /// shared cluster memory pool, plus a spill manager when the session
    /// allows spilling.
    fn execution_context(
        &self,
        session: &Session,
        metrics: &CounterSet,
    ) -> (ExecutionContext, Arc<QueryPool>) {
        let pool = self.resources.pool().register_query(session.memory_budget);
        let spill: Option<Arc<SpillManager>> = session
            .spill_enabled
            .then(|| Arc::new(self.resources.spill_manager(pool.query_id(), metrics.clone())));
        let mut ctx = ExecutionContext::with_registry(self.catalogs.clone(), self.registry.clone());
        ctx.metrics = metrics.clone();
        let ctx = ctx.with_resources(pool.clone(), spill);
        (ctx, pool)
    }

    /// Execute with the default session.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with_session(sql, &Session::default())
    }

    /// Execute one fragment with bound remote sources — the worker-side
    /// entry point used by the cluster runtime.
    pub fn execute_fragment(
        &self,
        fragment: &PlanFragment,
        remote_inputs: Vec<(u32, Vec<Page>)>,
        session: &Session,
    ) -> Result<Vec<Page>> {
        self.execute_fragment_with_metrics(fragment, remote_inputs, session, &CounterSet::new())
    }

    /// As [`PrestoEngine::execute_fragment`], but accounting into the
    /// caller's per-query counter set — the cluster runtime shares one set
    /// across all of a query's fragments. Fragments skip admission (the
    /// enclosing query already holds the run slot).
    pub fn execute_fragment_with_metrics(
        &self,
        fragment: &PlanFragment,
        remote_inputs: Vec<(u32, Vec<Page>)>,
        session: &Session,
        metrics: &CounterSet,
    ) -> Result<Vec<Page>> {
        // A private trace: worker-side fragment runs must not advance the
        // shared virtual clock (concurrent advances would make span
        // timestamps — and therefore trace digests — interleaving-dependent).
        self.execute_fragment_traced(
            fragment,
            remote_inputs,
            session,
            metrics,
            &Trace::default(),
            None,
        )
    }

    /// As [`PrestoEngine::execute_fragment_with_metrics`], recording the
    /// fragment's operator spans into `trace` under `parent`. Only safe from
    /// a single thread per trace clock — the cluster runtime uses this for
    /// the coordinator-side root fragment.
    pub fn execute_fragment_traced(
        &self,
        fragment: &PlanFragment,
        remote_inputs: Vec<(u32, Vec<Page>)>,
        session: &Session,
        metrics: &CounterSet,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> Result<Vec<Page>> {
        let (mut ctx, pool) = self.execution_context(session, metrics);
        for (id, pages) in remote_inputs {
            ctx.bind_remote_source(id, pages);
        }
        let ctx = ctx.with_trace(trace.clone(), parent);
        let result = execute(&fragment.plan, &ctx);
        metrics.add(names::MEMORY_RESERVED_PEAK, pool.peak() as u64);
        debug_assert_eq!(pool.reserved(), 0, "fragment left memory reserved after completion");
        result
    }

    /// Execute with automatic fallback to a batch engine on
    /// `"Insufficient Resource"` (§XII.C).
    ///
    /// "We need to resolve the problem either via: adding fault tolerance to
    /// Presto, or automatically translate failed Presto queries to other
    /// systems. Presto on Spark is a good option, which enables users
    /// writing the same Presto SQL, with automatic translation." The
    /// fallback here re-runs the *same plan* without the interactive
    /// session's memory ceiling — the defining property of the batch tier
    /// (disk-backed shuffles trade latency for capacity). Returns the result
    /// plus a flag telling the caller which tier served it.
    pub fn execute_with_batch_fallback(
        &self,
        sql: &str,
        session: &Session,
    ) -> Result<(QueryResult, bool)> {
        match self.execute_with_session(sql, session) {
            Err(PrestoError::InsufficientResources(_)) => {
                let batch_session = Session { memory_budget: None, ..session.clone() };
                let result = self.execute_with_session(sql, &batch_session)?;
                Ok((result, true))
            }
            other => Ok((other?, false)),
        }
    }

    /// Convenience: single-row, single-column query result.
    pub fn execute_scalar(&self, sql: &str) -> Result<Value> {
        let result = self.execute(sql)?;
        let rows = result.rows();
        match rows.len() {
            1 if rows[0].len() == 1 => Ok(rows[0][0].clone()),
            n => Err(PrestoError::Execution(format!("expected a single scalar, got {n} row(s)"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field};
    use presto_connectors::memory::MemoryConnector;

    fn engine_with_data() -> PrestoEngine {
        let engine = PrestoEngine::new();
        let memory = MemoryConnector::new();
        let trips_schema = Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("driver_uuid", DataType::Varchar),
                    Field::new("city_id", DataType::Bigint),
                ]),
            ),
            Field::new("fare", DataType::Double),
        ])
        .unwrap();
        let base_type = trips_schema.field_at(1).data_type.clone();
        let base = Block::from_values(
            &base_type,
            &(0..20)
                .map(|i| Value::Row(vec![Value::Varchar(format!("drv{i}")), Value::Bigint(i % 5)]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let page = Page::new(vec![
            Block::varchar(
                &(0..20)
                    .map(|i| if i % 2 == 0 { "2017-03-01" } else { "2017-03-02" })
                    .collect::<Vec<_>>(),
            ),
            base,
            Block::double((0..20).map(|i| i as f64).collect()),
        ])
        .unwrap();
        memory.create_table("default", "trips", trips_schema, vec![page]).unwrap();
        engine.register_catalog("memory", Arc::new(memory));
        engine
    }

    #[test]
    fn end_to_end_select() {
        let engine = engine_with_data();
        let result = engine
            .execute(
                "SELECT base.driver_uuid FROM trips \
                 WHERE datestr = '2017-03-02' AND base.city_id IN (1)",
            )
            .unwrap();
        assert_eq!(result.schema.fields()[0].name, "driver_uuid");
        let rows = result.rows();
        assert_eq!(rows.len(), 2); // i in {1, 11}: odd i with i%5==1
        assert_eq!(rows[0][0], Value::Varchar("drv1".into()));
        assert_eq!(rows[1][0], Value::Varchar("drv11".into()));
    }

    #[test]
    fn end_to_end_aggregation_and_order() {
        let engine = engine_with_data();
        let result = engine
            .execute(
                "SELECT datestr, count(*) AS cnt, sum(fare) AS total FROM trips \
                 GROUP BY 1 ORDER BY 1",
            )
            .unwrap();
        let rows = result.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["2017-03-01".into(), Value::Bigint(10), Value::Double(90.0)]);
        assert_eq!(rows[1][1], Value::Bigint(10));
    }

    #[test]
    fn scalar_and_expressions() {
        let engine = engine_with_data();
        assert_eq!(engine.execute_scalar("SELECT 2 + 3 * 4").unwrap(), Value::Bigint(14));
        assert_eq!(
            engine.execute_scalar("SELECT upper('presto')").unwrap(),
            Value::Varchar("PRESTO".into())
        );
        assert_eq!(
            engine
                .execute_scalar(
                    "SELECT st_contains('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))', st_point(1.0, 1.0))"
                )
                .unwrap(),
            Value::Boolean(true)
        );
        assert!(engine.execute_scalar("SELECT * FROM trips").is_err());
    }

    #[test]
    fn explain_shows_pushdowns() {
        let engine = engine_with_data();
        let result = engine
            .execute("EXPLAIN SELECT base.city_id FROM trips WHERE datestr = '2017-03-01'")
            .unwrap();
        let text = result.rows()[0][0].to_string();
        assert!(text.contains("TableScan"), "{text}");
        assert!(text.contains("predicate"), "{text}");
        assert!(text.contains("nested pruning"), "{text}");
    }

    #[test]
    fn explain_analyze_annotates_operators() {
        let engine = engine_with_data();
        let result = engine
            .execute(
                "EXPLAIN ANALYZE SELECT datestr, count(*) FROM trips \
                 GROUP BY 1 ORDER BY 1",
            )
            .unwrap();
        let text = result.rows()[0][0].to_string();
        assert!(text.contains("TableScan"), "{text}");
        assert!(text.contains("rows:"), "{text}");
        assert!(text.contains("busy:"), "{text}");
        assert!(text.contains("peak:"), "{text}");
        assert!(text.contains("spilled:"), "{text}");
        // every line of the tree carries an annotation: the whole plan ran
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            assert!(line.contains('{'), "unannotated operator: {line}");
        }
        assert!(!result.info.trace.is_empty());
    }

    #[test]
    fn query_info_records_trace_and_latency() {
        let engine = engine_with_data();
        let result = engine.execute("SELECT count(*) FROM trips").unwrap();
        let stats = result.info.operator_stats();
        assert!(!stats.is_empty());
        let scan = stats.iter().find(|s| s.name.starts_with("TableScan")).unwrap();
        assert_eq!(scan.rows_in, 20);
        assert!(result.info.latency > Duration::ZERO);
        // same query, same engine state ⇒ same trace shape
        let again = engine.execute("SELECT count(*) FROM trips").unwrap();
        assert_eq!(result.info.trace.len(), again.info.trace.len());
    }

    #[test]
    fn insufficient_resources_surfaces() {
        let engine = engine_with_data();
        let session = Session::default().with_memory_budget(16);
        let err = engine
            .execute_with_session(
                "SELECT a.fare FROM trips a JOIN trips b ON a.datestr = b.datestr",
                &session,
            )
            .unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
    }

    #[test]
    fn case_and_union_all_end_to_end() {
        let engine = engine_with_data();
        let result = engine
            .execute(
                "SELECT CASE WHEN fare >= 10.0 THEN 'high' ELSE 'low' END AS bucket, count(*)                  FROM trips GROUP BY 1 ORDER BY 1",
            )
            .unwrap();
        assert_eq!(
            result.rows(),
            vec![vec!["high".into(), Value::Bigint(10)], vec!["low".into(), Value::Bigint(10)],]
        );
        let union = engine
            .execute(
                "SELECT count(*) FROM trips WHERE datestr = '2017-03-01'                  UNION ALL SELECT count(*) FROM trips WHERE datestr = '2017-03-02'",
            )
            .unwrap();
        assert_eq!(union.rows(), vec![vec![Value::Bigint(10)], vec![Value::Bigint(10)]]);
    }

    #[test]
    fn batch_fallback_rescues_big_joins() {
        let engine = engine_with_data();
        let session = Session::default().with_memory_budget(512);
        let sql = "SELECT count(*) FROM trips a JOIN trips b ON a.datestr = b.datestr";
        // the interactive tier fails...
        assert_eq!(
            engine.execute_with_session(sql, &session).unwrap_err().code(),
            "INSUFFICIENT_RESOURCES"
        );
        // ...the fallback runs the same SQL on the batch tier
        let (result, fell_back) = engine.execute_with_batch_fallback(sql, &session).unwrap();
        assert!(fell_back);
        assert_eq!(result.rows(), vec![vec![Value::Bigint(200)]]); // 10+10 per datestr → 100+100 pairs
                                                                   // small queries stay interactive
        let (_, fell_back) =
            engine.execute_with_batch_fallback("SELECT count(*) FROM trips", &session).unwrap();
        assert!(!fell_back);
        // non-resource errors are not retried
        assert!(engine.execute_with_batch_fallback("SELECT bogus FROM trips", &session).is_err());
    }

    #[test]
    fn spill_rescues_big_joins_without_fallback() {
        let engine = engine_with_data();
        let sql = "SELECT count(*) FROM trips a JOIN trips b ON a.datestr = b.datestr";
        let session = Session::default().with_memory_budget(512);
        // same budget that fails the interactive tier...
        assert_eq!(
            engine.execute_with_session(sql, &session).unwrap_err().code(),
            "INSUFFICIENT_RESOURCES"
        );
        // ...succeeds in place once the session allows spilling
        let session = session.with_spill(true);
        let result = engine.execute_with_session(sql, &session).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(200)]]);
        assert!(result.metrics.get("spill.files") > 0, "join did not spill");
        assert!(result.metrics.get("spill.bytes_written") > 0);
        assert!(result.metrics.get("memory.reserved_peak") > 0);
    }

    #[test]
    fn fragments_for_distributed_execution() {
        let engine = engine_with_data();
        let fragments = engine.fragment("SELECT count(*) FROM trips", &Session::default()).unwrap();
        assert_eq!(fragments.len(), 2);
        // run the scan fragment, feed it to the root fragment
        let session = Session::default();
        let scan_out = engine.execute_fragment(&fragments[1], vec![], &session).unwrap();
        let root_out =
            engine.execute_fragment(&fragments[0], vec![(1, scan_out)], &session).unwrap();
        assert_eq!(root_out[0].row(0), vec![Value::Bigint(20)]);
    }
}
