//! Query sessions.
//!
//! §XII.A: "Presto has session properties to turn on broadcast join for all
//! queries in this session ... we will set Presto session property to turn
//! on broadcast join for these queries" — sessions carry per-query knobs
//! (default namespace, memory budget, optimizer rule toggles).

use presto_plan::OptimizerConfig;
use presto_resource::QueryPriority;

/// Per-query session settings.
#[derive(Debug, Clone)]
pub struct Session {
    /// Catalog for unqualified table names.
    pub catalog: String,
    /// Schema for unqualified table names.
    pub schema: String,
    /// Memory budget in bytes (`None` = unlimited). Exceeding it raises the
    /// §XII.C `"Insufficient Resource"` error.
    pub memory_budget: Option<usize>,
    /// Optimizer rule toggles (session properties).
    pub optimizer: OptimizerConfig,
    /// Session principal, for per-user admission caps.
    pub user: String,
    /// Admission lane (§XII: dashboards jump the batch queue).
    pub priority: QueryPriority,
    /// Allow blocking operators to spill to disk instead of failing with
    /// `"Insufficient Resource"` when the memory budget is hit.
    pub spill_enabled: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            catalog: "memory".into(),
            schema: "default".into(),
            memory_budget: None,
            optimizer: OptimizerConfig::default(),
            user: "user".into(),
            priority: QueryPriority::Normal,
            spill_enabled: false,
        }
    }
}

impl Session {
    /// Session defaulting to `catalog.schema`.
    pub fn new(catalog: impl Into<String>, schema: impl Into<String>) -> Session {
        Session { catalog: catalog.into(), schema: schema.into(), ..Session::default() }
    }

    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Session {
        self.memory_budget = Some(bytes);
        self
    }

    /// Override optimizer toggles.
    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> Session {
        self.optimizer = optimizer;
        self
    }

    /// Set the session principal.
    pub fn with_user(mut self, user: impl Into<String>) -> Session {
        self.user = user.into();
        self
    }

    /// Set the admission lane.
    pub fn with_priority(mut self, priority: QueryPriority) -> Session {
        self.priority = priority;
        self
    }

    /// Let blocking operators spill to disk under memory pressure.
    pub fn with_spill(mut self, enabled: bool) -> Session {
        self.spill_enabled = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = Session::new("hive", "rawdata").with_memory_budget(1 << 20);
        assert_eq!(s.catalog, "hive");
        assert_eq!(s.schema, "rawdata");
        assert_eq!(s.memory_budget, Some(1 << 20));
        assert!(s.optimizer.aggregation_pushdown);
    }
}
