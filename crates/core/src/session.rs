//! Query sessions.
//!
//! §XII.A: "Presto has session properties to turn on broadcast join for all
//! queries in this session ... we will set Presto session property to turn
//! on broadcast join for these queries" — sessions carry per-query knobs
//! (default namespace, memory budget, optimizer rule toggles).

use presto_plan::OptimizerConfig;

/// Per-query session settings.
#[derive(Debug, Clone)]
pub struct Session {
    /// Catalog for unqualified table names.
    pub catalog: String,
    /// Schema for unqualified table names.
    pub schema: String,
    /// Memory budget in bytes (`None` = unlimited). Exceeding it raises the
    /// §XII.C `"Insufficient Resource"` error.
    pub memory_budget: Option<usize>,
    /// Optimizer rule toggles (session properties).
    pub optimizer: OptimizerConfig,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            catalog: "memory".into(),
            schema: "default".into(),
            memory_budget: None,
            optimizer: OptimizerConfig::default(),
        }
    }
}

impl Session {
    /// Session defaulting to `catalog.schema`.
    pub fn new(catalog: impl Into<String>, schema: impl Into<String>) -> Session {
        Session { catalog: catalog.into(), schema: schema.into(), ..Session::default() }
    }

    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Session {
        self.memory_budget = Some(bytes);
        self
    }

    /// Override optimizer toggles.
    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> Session {
        self.optimizer = optimizer;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = Session::new("hive", "rawdata").with_memory_budget(1 << 20);
        assert_eq!(s.catalog, "hive");
        assert_eq!(s.schema, "rawdata");
        assert_eq!(s.memory_budget, Some(1 << 20));
        assert!(s.optimizer.aggregation_pushdown);
    }
}
