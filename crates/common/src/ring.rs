//! Consistent hashing over worker ids: the one ring every placement
//! decision in the workspace shares.
//!
//! §VII's affinity scheduler and the distributed cache tiers must agree
//! about who owns a key *by construction*, not by convention — the paper's
//! soft-affinity design only keeps worker-side caches warm if the
//! scheduler routes a split to the same worker the cache believes owns its
//! chunks. Both sides therefore consult a [`HashRing`] built with the same
//! `(seed, vnodes)` parameters over the same worker set; there is no second
//! hash path to drift out of sync.
//!
//! The ring is the classic virtual-node construction: each worker
//! contributes `vnodes` points on a `u64` circle, a key is hashed to a
//! point, and its owner is the worker whose next point clockwise covers it.
//! Properties the caches and the elasticity machinery rely on:
//!
//! - **Deterministic**: point positions are pure functions of
//!   `(seed, worker, replica)` via [`crate::rng::mix64`], and key positions
//!   of `(seed, key bytes)` via the workspace FNV fold — same inputs, same
//!   ring, on every host and in every same-seed replay.
//! - **Order-independent**: membership is a set; inserting workers in any
//!   order builds bit-identical state (point collisions, should they ever
//!   happen, keep the smaller worker id).
//! - **Minimal remap**: removing one worker only reassigns the keys that
//!   worker owned — everything else keeps its owner, which is exactly the
//!   property `tests/cache_distribution.rs` pins with a proptest.

use std::collections::{BTreeMap, BTreeSet};

use crate::metrics::Fnv;
use crate::rng::mix64;

/// Virtual nodes per worker when callers have no reason to choose: enough
/// that a four-worker fleet stays within a few percent of even shares,
/// small enough that a 32-worker ring is ~2k points.
pub const DEFAULT_VNODES: u32 = 64;

/// Ring seed used when callers have no reason to choose. Every consumer
/// that must agree on ownership (scan scheduler, distributed cache,
/// fragment-cache migration) uses this default unless its config overrides
/// both sides together.
pub const DEFAULT_RING_SEED: u64 = 0x5EED_0F1E_1D5E;

/// A seeded, deterministic, virtual-node consistent-hash ring over worker
/// ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    /// point on the circle → owning worker.
    points: BTreeMap<u64, u32>,
    workers: BTreeSet<u32>,
}

impl HashRing {
    /// An empty ring. `vnodes` is clamped to at least 1.
    pub fn new(seed: u64, vnodes: u32) -> HashRing {
        HashRing { seed, vnodes: vnodes.max(1), points: BTreeMap::new(), workers: BTreeSet::new() }
    }

    /// A ring pre-populated with `workers` (duplicates are fine).
    pub fn with_workers(
        seed: u64,
        vnodes: u32,
        workers: impl IntoIterator<Item = u32>,
    ) -> HashRing {
        let mut ring = HashRing::new(seed, vnodes);
        for w in workers {
            ring.insert(w);
        }
        ring
    }

    /// [`HashRing::with_workers`] under the workspace defaults
    /// ([`DEFAULT_RING_SEED`], [`DEFAULT_VNODES`]) — what every consumer
    /// that has no config of its own should build.
    pub fn with_workers_default(workers: impl IntoIterator<Item = u32>) -> HashRing {
        HashRing::with_workers(DEFAULT_RING_SEED, DEFAULT_VNODES, workers)
    }

    /// The position of one of `worker`'s virtual nodes on the circle.
    fn vnode_point(&self, worker: u32, replica: u32) -> u64 {
        mix64(self.seed ^ mix64((u64::from(worker) << 32) | u64::from(replica)))
    }

    /// The position a key hashes to on the circle.
    pub fn key_point(&self, key: &str) -> u64 {
        let mut h = Fnv::new();
        h.write_str(key);
        mix64(self.seed ^ h.finish())
    }

    /// Add a worker. Returns false if it was already on the ring.
    pub fn insert(&mut self, worker: u32) -> bool {
        if !self.workers.insert(worker) {
            return false;
        }
        for replica in 0..self.vnodes {
            let point = self.vnode_point(worker, replica);
            // On the (astronomically unlikely) collision, the smaller id
            // keeps the point — a rule of the *values*, not the insertion
            // order, so membership order never changes the ring.
            self.points
                .entry(point)
                .and_modify(|w| {
                    if worker < *w {
                        *w = worker;
                    }
                })
                .or_insert(worker);
        }
        true
    }

    /// Remove a worker. Returns false if it was not on the ring.
    pub fn remove(&mut self, worker: u32) -> bool {
        if !self.workers.remove(&worker) {
            return false;
        }
        self.points.retain(|_, w| *w != worker);
        // Re-insert points a collision may have suppressed: rebuild each
        // survivor's vnode set (idempotent for existing points).
        let survivors: Vec<u32> = self.workers.iter().copied().collect();
        for w in survivors {
            for replica in 0..self.vnodes {
                let point = self.vnode_point(w, replica);
                self.points
                    .entry(point)
                    .and_modify(|cur| {
                        if w < *cur {
                            *cur = w;
                        }
                    })
                    .or_insert(w);
            }
        }
        true
    }

    /// Is the worker on the ring?
    pub fn contains(&self, worker: u32) -> bool {
        self.workers.contains(&worker)
    }

    /// Workers on the ring, ascending.
    pub fn workers(&self) -> Vec<u32> {
        self.workers.iter().copied().collect()
    }

    /// Number of workers on the ring.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are on the ring.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker that owns `key`: the first virtual node at or clockwise
    /// of the key's point. `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<u32> {
        let point = self.key_point(key);
        self.points.range(point..).next().or_else(|| self.points.iter().next()).map(|(_, &w)| w)
    }

    /// Up to `n` *distinct* workers in ring order starting at the key's
    /// owner — the owner first, then each successor clockwise. This is the
    /// walk both second-choice replication (hot keys spill to
    /// `successors(key, 2)[1]`) and decommission migration (entries move to
    /// `successors(key, 1)` on the survivor ring) take.
    pub fn successors(&self, key: &str, n: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(n.min(self.workers.len()));
        if n == 0 || self.points.is_empty() {
            return out;
        }
        let point = self.key_point(key);
        for (_, &w) in self.points.range(point..).chain(self.points.range(..point)) {
            if !out.contains(&w) {
                out.push(w);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// Canonical FNV fold of the ring state (seed, vnodes, membership) —
    /// bit-identical across same-seed runs, insertion-order independent.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.seed);
        h.write(u64::from(self.vnodes));
        h.write(self.workers.len() as u64);
        for &w in &self.workers {
            h.write(u64::from(w));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/warehouse/t/part-{i}")).collect()
    }

    #[test]
    fn owner_is_deterministic_and_membership_order_independent() {
        let a = HashRing::with_workers(7, DEFAULT_VNODES, [0, 1, 2, 3]);
        let b = HashRing::with_workers(7, DEFAULT_VNODES, [3, 1, 0, 2, 1]);
        assert_eq!(a, b);
        for k in keys(200) {
            assert_eq!(a.owner(&k), b.owner(&k));
            assert!(a.owner(&k).is_some());
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let ring = HashRing::with_workers(DEFAULT_RING_SEED, DEFAULT_VNODES, [0, 1, 2, 3]);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[ring.owner(&k).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 600, "expected a rough quarter of 4000, got {counts:?}");
        }
    }

    #[test]
    fn removing_a_worker_only_remaps_its_own_keys() {
        let full = HashRing::with_workers(11, DEFAULT_VNODES, 0..8);
        let mut without = full.clone();
        without.remove(5);
        for k in keys(2000) {
            let before = full.owner(&k).unwrap();
            if before != 5 {
                assert_eq!(without.owner(&k), Some(before), "{k} moved without cause");
            } else {
                assert_ne!(without.owner(&k), Some(5));
            }
        }
    }

    #[test]
    fn insert_after_remove_restores_the_ring() {
        let base = HashRing::with_workers(3, 16, 0..6);
        let mut churned = base.clone();
        churned.remove(2);
        churned.remove(4);
        churned.insert(4);
        churned.insert(2);
        assert_eq!(base, churned);
        assert_eq!(base.digest(), churned.digest());
    }

    #[test]
    fn successors_start_at_the_owner_and_are_distinct() {
        let ring = HashRing::with_workers(19, DEFAULT_VNODES, 0..6);
        for k in keys(300) {
            let succ = ring.successors(&k, 3);
            assert_eq!(succ.len(), 3);
            assert_eq!(succ[0], ring.owner(&k).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "successors must be distinct: {succ:?}");
        }
    }

    #[test]
    fn successor_walk_matches_the_post_removal_owner() {
        // the second successor *is* the owner once the first is removed —
        // the identity decommission migration relies on
        let ring = HashRing::with_workers(23, DEFAULT_VNODES, 0..5);
        for k in keys(500) {
            let succ = ring.successors(&k, 2);
            let mut without = ring.clone();
            without.remove(succ[0]);
            assert_eq!(without.owner(&k), Some(succ[1]));
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(1, 8);
        assert_eq!(ring.owner("/x"), None);
        assert!(ring.successors("/x", 2).is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn different_seeds_disagree() {
        let a = HashRing::with_workers(1, DEFAULT_VNODES, 0..8);
        let b = HashRing::with_workers(2, DEFAULT_VNODES, 0..8);
        let moved = keys(1000).iter().filter(|k| a.owner(k) != b.owner(k)).count();
        assert!(moved > 500, "seeds must shuffle ownership, moved {moved}");
    }
}
