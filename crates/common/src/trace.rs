//! Deterministic, virtual-time query tracing.
//!
//! Every query carries a [`Trace`]: a tree of [`Span`]s (query → stage →
//! task/split → operator) stamped exclusively from the shared virtual
//! [`SimClock`]. Because the lint wall-clock rule bans real time outside
//! `presto-common::clock`, two runs with the same seed produce the same
//! span tree with the same timestamps, so [`Trace::digest`] is bit-identical
//! across runs — the chaos suite diffs digests to prove deterministic
//! recovery, and `EXPLAIN ANALYZE` renders the operator spans as per-node
//! runtime stats.
//!
//! Span timestamps are [`Duration`]s since virtual time zero. Children are
//! canonicalized by `(start, name)` rather than creation order, so task
//! spans opened concurrently by worker threads hash identically regardless
//! of thread interleaving.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::SimClock;

/// Identifier of a span within one [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Raw index of the span in its trace.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What level of the execution hierarchy a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One end-to-end query.
    Query,
    /// One plan fragment scheduled on the cluster.
    Stage,
    /// One task (split attempt) on a worker.
    Task,
    /// One operator of the local executor.
    Operator,
    /// One speculative-execution decision: a duplicate attempt launched for
    /// a straggling split.
    Speculate,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Stage => "stage",
            SpanKind::Task => "task",
            SpanKind::Operator => "operator",
            SpanKind::Speculate => "speculate",
        }
    }
}

/// One timed node in the trace tree.
#[derive(Debug, Clone)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Parent span, `None` for the root query span.
    pub parent: Option<SpanId>,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Human-readable name (operator label, `split[3]`, …).
    pub name: String,
    /// Virtual time the span opened.
    pub start: Duration,
    /// Virtual time the span closed; `None` while still open.
    pub end: Option<Duration>,
    /// Numeric attributes (rows_out, spill_bytes, …), sorted by key.
    pub attrs: BTreeMap<String, u64>,
}

impl Span {
    /// Span duration; zero while still open.
    pub fn duration(&self) -> Duration {
        self.end.map(|e| e.saturating_sub(self.start)).unwrap_or(Duration::ZERO)
    }

    /// Attribute value, 0 when absent.
    pub fn attr(&self, key: &str) -> u64 {
        self.attrs.get(key).copied().unwrap_or(0)
    }
}

/// Runtime statistics of one executed operator, extracted from its span.
///
/// This lives in `presto-common` (not the exec crate) so the planner's
/// `EXPLAIN ANALYZE` renderer can consume it without violating the crate
/// layering DAG.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    /// Operator label as produced by the plan node (e.g. `InnerJoin[keys=1]`).
    pub name: String,
    /// Rows consumed from children (sum of their output rows).
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Bytes produced (in-memory page size).
    pub bytes_out: u64,
    /// Pages produced.
    pub pages_out: u64,
    /// Virtual time spent in this operator, excluding child operators.
    pub busy: Duration,
    /// Growth of the query's peak memory reservation while this operator ran.
    pub peak_memory: u64,
    /// Spill bytes written while this operator ran.
    pub spill_bytes: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<Span>,
}

/// A shared, append-only collection of spans for one query.
///
/// Cloning shares the underlying spans; worker threads clone the trace and
/// record task spans concurrently.
#[derive(Debug, Clone)]
pub struct Trace {
    clock: SimClock,
    inner: Arc<Mutex<TraceInner>>,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new(SimClock::new())
    }
}

impl Trace {
    /// New trace stamping spans from `clock`.
    pub fn new(clock: SimClock) -> Trace {
        Trace { clock, inner: Arc::new(Mutex::new(TraceInner::default())) }
    }

    /// The virtual clock this trace stamps spans from.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Open a span; returns its id for [`Trace::end`] and attribute calls.
    pub fn begin(&self, kind: SpanKind, name: impl Into<String>, parent: Option<SpanId>) -> SpanId {
        let start = self.clock.now();
        let mut inner = self.inner.lock();
        let id = SpanId(inner.spans.len() as u64);
        inner.spans.push(Span {
            id,
            parent,
            kind,
            name: name.into(),
            start,
            end: None,
            attrs: BTreeMap::new(),
        });
        id
    }

    /// Close a span at the current virtual time.
    pub fn end(&self, id: SpanId) {
        let now = self.clock.now();
        if let Some(span) = self.inner.lock().spans.get_mut(id.index()) {
            span.end = Some(now);
        }
    }

    /// Set attribute `key` on span `id` (overwrites).
    pub fn set_attr(&self, id: SpanId, key: &str, value: u64) {
        if let Some(span) = self.inner.lock().spans.get_mut(id.index()) {
            span.attrs.insert(key.to_string(), value);
        }
    }

    /// Add `value` to attribute `key` on span `id`.
    pub fn add_attr(&self, id: SpanId, key: &str, value: u64) {
        if let Some(span) = self.inner.lock().spans.get_mut(id.index()) {
            *span.attrs.entry(key.to_string()).or_insert(0) += value;
        }
    }

    /// Attribute `key` of span `id`, if set.
    pub fn attr(&self, id: SpanId, key: &str) -> Option<u64> {
        self.inner.lock().spans.get(id.index()).and_then(|s| s.attrs.get(key).copied())
    }

    /// Sum of attribute `key` over the direct children of `parent`.
    pub fn child_attr_sum(&self, parent: SpanId, key: &str) -> u64 {
        self.inner
            .lock()
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .map(|s| s.attrs.get(key).copied().unwrap_or(0))
            .sum()
    }

    /// Snapshot of all spans in creation order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().spans.is_empty()
    }

    /// Operator spans in creation order, summarized as [`OperatorStats`].
    ///
    /// The local executor runs single-threaded, so creation order is the
    /// depth-first pre-order of the plan tree — the same order a plan walk
    /// visits nodes. Busy time is the span's duration minus the durations
    /// of its direct operator children.
    pub fn operator_stats(&self) -> Vec<OperatorStats> {
        let spans = self.spans();
        let mut child_time: BTreeMap<SpanId, Duration> = BTreeMap::new();
        for span in &spans {
            if span.kind != SpanKind::Operator {
                continue;
            }
            if let Some(parent) = span.parent {
                *child_time.entry(parent).or_default() += span.duration();
            }
        }
        spans
            .iter()
            .filter(|s| s.kind == SpanKind::Operator)
            .map(|s| {
                let nested = child_time.get(&s.id).copied().unwrap_or(Duration::ZERO);
                OperatorStats {
                    name: s.name.clone(),
                    rows_in: s.attr("rows_in"),
                    rows_out: s.attr("rows_out"),
                    bytes_out: s.attr("bytes_out"),
                    pages_out: s.attr("pages_out"),
                    busy: s.duration().saturating_sub(nested),
                    peak_memory: s.attr("peak_memory"),
                    spill_bytes: s.attr("spill_bytes"),
                }
            })
            .collect()
    }

    /// Children of each span, canonically ordered by `(start, name)`.
    ///
    /// Creation order is thread-interleaving dependent for concurrently
    /// opened task spans; `(start, name)` is not, because virtual timestamps
    /// and names are both seed-deterministic.
    fn canonical_children(spans: &[Span]) -> BTreeMap<Option<SpanId>, Vec<usize>> {
        let mut children: BTreeMap<Option<SpanId>, Vec<usize>> = BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            children.entry(span.parent).or_default().push(i);
        }
        for list in children.values_mut() {
            list.sort_by(|&a, &b| {
                (spans[a].start, &spans[a].name).cmp(&(spans[b].start, &spans[b].name))
            });
        }
        children
    }

    fn canonical_lines(&self) -> Vec<String> {
        let spans = self.spans();
        let children = Trace::canonical_children(&spans);
        let mut lines = Vec::with_capacity(spans.len());
        let mut stack: Vec<(usize, usize)> = children
            .get(&None)
            .map(|roots| roots.iter().rev().map(|&i| (i, 0)).collect())
            .unwrap_or_default();
        while let Some((i, depth)) = stack.pop() {
            let span = &spans[i];
            let mut line = format!(
                "{depth}|{}|{}|{}|{}",
                span.kind.label(),
                span.name,
                span.start.as_nanos(),
                span.duration().as_nanos()
            );
            for (k, v) in &span.attrs {
                let _ = write!(line, "|{k}={v}");
            }
            lines.push(line);
            if let Some(kids) = children.get(&Some(span.id)) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        lines
    }

    /// Deterministic digest of the canonical span tree (FNV-1a).
    ///
    /// Same seed ⇒ same spans ⇒ same digest, independent of thread timing.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for line in self.canonical_lines() {
            for byte in line.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Human-readable indented rendering of the span tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.canonical_lines() {
            let mut parts = line.splitn(2, '|');
            let depth: usize = parts.next().and_then(|d| d.parse().ok()).unwrap_or(0);
            let rest = parts.next().unwrap_or("");
            let mut fields = rest.split('|');
            let kind = fields.next().unwrap_or("");
            let name = fields.next().unwrap_or("");
            let start: u128 = fields.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let dur: u128 = fields.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let _ = write!(out, "{:indent$}{kind} {name}", "", indent = depth * 2);
            let _ = write!(out, "  [start={}µs, {}µs", start / 1000, dur / 1000);
            for attr in fields {
                let _ = write!(out, ", {attr}");
            }
            out.push_str("]\n");
        }
        out
    }

    /// Machine-readable JSON event log: an array of span objects in
    /// canonical order. Hand-rolled (no serde in this workspace).
    pub fn to_json(&self) -> String {
        let spans = self.spans();
        let children = Trace::canonical_children(&spans);
        let mut order = Vec::with_capacity(spans.len());
        let mut stack: Vec<usize> =
            children.get(&None).map(|r| r.iter().rev().copied().collect()).unwrap_or_default();
        while let Some(i) = stack.pop() {
            order.push(i);
            if let Some(kids) = children.get(&Some(spans[i].id)) {
                stack.extend(kids.iter().rev());
            }
        }
        let mut out = String::from("[");
        for (n, &i) in order.iter().enumerate() {
            let span = &spans[i];
            if n > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"name\":\"{}\",\"parent\":{},\"start_ns\":{},\"duration_ns\":{},\"attrs\":{{",
                span.kind.label(),
                json_escape(&span.name),
                span.parent.map(|p| p.0 as i64).unwrap_or(-1),
                span.start.as_nanos(),
                span.duration().as_nanos()
            );
            for (k, (key, value)) in span.attrs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(key), value);
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let clock = SimClock::new();
        let trace = Trace::new(clock.clone());
        let q = trace.begin(SpanKind::Query, "q1", None);
        clock.advance_micros(10);
        let op = trace.begin(SpanKind::Operator, "TableScan[t]", Some(q));
        clock.advance_micros(40);
        trace.set_attr(op, "rows_out", 100);
        trace.end(op);
        clock.advance_micros(5);
        trace.end(q);
        trace
    }

    #[test]
    fn spans_nest_and_time_with_virtual_clock() {
        let trace = sample_trace();
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Query);
        assert_eq!(spans[0].duration(), Duration::from_micros(55));
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].attr("rows_out"), 100);
    }

    #[test]
    fn same_construction_same_digest() {
        assert_eq!(sample_trace().digest(), sample_trace().digest());
    }

    #[test]
    fn digest_ignores_creation_order_of_simultaneous_children() {
        let build = |flip: bool| {
            let clock = SimClock::new();
            let trace = Trace::new(clock.clone());
            let q = trace.begin(SpanKind::Query, "q", None);
            clock.advance_micros(1);
            // Two task spans at the same virtual instant, created in
            // opposite orders — models worker-thread interleaving.
            let names = if flip { ["split[1]", "split[0]"] } else { ["split[0]", "split[1]"] };
            for name in names {
                let t = trace.begin(SpanKind::Task, name, Some(q));
                trace.end(t);
            }
            trace.end(q);
            trace.digest()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn digest_sees_attribute_changes() {
        let a = sample_trace();
        let b = sample_trace();
        let op = b.spans()[1].id;
        b.set_attr(op, "rows_out", 101);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn operator_stats_subtract_child_busy_time() {
        let clock = SimClock::new();
        let trace = Trace::new(clock.clone());
        let parent = trace.begin(SpanKind::Operator, "Filter", None);
        clock.advance_micros(10);
        let child = trace.begin(SpanKind::Operator, "TableScan", Some(parent));
        clock.advance_micros(30);
        trace.end(child);
        clock.advance_micros(5);
        trace.end(parent);
        let stats = trace.operator_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "Filter");
        assert_eq!(stats[0].busy, Duration::from_micros(15));
        assert_eq!(stats[1].busy, Duration::from_micros(30));
    }

    #[test]
    fn render_and_json_contain_span_names() {
        let trace = sample_trace();
        let rendered = trace.render();
        assert!(rendered.contains("TableScan[t]"));
        let json = trace.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"rows_out\":100"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
