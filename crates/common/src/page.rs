//! Pages — the unit of data flow between operators, connectors and stages.
//!
//! §IV.A: "Hadoop data and MySQL data are streamed in Presto pages into the
//! Presto engine." A [`Page`] is a batch of rows in columnar form: one
//! [`Block`] per output column, all the same length.

use crate::block::Block;
use crate::error::{PrestoError, Result};
use crate::value::Value;

/// A horizontal batch of rows stored column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    blocks: Vec<Block>,
    positions: usize,
}

impl Page {
    /// Build a page from blocks; all blocks must have the same length.
    pub fn new(blocks: Vec<Block>) -> Result<Page> {
        let positions = blocks.first().map(Block::len).unwrap_or(0);
        for b in &blocks {
            if b.len() != positions {
                return Err(PrestoError::Internal(format!(
                    "page blocks disagree on row count: {} vs {}",
                    b.len(),
                    positions
                )));
            }
        }
        Ok(Page { blocks, positions })
    }

    /// A page with row count but no columns (used by `SELECT count(*)` scans
    /// that read no columns at all).
    pub fn zero_column(positions: usize) -> Page {
        Page { blocks: Vec::new(), positions }
    }

    /// An empty page with no rows and no columns.
    pub fn empty() -> Page {
        Page { blocks: Vec::new(), positions: 0 }
    }

    /// Number of rows.
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// True when the page has no rows.
    pub fn is_empty(&self) -> bool {
        self.positions == 0
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.blocks.len()
    }

    /// The column blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// One column by index.
    pub fn block(&self, i: usize) -> &Block {
        &self.blocks[i]
    }

    /// Consume the page, returning its blocks.
    pub fn into_blocks(self) -> Vec<Block> {
        self.blocks
    }

    /// Materialize row `i` as scalar values (slow path).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.blocks.iter().map(|b| b.value(i)).collect()
    }

    /// Materialize all rows (slow path, for tests and result sets).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.positions).map(|i| self.row(i)).collect()
    }

    /// Keep rows where `selection` is true.
    pub fn filter(&self, selection: &[bool]) -> Page {
        debug_assert_eq!(selection.len(), self.positions);
        let kept = selection.iter().filter(|&&b| b).count();
        if self.blocks.is_empty() {
            return Page::zero_column(kept);
        }
        let blocks = self.blocks.iter().map(|b| b.filter(selection)).collect();
        Page { blocks, positions: kept }
    }

    /// Gather the given row indices.
    pub fn take(&self, indices: &[usize]) -> Page {
        if self.blocks.is_empty() {
            return Page::zero_column(indices.len());
        }
        let blocks = self.blocks.iter().map(|b| b.take(indices)).collect();
        Page { blocks, positions: indices.len() }
    }

    /// Contiguous row range `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Page {
        if self.blocks.is_empty() {
            return Page::zero_column(len);
        }
        let blocks = self.blocks.iter().map(|b| b.slice(offset, len)).collect();
        Page { blocks, positions: len }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, columns: &[usize]) -> Page {
        let blocks = columns.iter().map(|&i| self.blocks[i].clone()).collect();
        Page { blocks, positions: self.positions }
    }

    /// Append a column.
    pub fn with_block(mut self, block: Block) -> Result<Page> {
        if block.len() != self.positions {
            return Err(PrestoError::Internal(format!(
                "appended block has {} rows, page has {}",
                block.len(),
                self.positions
            )));
        }
        self.blocks.push(block);
        Ok(self)
    }

    /// Vertically concatenate pages with identical column layouts.
    pub fn concat(pages: &[Page]) -> Result<Page> {
        let first =
            pages.first().ok_or_else(|| PrestoError::Internal("concat of zero pages".into()))?;
        let ncols = first.column_count();
        if pages.iter().any(|p| p.column_count() != ncols) {
            return Err(PrestoError::Internal("concat of pages with different widths".into()));
        }
        if ncols == 0 {
            return Ok(Page::zero_column(pages.iter().map(Page::positions).sum()));
        }
        let mut blocks = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let cols: Vec<Block> = pages.iter().map(|p| p.blocks[c].clone()).collect();
            blocks.push(Block::concat(&cols)?);
        }
        Page::new(blocks)
    }

    /// Approximate heap size, for memory accounting.
    pub fn memory_size(&self) -> usize {
        self.blocks.iter().map(Block::memory_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new(vec![Block::bigint(vec![1, 2, 3]), Block::varchar(&["a", "b", "c"])]).unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        assert!(Page::new(vec![Block::bigint(vec![1]), Block::bigint(vec![1, 2])]).is_err());
        assert_eq!(page().positions(), 3);
        assert_eq!(page().column_count(), 2);
    }

    #[test]
    fn filter_take_slice_project() {
        let p = page();
        assert_eq!(p.filter(&[true, false, true]).rows().len(), 2);
        assert_eq!(p.take(&[2, 2]).row(0), vec![3i64.into(), "c".into()]);
        assert_eq!(p.slice(1, 1).row(0), vec![2i64.into(), "b".into()]);
        let projected = p.project(&[1]);
        assert_eq!(projected.column_count(), 1);
        assert_eq!(projected.row(0), vec!["a".into()]);
    }

    #[test]
    fn zero_column_pages_carry_row_counts() {
        let p = Page::zero_column(5);
        assert_eq!(p.positions(), 5);
        assert_eq!(p.filter(&[true, true, false, false, false]).positions(), 2);
        let joined = Page::concat(&[Page::zero_column(2), Page::zero_column(3)]).unwrap();
        assert_eq!(joined.positions(), 5);
    }

    #[test]
    fn concat_stacks_pages() {
        let joined = Page::concat(&[page(), page()]).unwrap();
        assert_eq!(joined.positions(), 6);
        assert_eq!(joined.row(5), vec![3i64.into(), "c".into()]);
        let bad = Page::concat(&[page(), Page::zero_column(1)]);
        assert!(bad.is_err());
    }

    #[test]
    fn with_block_validates_length() {
        let p = page();
        assert!(p.clone().with_block(Block::double(vec![1.0])).is_err());
        let p2 = p.with_block(Block::double(vec![0.1, 0.2, 0.3])).unwrap();
        assert_eq!(p2.column_count(), 3);
    }
}
