//! Columnar blocks — the in-memory vectorized representation.
//!
//! §III: "Internally, Presto is a vectorized engine, which processes a bunch
//! of in memory encoded column values vectorized, instead of row by row."
//! A [`Block`] is one column's worth of values for a batch of rows. Nested
//! types are *columnar all the way down*: a `ROW` block holds one child block
//! per field, an `ARRAY` block holds offsets plus a flattened element block —
//! the same shape the new Parquet reader (§V.E) builds directly from disk.
//!
//! [`Block::Dictionary`] is the encoding dictionary pushdown (§V.G) and lazy
//! dictionary-preserving reads produce.

use crate::error::{PrestoError, Result};
use crate::types::{DataType, Field};
use crate::value::Value;

/// Validity mask: `true` means NULL at that position. `None` means no nulls.
pub type NullMask = Option<Vec<bool>>;

/// One column of a batch of rows, in columnar layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// BOOLEAN column.
    Boolean {
        /// Values; positions where `nulls` is true hold an arbitrary value.
        values: Vec<bool>,
        /// Null mask.
        nulls: NullMask,
    },
    /// BIGINT column.
    Bigint {
        /// Values.
        values: Vec<i64>,
        /// Null mask.
        nulls: NullMask,
    },
    /// INTEGER column.
    Integer {
        /// Values.
        values: Vec<i32>,
        /// Null mask.
        nulls: NullMask,
    },
    /// DOUBLE column.
    Double {
        /// Values.
        values: Vec<f64>,
        /// Null mask.
        nulls: NullMask,
    },
    /// VARCHAR column stored as flat bytes + offsets (not `Vec<String>`),
    /// which is what makes string columns cheap to scan and slice.
    Varchar {
        /// `offsets.len() == row_count + 1`; row `i` is
        /// `bytes[offsets[i]..offsets[i+1]]`.
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payload.
        bytes: Vec<u8>,
        /// Null mask.
        nulls: NullMask,
    },
    /// DATE column (days since epoch).
    Date {
        /// Values.
        values: Vec<i32>,
        /// Null mask.
        nulls: NullMask,
    },
    /// TIMESTAMP column (millis since epoch).
    Timestamp {
        /// Values.
        values: Vec<i64>,
        /// Null mask.
        nulls: NullMask,
    },
    /// ARRAY column: offsets into a flattened element block.
    Array {
        /// Element type (needed when the block is empty).
        element_type: DataType,
        /// `offsets.len() == row_count + 1`.
        offsets: Vec<u32>,
        /// Flattened elements of every row.
        elements: Box<Block>,
        /// Null mask.
        nulls: NullMask,
    },
    /// MAP column: offsets into flattened key/value blocks.
    Map {
        /// Key type.
        key_type: DataType,
        /// Value type.
        value_type: DataType,
        /// `offsets.len() == row_count + 1`.
        offsets: Vec<u32>,
        /// Flattened keys.
        keys: Box<Block>,
        /// Flattened values.
        values: Box<Block>,
        /// Null mask.
        nulls: NullMask,
    },
    /// ROW (struct) column: one child block per field, all the same length.
    Row {
        /// Field definitions.
        fields: Vec<Field>,
        /// Child blocks, parallel to `fields`.
        children: Vec<Block>,
        /// Row count (kept explicitly so empty-field rows still have a length).
        len: usize,
        /// Null mask for the struct itself.
        nulls: NullMask,
    },
    /// Dictionary-encoded column: positions are ids into a (usually small)
    /// dictionary block. NULLs live in the dictionary.
    Dictionary {
        /// The distinct values.
        dictionary: Box<Block>,
        /// One id per row.
        ids: Vec<u32>,
    },
}

impl Block {
    // ---------------------------------------------------------------- ctors

    /// Non-null BIGINT block.
    pub fn bigint(values: Vec<i64>) -> Block {
        Block::Bigint { values, nulls: None }
    }

    /// Non-null INTEGER block.
    pub fn integer(values: Vec<i32>) -> Block {
        Block::Integer { values, nulls: None }
    }

    /// Non-null DOUBLE block.
    pub fn double(values: Vec<f64>) -> Block {
        Block::Double { values, nulls: None }
    }

    /// Non-null BOOLEAN block.
    pub fn boolean(values: Vec<bool>) -> Block {
        Block::Boolean { values, nulls: None }
    }

    /// Non-null VARCHAR block from string slices.
    pub fn varchar<S: AsRef<str>>(values: &[S]) -> Block {
        let mut offsets = Vec::with_capacity(values.len() + 1);
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for v in values {
            bytes.extend_from_slice(v.as_ref().as_bytes());
            offsets.push(bytes.len() as u32);
        }
        Block::Varchar { offsets, bytes, nulls: None }
    }

    /// An all-NULL block of the given type and length.
    pub fn nulls(data_type: &DataType, len: usize) -> Block {
        Self::from_values(data_type, &vec![Value::Null; len])
            .expect("null block construction cannot fail")
    }

    /// Build a block of `data_type` from scalar values. This is the generic
    /// (slow-path) builder used by literals, the legacy row-based reader, and
    /// tests; hot paths construct typed blocks directly.
    pub fn from_values(data_type: &DataType, values: &[Value]) -> Result<Block> {
        fn mask(values: &[Value]) -> NullMask {
            if values.iter().any(Value::is_null) {
                Some(values.iter().map(Value::is_null).collect())
            } else {
                None
            }
        }
        let wrong = |v: &Value| {
            PrestoError::Internal(format!("value {v} does not match block type {data_type}"))
        };
        match data_type {
            DataType::Boolean => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Boolean(b) => *b,
                        Value::Null => false,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Boolean { values: out, nulls: mask(values) })
            }
            DataType::Bigint => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Bigint(x) => *x,
                        Value::Integer(x) => *x as i64,
                        Value::Null => 0,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Bigint { values: out, nulls: mask(values) })
            }
            DataType::Integer => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Integer(x) => *x,
                        Value::Null => 0,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Integer { values: out, nulls: mask(values) })
            }
            DataType::Double => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Double(x) => *x,
                        Value::Bigint(x) => *x as f64,
                        Value::Integer(x) => *x as f64,
                        Value::Null => 0.0,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Double { values: out, nulls: mask(values) })
            }
            DataType::Varchar => {
                let mut offsets = Vec::with_capacity(values.len() + 1);
                let mut bytes = Vec::new();
                offsets.push(0u32);
                for v in values {
                    match v {
                        Value::Varchar(s) => bytes.extend_from_slice(s.as_bytes()),
                        Value::Null => {}
                        other => return Err(wrong(other)),
                    }
                    offsets.push(bytes.len() as u32);
                }
                Ok(Block::Varchar { offsets, bytes, nulls: mask(values) })
            }
            DataType::Date => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Date(x) => *x,
                        Value::Null => 0,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Date { values: out, nulls: mask(values) })
            }
            DataType::Timestamp => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Timestamp(x) => *x,
                        Value::Null => 0,
                        other => return Err(wrong(other)),
                    });
                }
                Ok(Block::Timestamp { values: out, nulls: mask(values) })
            }
            DataType::Array(elem) => {
                let mut offsets = Vec::with_capacity(values.len() + 1);
                let mut flat = Vec::new();
                offsets.push(0u32);
                for v in values {
                    match v {
                        Value::Array(items) => flat.extend_from_slice(items),
                        Value::Null => {}
                        other => return Err(wrong(other)),
                    }
                    offsets.push(flat.len() as u32);
                }
                Ok(Block::Array {
                    element_type: (**elem).clone(),
                    offsets,
                    elements: Box::new(Block::from_values(elem, &flat)?),
                    nulls: mask(values),
                })
            }
            DataType::Map(kt, vt) => {
                let mut offsets = Vec::with_capacity(values.len() + 1);
                let mut flat_k = Vec::new();
                let mut flat_v = Vec::new();
                offsets.push(0u32);
                for v in values {
                    match v {
                        Value::Map(entries) => {
                            for (k, val) in entries {
                                flat_k.push(k.clone());
                                flat_v.push(val.clone());
                            }
                        }
                        Value::Null => {}
                        other => return Err(wrong(other)),
                    }
                    offsets.push(flat_k.len() as u32);
                }
                Ok(Block::Map {
                    key_type: (**kt).clone(),
                    value_type: (**vt).clone(),
                    offsets,
                    keys: Box::new(Block::from_values(kt, &flat_k)?),
                    values: Box::new(Block::from_values(vt, &flat_v)?),
                    nulls: mask(values),
                })
            }
            DataType::Row(fields) => {
                let mut columns: Vec<Vec<Value>> =
                    fields.iter().map(|_| Vec::with_capacity(values.len())).collect();
                for v in values {
                    match v {
                        Value::Row(items) => {
                            if items.len() != fields.len() {
                                return Err(PrestoError::Internal(format!(
                                    "row value has {} fields, type has {}",
                                    items.len(),
                                    fields.len()
                                )));
                            }
                            for (col, item) in columns.iter_mut().zip(items.iter()) {
                                col.push(item.clone());
                            }
                        }
                        // A NULL struct contributes NULL to every child column.
                        Value::Null => {
                            for col in columns.iter_mut() {
                                col.push(Value::Null);
                            }
                        }
                        other => return Err(wrong(other)),
                    }
                }
                let children = fields
                    .iter()
                    .zip(columns.iter())
                    .map(|(f, col)| Block::from_values(&f.data_type, col))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Block::Row {
                    fields: fields.clone(),
                    children,
                    len: values.len(),
                    nulls: mask(values),
                })
            }
        }
    }

    // ------------------------------------------------------------ accessors

    /// Number of rows in this block.
    pub fn len(&self) -> usize {
        match self {
            Block::Boolean { values, .. } => values.len(),
            Block::Bigint { values, .. } => values.len(),
            Block::Integer { values, .. } => values.len(),
            Block::Double { values, .. } => values.len(),
            Block::Varchar { offsets, .. } => offsets.len() - 1,
            Block::Date { values, .. } => values.len(),
            Block::Timestamp { values, .. } => values.len(),
            Block::Array { offsets, .. } => offsets.len() - 1,
            Block::Map { offsets, .. } => offsets.len() - 1,
            Block::Row { len, .. } => *len,
            Block::Dictionary { ids, .. } => ids.len(),
        }
    }

    /// True when the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The SQL type of this block.
    pub fn data_type(&self) -> DataType {
        match self {
            Block::Boolean { .. } => DataType::Boolean,
            Block::Bigint { .. } => DataType::Bigint,
            Block::Integer { .. } => DataType::Integer,
            Block::Double { .. } => DataType::Double,
            Block::Varchar { .. } => DataType::Varchar,
            Block::Date { .. } => DataType::Date,
            Block::Timestamp { .. } => DataType::Timestamp,
            Block::Array { element_type, .. } => DataType::array(element_type.clone()),
            Block::Map { key_type, value_type, .. } => {
                DataType::map(key_type.clone(), value_type.clone())
            }
            Block::Row { fields, .. } => DataType::Row(fields.clone()),
            Block::Dictionary { dictionary, .. } => dictionary.data_type(),
        }
    }

    /// Is the value at position `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Block::Boolean { nulls, .. }
            | Block::Bigint { nulls, .. }
            | Block::Integer { nulls, .. }
            | Block::Double { nulls, .. }
            | Block::Varchar { nulls, .. }
            | Block::Date { nulls, .. }
            | Block::Timestamp { nulls, .. }
            | Block::Array { nulls, .. }
            | Block::Map { nulls, .. }
            | Block::Row { nulls, .. } => nulls.as_ref().map(|n| n[i]).unwrap_or(false),
            Block::Dictionary { dictionary, ids } => dictionary.is_null(ids[i] as usize),
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_null(i)).count()
    }

    /// Materialize row `i` as a scalar [`Value`]. Slow path — used for
    /// result display, group keys, and test oracles.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            Block::Boolean { values, .. } => Value::Boolean(values[i]),
            Block::Bigint { values, .. } => Value::Bigint(values[i]),
            Block::Integer { values, .. } => Value::Integer(values[i]),
            Block::Double { values, .. } => Value::Double(values[i]),
            Block::Varchar { offsets, bytes, .. } => {
                let s = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                Value::Varchar(String::from_utf8_lossy(s).into_owned())
            }
            Block::Date { values, .. } => Value::Date(values[i]),
            Block::Timestamp { values, .. } => Value::Timestamp(values[i]),
            Block::Array { offsets, elements, .. } => {
                let items = (offsets[i] as usize..offsets[i + 1] as usize)
                    .map(|j| elements.value(j))
                    .collect();
                Value::Array(items)
            }
            Block::Map { offsets, keys, values, .. } => {
                let entries = (offsets[i] as usize..offsets[i + 1] as usize)
                    .map(|j| (keys.value(j), values.value(j)))
                    .collect();
                Value::Map(entries)
            }
            Block::Row { children, .. } => {
                Value::Row(children.iter().map(|c| c.value(i)).collect())
            }
            Block::Dictionary { dictionary, ids } => dictionary.value(ids[i] as usize),
        }
    }

    /// String slice at position `i` for VARCHAR blocks (fast path, no alloc).
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Block::Varchar { offsets, bytes, nulls } => {
                if nulls.as_ref().map(|n| n[i]).unwrap_or(false) {
                    return None;
                }
                std::str::from_utf8(&bytes[offsets[i] as usize..offsets[i + 1] as usize]).ok()
            }
            Block::Dictionary { dictionary, ids } => dictionary.str_at(ids[i] as usize),
            _ => None,
        }
    }

    /// All rows of the block as scalar values.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    // ------------------------------------------------------------- reshapes

    /// Gather the given row indices into a new block.
    pub fn take(&self, indices: &[usize]) -> Block {
        fn take_mask(nulls: &NullMask, indices: &[usize]) -> NullMask {
            nulls.as_ref().and_then(|n| {
                let taken: Vec<bool> = indices.iter().map(|&i| n[i]).collect();
                if taken.iter().any(|&b| b) {
                    Some(taken)
                } else {
                    None
                }
            })
        }
        match self {
            Block::Boolean { values, nulls } => Block::Boolean {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Bigint { values, nulls } => Block::Bigint {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Integer { values, nulls } => Block::Integer {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Double { values, nulls } => Block::Double {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Date { values, nulls } => Block::Date {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Timestamp { values, nulls } => Block::Timestamp {
                values: indices.iter().map(|&i| values[i]).collect(),
                nulls: take_mask(nulls, indices),
            },
            Block::Varchar { offsets, bytes, nulls } => {
                let mut new_offsets = Vec::with_capacity(indices.len() + 1);
                let mut new_bytes = Vec::new();
                new_offsets.push(0u32);
                for &i in indices {
                    new_bytes
                        .extend_from_slice(&bytes[offsets[i] as usize..offsets[i + 1] as usize]);
                    new_offsets.push(new_bytes.len() as u32);
                }
                Block::Varchar {
                    offsets: new_offsets,
                    bytes: new_bytes,
                    nulls: take_mask(nulls, indices),
                }
            }
            Block::Array { element_type, offsets, elements, nulls } => {
                let mut new_offsets = Vec::with_capacity(indices.len() + 1);
                let mut elem_indices = Vec::new();
                new_offsets.push(0u32);
                for &i in indices {
                    elem_indices.extend(offsets[i] as usize..offsets[i + 1] as usize);
                    new_offsets.push(elem_indices.len() as u32);
                }
                Block::Array {
                    element_type: element_type.clone(),
                    offsets: new_offsets,
                    elements: Box::new(elements.take(&elem_indices)),
                    nulls: take_mask(nulls, indices),
                }
            }
            Block::Map { key_type, value_type, offsets, keys, values, nulls } => {
                let mut new_offsets = Vec::with_capacity(indices.len() + 1);
                let mut entry_indices = Vec::new();
                new_offsets.push(0u32);
                for &i in indices {
                    entry_indices.extend(offsets[i] as usize..offsets[i + 1] as usize);
                    new_offsets.push(entry_indices.len() as u32);
                }
                Block::Map {
                    key_type: key_type.clone(),
                    value_type: value_type.clone(),
                    offsets: new_offsets,
                    keys: Box::new(keys.take(&entry_indices)),
                    values: Box::new(values.take(&entry_indices)),
                    nulls: take_mask(nulls, indices),
                }
            }
            Block::Row { fields, children, nulls, .. } => Block::Row {
                fields: fields.clone(),
                children: children.iter().map(|c| c.take(indices)).collect(),
                len: indices.len(),
                nulls: take_mask(nulls, indices),
            },
            Block::Dictionary { dictionary, ids } => Block::Dictionary {
                dictionary: dictionary.clone(),
                ids: indices.iter().map(|&i| ids[i]).collect(),
            },
        }
    }

    /// Keep rows where `selection` is true. `selection.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, selection: &[bool]) -> Block {
        debug_assert_eq!(selection.len(), self.len());
        let indices: Vec<usize> =
            selection.iter().enumerate().filter(|(_, &keep)| keep).map(|(i, _)| i).collect();
        self.take(&indices)
    }

    /// Contiguous slice `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Block {
        let indices: Vec<usize> = (offset..offset + len).collect();
        self.take(&indices)
    }

    /// Concatenate blocks of the same type.
    pub fn concat(blocks: &[Block]) -> Result<Block> {
        let first =
            blocks.first().ok_or_else(|| PrestoError::Internal("concat of zero blocks".into()))?;
        let dt = first.data_type();
        // Slow generic path via values keeps nested cases correct; the scalar
        // fast paths below cover the hot columns.
        match (&dt, blocks.len()) {
            (_, 1) => return Ok(first.clone()),
            (DataType::Bigint, _)
                if blocks.iter().all(|b| matches!(b, Block::Bigint { nulls: None, .. })) =>
            {
                let mut values = Vec::new();
                for b in blocks {
                    if let Block::Bigint { values: v, .. } = b {
                        values.extend_from_slice(v);
                    }
                }
                return Ok(Block::bigint(values));
            }
            (DataType::Double, _)
                if blocks.iter().all(|b| matches!(b, Block::Double { nulls: None, .. })) =>
            {
                let mut values = Vec::new();
                for b in blocks {
                    if let Block::Double { values: v, .. } = b {
                        values.extend_from_slice(v);
                    }
                }
                return Ok(Block::double(values));
            }
            _ => {}
        }
        let mut all = Vec::new();
        for b in blocks {
            if b.data_type() != dt {
                return Err(PrestoError::Internal(format!(
                    "concat of mismatched block types {dt} vs {}",
                    b.data_type()
                )));
            }
            all.extend(b.to_values());
        }
        Block::from_values(&dt, &all)
    }

    /// Flatten a dictionary block to its plain encoding; other blocks are
    /// returned unchanged.
    pub fn decode_dictionary(&self) -> Block {
        match self {
            Block::Dictionary { dictionary, ids } => {
                let indices: Vec<usize> = ids.iter().map(|&id| id as usize).collect();
                dictionary.take(&indices)
            }
            other => other.clone(),
        }
    }

    /// Approximate heap size in bytes, used for memory accounting (the
    /// "Insufficient Resource" budget of §XII.C).
    pub fn memory_size(&self) -> usize {
        let mask = |nulls: &NullMask| nulls.as_ref().map(|n| n.len()).unwrap_or(0);
        match self {
            Block::Boolean { values, nulls } => values.len() + mask(nulls),
            Block::Bigint { values, nulls } => values.len() * 8 + mask(nulls),
            Block::Integer { values, nulls } => values.len() * 4 + mask(nulls),
            Block::Double { values, nulls } => values.len() * 8 + mask(nulls),
            Block::Date { values, nulls } => values.len() * 4 + mask(nulls),
            Block::Timestamp { values, nulls } => values.len() * 8 + mask(nulls),
            Block::Varchar { offsets, bytes, nulls } => {
                offsets.len() * 4 + bytes.len() + mask(nulls)
            }
            Block::Array { offsets, elements, nulls, .. } => {
                offsets.len() * 4 + elements.memory_size() + mask(nulls)
            }
            Block::Map { offsets, keys, values, nulls, .. } => {
                offsets.len() * 4 + keys.memory_size() + values.memory_size() + mask(nulls)
            }
            Block::Row { children, nulls, .. } => {
                children.iter().map(Block::memory_size).sum::<usize>() + mask(nulls)
            }
            Block::Dictionary { dictionary, ids } => dictionary.memory_size() + ids.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested_type() -> DataType {
        DataType::row(vec![
            Field::new("id", DataType::Bigint),
            Field::new("tags", DataType::array(DataType::Varchar)),
        ])
    }

    fn nested_values() -> Vec<Value> {
        vec![
            Value::Row(vec![Value::Bigint(1), Value::Array(vec!["a".into(), "b".into()])]),
            Value::Null,
            Value::Row(vec![Value::Bigint(3), Value::Array(vec![])]),
        ]
    }

    #[test]
    fn from_values_round_trips_scalars() {
        let vals = vec![Value::Bigint(1), Value::Null, Value::Bigint(3), Value::Bigint(-7)];
        let block = Block::from_values(&DataType::Bigint, &vals).unwrap();
        assert_eq!(block.len(), 4);
        assert_eq!(block.null_count(), 1);
        assert_eq!(block.to_values(), vals);
    }

    #[test]
    fn from_values_round_trips_varchar() {
        let vals = vec![Value::Varchar("hello".into()), Value::Null, Value::Varchar("".into())];
        let block = Block::from_values(&DataType::Varchar, &vals).unwrap();
        assert_eq!(block.to_values(), vals);
        assert_eq!(block.str_at(0), Some("hello"));
        assert_eq!(block.str_at(1), None);
        assert_eq!(block.str_at(2), Some(""));
    }

    #[test]
    fn from_values_round_trips_nested() {
        let block = Block::from_values(&nested_type(), &nested_values()).unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.to_values(), nested_values());
        assert_eq!(block.data_type(), nested_type());
    }

    #[test]
    fn from_values_rejects_type_mismatch() {
        let err = Block::from_values(&DataType::Bigint, &[Value::Varchar("x".into())]);
        assert!(err.is_err());
    }

    #[test]
    fn take_and_filter_gather_rows() {
        let block = Block::bigint(vec![10, 20, 30, 40]);
        let taken = block.take(&[3, 0, 0]);
        assert_eq!(taken.to_values(), vec![40i64.into(), 10i64.into(), 10i64.into()]);

        let filtered = block.filter(&[true, false, true, false]);
        assert_eq!(filtered.to_values(), vec![10i64.into(), 30i64.into()]);
    }

    #[test]
    fn take_preserves_nested_structure() {
        let block = Block::from_values(&nested_type(), &nested_values()).unwrap();
        let taken = block.take(&[2, 0]);
        assert_eq!(
            taken.to_values(),
            vec![
                Value::Row(vec![Value::Bigint(3), Value::Array(vec![])]),
                Value::Row(vec![Value::Bigint(1), Value::Array(vec!["a".into(), "b".into()])]),
            ]
        );
    }

    #[test]
    fn slice_is_contiguous_take() {
        let block = Block::varchar(&["a", "bb", "ccc", "dddd"]);
        let s = block.slice(1, 2);
        assert_eq!(s.to_values(), vec!["bb".into(), "ccc".into()]);
    }

    #[test]
    fn concat_joins_blocks() {
        let a = Block::bigint(vec![1, 2]);
        let b = Block::bigint(vec![3]);
        let c = Block::concat(&[a, b]).unwrap();
        assert_eq!(c.to_values(), vec![1i64.into(), 2i64.into(), 3i64.into()]);

        let bad = Block::concat(&[Block::bigint(vec![1]), Block::double(vec![1.0])]);
        assert!(bad.is_err());
    }

    #[test]
    fn dictionary_block_reads_through() {
        let dict = Block::varchar(&["SFO", "NYC", "LAX"]);
        let block = Block::Dictionary { dictionary: Box::new(dict), ids: vec![2, 0, 0, 1] };
        assert_eq!(block.len(), 4);
        assert_eq!(block.value(0), "LAX".into());
        assert_eq!(block.str_at(1), Some("SFO"));
        let decoded = block.decode_dictionary();
        assert!(matches!(decoded, Block::Varchar { .. }));
        assert_eq!(decoded.to_values(), block.to_values());
        let taken = block.take(&[3, 3]);
        assert_eq!(taken.to_values(), vec!["NYC".into(), "NYC".into()]);
    }

    #[test]
    fn null_struct_masks_children() {
        let block = Block::from_values(&nested_type(), &nested_values()).unwrap();
        assert!(block.is_null(1));
        assert_eq!(block.value(1), Value::Null);
    }

    #[test]
    fn memory_size_tracks_payload() {
        let small = Block::bigint(vec![1]);
        let big = Block::bigint((0..1000).collect());
        assert!(big.memory_size() > small.memory_size());
    }
}
