//! Scalar values.
//!
//! `Value` is the row-at-a-time representation: literals in expressions, the
//! working currency of the *legacy* Parquet reader/writer (which the paper
//! criticizes for reconstructing records row by row, §V.C/§V.J), group-by
//! keys, and the oracle for property tests against the vectorized paths.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::types::DataType;

/// A single scalar (or nested) SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// BOOLEAN value.
    Boolean(bool),
    /// BIGINT value.
    Bigint(i64),
    /// INTEGER value.
    Integer(i32),
    /// DOUBLE value.
    Double(f64),
    /// VARCHAR value.
    Varchar(String),
    /// DATE value (days since epoch).
    Date(i32),
    /// TIMESTAMP value (millis since epoch).
    Timestamp(i64),
    /// ARRAY value.
    Array(Vec<Value>),
    /// MAP value as ordered key/value pairs.
    Map(Vec<(Value, Value)>),
    /// ROW (struct) value; fields are positional against the row type.
    Row(Vec<Value>),
}

impl Value {
    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Best-effort type of this value. `Null` and empty collections report
    /// against `fallback` where provided.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Bigint(_) => Some(DataType::Bigint),
            Value::Integer(_) => Some(DataType::Integer),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Array(_) | Value::Map(_) | Value::Row(_) => None,
        }
    }

    /// Interpret as f64 for arithmetic, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Bigint(v) => Some(*v as f64),
            Value::Integer(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interpret as i64, widening INTEGER and passing DATE/TIMESTAMP through.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Bigint(v) => Some(*v),
            Value::Integer(v) => Some(*v as i64),
            Value::Date(v) => Some(*v as i64),
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (the engine is type-strict, but integer widths and
    /// int/double compare numerically as Presto does after coercion).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Bigint(a), Bigint(b)) => Some(a.cmp(b)),
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Bigint(a), Integer(b)) => Some(a.cmp(&(*b as i64))),
            (Integer(a), Bigint(b)) => Some((*a as i64).cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Double(a), Bigint(b)) => a.partial_cmp(&(*b as f64)),
            (Bigint(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Integer(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sql_cmp(y)? {
                        Ordering::Equal => continue,
                        non_eq => return Some(non_eq),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            (Row(a), Row(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sql_cmp(y)? {
                        Ordering::Equal => continue,
                        non_eq => return Some(non_eq),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    /// Total ordering with NULLS LAST, used by the sort operator. Incomparable
    /// pairs (mixed incompatible types) order by type tag to stay total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                self.sql_cmp(other).unwrap_or_else(|| self.type_tag().cmp(&other.type_tag()))
            }
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::Bigint(_) => 2,
            Value::Integer(_) => 3,
            Value::Double(_) => 4,
            Value::Varchar(_) => 5,
            Value::Date(_) => 6,
            Value::Timestamp(_) => 7,
            Value::Array(_) => 8,
            Value::Map(_) => 9,
            Value::Row(_) => 10,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            // Note: group-by key equality treats NULL == NULL (SQL GROUP BY
            // groups nulls together), which is why Eq is implemented this way.
            (Null, Null) => true,
            // bitwise equality groups NaNs together, while `a == b` makes
            // 0.0 and -0.0 one group, matching SQL `=` on doubles
            (Double(a), Double(b)) => a.to_bits() == b.to_bits() || a == b,
            (Boolean(a), Boolean(b)) => a == b,
            (Bigint(a), Bigint(b)) => a == b,
            (Integer(a), Integer(b)) => a == b,
            (Varchar(a), Varchar(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Map(a), Map(b)) => a == b,
            (Row(a), Row(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_tag().hash(state);
        match self {
            Value::Null => {}
            Value::Boolean(v) => v.hash(state),
            Value::Bigint(v) => v.hash(state),
            Value::Integer(v) => v.hash(state),
            // normalize -0.0 to 0.0 so Hash agrees with Eq (0.0 == -0.0)
            Value::Double(v) => {
                let normalized = if *v == 0.0 { 0.0f64 } else { *v };
                normalized.to_bits().hash(state)
            }
            Value::Varchar(v) => v.hash(state),
            Value::Date(v) => v.hash(state),
            Value::Timestamp(v) => v.hash(state),
            Value::Array(v) => v.hash(state),
            Value::Map(v) => v.hash(state),
            Value::Row(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(v) => write!(f, "{v}"),
            Value::Bigint(v) => write!(f, "{v}"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Timestamp(v) => write!(f, "ts({v})"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}={v}")?;
                }
                write!(f, "}}")
            }
            Value::Row(fields) => {
                write!(f, "(")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Bigint(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_cmp_is_null_aware() {
        assert_eq!(Value::Null.sql_cmp(&Value::Bigint(1)), None);
        assert_eq!(Value::Bigint(2).sql_cmp(&Value::Bigint(3)), Some(Ordering::Less));
        assert_eq!(Value::Bigint(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(
            Value::Varchar("a".into()).sql_cmp(&Value::Varchar("b".into())),
            Some(Ordering::Less)
        );
        // type-strict: varchar vs bigint is incomparable
        assert_eq!(Value::Varchar("1".into()).sql_cmp(&Value::Bigint(1)), None);
    }

    #[test]
    fn total_cmp_puts_nulls_last() {
        let mut vals = vec![Value::Null, Value::Bigint(2), Value::Bigint(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Bigint(1), Value::Bigint(2), Value::Null]);
    }

    #[test]
    fn doubles_hash_and_eq_follow_sql_grouping() {
        assert_eq!(Value::Double(1.5), Value::Double(1.5));
        // SQL `=` says 0.0 = -0.0: they must be one group/join key
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
        // NaNs group together (bitwise), though NaN != NaN under sql_cmp
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        assert_eq!(hash_of(&Value::Double(2.5)), hash_of(&Value::Double(2.5)));
    }

    #[test]
    fn nested_values_compare_lexicographically() {
        let a = Value::Array(vec![Value::Bigint(1), Value::Bigint(2)]);
        let b = Value::Array(vec![Value::Bigint(1), Value::Bigint(3)]);
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
        let short = Value::Array(vec![Value::Bigint(1)]);
        assert_eq!(short.sql_cmp(&a), Some(Ordering::Less));
    }

    #[test]
    fn null_groups_together_for_group_by() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Bigint(5));
        assert_eq!(Value::from("x"), Value::Varchar("x".into()));
        assert_eq!(Value::Bigint(7).as_f64(), Some(7.0));
        assert_eq!(Value::Integer(7).as_i64(), Some(7));
        assert_eq!(Value::Varchar("s".into()).as_str(), Some("s"));
    }
}
