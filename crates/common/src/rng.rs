//! Stateless deterministic draws for workload and fault simulation.
//!
//! Every simulated random decision in this workspace — fault schedules,
//! arrival processes, tenant skew — must be a *pure function* of
//! `(seed, stream, index)` so the same seed replays the same schedule no
//! matter how the host interleaves threads or in which order draws are
//! consumed. These helpers provide that: a SplitMix64 finalizer for
//! mixing, a uniform `[0, 1)` draw, and an exponential draw for Poisson
//! inter-arrival gaps. No shared PRNG state, no wall clock.
//!
//! Streams are domain-separation salts: two subsystems drawing from the
//! same seed use different `stream` values so their schedules stay
//! independent (changing one never perturbs the other).

/// SplitMix64 finalizer: well-distributed 64-bit mixing of the input.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`, pure in `(seed, stream, index)`.
///
/// The top 53 bits of the mixed value become the mantissa, so draws are
/// uniform over the representable grid and identical on every host.
pub fn unit_draw(seed: u64, stream: u64, index: u64) -> f64 {
    let mixed = mix64(seed ^ mix64(stream) ^ mix64(index));
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An exponential draw with the given mean, pure in `(seed, stream, index)`.
///
/// Inverse-CDF sampling: `-ln(1 - u) · mean`. Used for Poisson-process
/// inter-arrival gaps; the `1 - u` form keeps the argument of `ln`
/// strictly positive for every `u` in `[0, 1)`.
pub fn exp_draw(seed: u64, stream: u64, index: u64, mean: f64) -> f64 {
    let u = unit_draw(seed, stream, index);
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_in_seed_stream_index() {
        for (seed, stream, index) in [(1u64, 2u64, 3u64), (42, 7, 0), (u64::MAX, 0, u64::MAX)] {
            assert_eq!(unit_draw(seed, stream, index), unit_draw(seed, stream, index));
            assert_eq!(
                exp_draw(seed, stream, index, 3.5).to_bits(),
                exp_draw(seed, stream, index, 3.5).to_bits()
            );
        }
    }

    #[test]
    fn draws_land_in_the_unit_interval() {
        for i in 0..10_000 {
            let u = unit_draw(42, 9, i);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn streams_are_independent() {
        // the same (seed, index) under different streams must not correlate
        let same = (0..1000).filter(|&i| unit_draw(7, 1, i) == unit_draw(7, 2, i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let n = 20_000;
        let sum: f64 = (0..n).map(|i| exp_draw(11, 4, i, 250.0)).sum();
        let mean = sum / n as f64;
        assert!((200.0..300.0).contains(&mean), "{mean}");
    }
}
