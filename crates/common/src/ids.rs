//! Identifiers for queries, stages, tasks and splits (Fig. 1 of the paper:
//! plan → fragments → stages → tasks → splits).

use std::fmt;

/// Identifies one query submitted to a coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Identifies one stage (a running plan fragment) within a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId {
    /// Owning query.
    pub query: QueryId,
    /// Fragment number within the query.
    pub stage: u32,
}

/// Identifies one task (a stage's work on one worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    /// Owning stage.
    pub stage: StageId,
    /// Task number within the stage.
    pub task: u32,
}

/// Identifies one split — "one processing unit, or one shard of underlying
/// data" (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SplitId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.s{}", self.query, self.stage)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.t{}", self.stage, self.task)
    }
}

impl fmt::Display for SplitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_hierarchically() {
        let task = TaskId { stage: StageId { query: QueryId(7), stage: 2 }, task: 4 };
        assert_eq!(task.to_string(), "q7.s2.t4");
        assert_eq!(SplitId(9).to_string(), "split9");
    }
}
