//! The SQL type system, including the nested types that §V of the paper is
//! devoted to ("users define one high level column with struct type. The
//! struct consists of 20 or sometimes up to 50 fields... more than 5 levels
//! of nesting").

use std::fmt;

use crate::error::{PrestoError, Result};

/// A named field inside a [`DataType::Row`] (struct) type or a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name. Parquet identifies columns by name, which is why the paper
    /// forbids renames (§V.A).
    pub name: String,
    /// Field type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// SQL data types supported by the engine.
///
/// `Row` models Presto's `ROW` / struct type; `Array` and `Map` are the other
/// two nested types. Presto "is type strict, we do not allow automatic type
/// coercion when querying Parquet" (§V.A) — comparisons in the analyzer are
/// exact, with only explicitly planned integer→double widening for arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `BOOLEAN`
    Boolean,
    /// `BIGINT` — 64-bit signed integer.
    Bigint,
    /// `INTEGER` — 32-bit signed integer.
    Integer,
    /// `DOUBLE` — 64-bit IEEE float.
    Double,
    /// `VARCHAR` — UTF-8 string.
    Varchar,
    /// `DATE` — days since the epoch.
    Date,
    /// `TIMESTAMP` — milliseconds since the epoch.
    Timestamp,
    /// `ARRAY(element)`
    Array(Box<DataType>),
    /// `MAP(key, value)`
    Map(Box<DataType>, Box<DataType>),
    /// `ROW(field, ...)` — a struct with named fields.
    Row(Vec<Field>),
}

impl DataType {
    /// Convenience constructor for `ARRAY(element)`.
    pub fn array(element: DataType) -> Self {
        DataType::Array(Box::new(element))
    }

    /// Convenience constructor for `MAP(key, value)`.
    pub fn map(key: DataType, value: DataType) -> Self {
        DataType::Map(Box::new(key), Box::new(value))
    }

    /// Convenience constructor for `ROW(...)`.
    pub fn row(fields: Vec<Field>) -> Self {
        DataType::Row(fields)
    }

    /// True for `ARRAY`, `MAP` and `ROW` types.
    pub fn is_nested(&self) -> bool {
        matches!(self, DataType::Array(_) | DataType::Map(_, _) | DataType::Row(_))
    }

    /// True for types that participate in arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Bigint | DataType::Integer | DataType::Double)
    }

    /// True for types with a total order usable in ORDER BY / min / max.
    pub fn is_orderable(&self) -> bool {
        !self.is_nested()
    }

    /// Number of *leaf* columns this type shreds into on disk. Scalars are one
    /// leaf; a `ROW` is the sum of its fields; `ARRAY` recurses into its
    /// element; `MAP` has a key leaf subtree and a value leaf subtree. This is
    /// the quantity nested column pruning (§V.D) reduces.
    pub fn leaf_count(&self) -> usize {
        match self {
            DataType::Row(fields) => fields.iter().map(|f| f.data_type.leaf_count()).sum(),
            DataType::Array(elem) => elem.leaf_count(),
            DataType::Map(k, v) => k.leaf_count() + v.leaf_count(),
            _ => 1,
        }
    }

    /// Maximum struct/array/map nesting depth (a scalar has depth 0).
    pub fn nesting_depth(&self) -> usize {
        match self {
            DataType::Row(fields) => {
                1 + fields.iter().map(|f| f.data_type.nesting_depth()).max().unwrap_or(0)
            }
            DataType::Array(elem) => 1 + elem.nesting_depth(),
            DataType::Map(k, v) => 1 + k.nesting_depth().max(v.nesting_depth()),
            _ => 0,
        }
    }

    /// Resolve a dotted dereference path (e.g. `["city_id"]` against the type
    /// of `base`) to the field's type. Used by the analyzer for
    /// `base.city_id`-style expressions and by nested column pruning.
    pub fn resolve_path(&self, path: &[&str]) -> Result<&DataType> {
        if path.is_empty() {
            return Ok(self);
        }
        match self {
            DataType::Row(fields) => {
                let field = fields.iter().find(|f| f.name == path[0]).ok_or_else(|| {
                    PrestoError::Analysis(format!("row type has no field '{}'", path[0]))
                })?;
                field.data_type.resolve_path(&path[1..])
            }
            other => Err(PrestoError::Analysis(format!(
                "cannot dereference field '{}' of non-row type {other}",
                path[0]
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Boolean => write!(f, "boolean"),
            DataType::Bigint => write!(f, "bigint"),
            DataType::Integer => write!(f, "integer"),
            DataType::Double => write!(f, "double"),
            DataType::Varchar => write!(f, "varchar"),
            DataType::Date => write!(f, "date"),
            DataType::Timestamp => write!(f, "timestamp"),
            DataType::Array(e) => write!(f, "array({e})"),
            DataType::Map(k, v) => write!(f, "map({k}, {v})"),
            DataType::Row(fields) => {
                write!(f, "row(")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", field.name, field.data_type)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An ordered list of named, typed columns: the schema of a table, a page
/// stream, or a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields. Duplicate column names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(PrestoError::Analysis(format!("duplicate column name '{}'", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of top-level columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Get a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Get a field by index.
    pub fn field_at(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Project a subset of columns by name, preserving the requested order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let field = self
                .field(name)
                .ok_or_else(|| PrestoError::Analysis(format!("column '{name}' not found")))?;
            fields.push(field.clone());
        }
        Schema::new(fields)
    }

    /// Total number of leaf columns across all top-level columns.
    pub fn leaf_count(&self) -> usize {
        self.fields.iter().map(|f| f.data_type.leaf_count()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip_base_type() -> DataType {
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
            Field::new(
                "status",
                DataType::row(vec![
                    Field::new("code", DataType::Integer),
                    Field::new("tags", DataType::array(DataType::Varchar)),
                ]),
            ),
        ])
    }

    #[test]
    fn leaf_count_counts_shredded_columns() {
        assert_eq!(DataType::Bigint.leaf_count(), 1);
        assert_eq!(trip_base_type().leaf_count(), 4);
        assert_eq!(DataType::map(DataType::Varchar, DataType::Double).leaf_count(), 2);
    }

    #[test]
    fn nesting_depth_matches_paper_style_schemas() {
        assert_eq!(DataType::Bigint.nesting_depth(), 0);
        assert_eq!(trip_base_type().nesting_depth(), 3);
    }

    #[test]
    fn resolve_path_walks_struct_fields() {
        let t = trip_base_type();
        assert_eq!(t.resolve_path(&["city_id"]).unwrap(), &DataType::Bigint);
        assert_eq!(t.resolve_path(&["status", "code"]).unwrap(), &DataType::Integer);
        assert!(t.resolve_path(&["nope"]).is_err());
        assert!(DataType::Bigint.resolve_path(&["x"]).is_err());
    }

    #[test]
    fn schema_rejects_duplicates_and_projects() {
        let schema = Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new("base", trip_base_type()),
        ])
        .unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.leaf_count(), 5);
        assert_eq!(schema.index_of("base"), Some(1));
        let projected = schema.project(&["base"]).unwrap();
        assert_eq!(projected.len(), 1);
        assert!(schema.project(&["missing"]).is_err());

        let dup =
            Schema::new(vec![Field::new("a", DataType::Bigint), Field::new("a", DataType::Double)]);
        assert!(dup.is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            DataType::map(DataType::Varchar, DataType::array(DataType::Bigint)).to_string(),
            "map(varchar, array(bigint))"
        );
    }
}
