//! Virtual clock for deterministic latency simulation.
//!
//! The paper's storage-layer results (§VII cache hit rates under NameNode
//! degradation, §IX S3 request latency) depend on per-operation latencies of
//! remote systems we cannot run. Instead of wall-clock sleeps, every
//! simulated remote call *advances* a shared [`SimClock`]; experiments then
//! report virtual elapsed time. This keeps benchmarks deterministic and fast
//! while preserving the relative cost structure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically advancing virtual clock shared by simulators.
///
/// Cloning shares the underlying clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time since start.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advance the clock by `d`, returning the new time. Concurrent advances
    /// accumulate (they model serialized work on a contended resource, e.g.
    /// a single NameNode).
    pub fn advance(&self, d: Duration) -> Duration {
        let nanos = d.as_nanos() as u64;
        let new = self.nanos.fetch_add(nanos, Ordering::Relaxed) + nanos;
        Duration::from_nanos(new)
    }

    /// Convenience: advance by microseconds.
    pub fn advance_micros(&self, micros: u64) -> Duration {
        self.advance(Duration::from_micros(micros))
    }

    /// Convenience: advance by milliseconds.
    pub fn advance_millis(&self, millis: u64) -> Duration {
        self.advance(Duration::from_millis(millis))
    }

    /// An *independent* clock starting at this clock's current time.
    ///
    /// Forks let a multi-query simulator overlap work in virtual time:
    /// each in-flight query advances its own fork while the master
    /// timeline stays put, so two queries dispatched at the same instant
    /// no longer serialize each other's virtual costs. Advancing the fork
    /// never moves the parent (and vice versa).
    pub fn fork(&self) -> SimClock {
        SimClock { nanos: Arc::new(AtomicU64::new(self.nanos.load(Ordering::Relaxed))) }
    }
}

/// A stopwatch over a [`SimClock`].
#[derive(Debug)]
pub struct SimStopwatch {
    clock: SimClock,
    start: Duration,
}

impl SimStopwatch {
    /// Start timing now.
    pub fn start(clock: &SimClock) -> SimStopwatch {
        SimStopwatch { clock: clock.clone(), start: clock.now() }
    }

    /// Virtual time elapsed since `start`.
    pub fn elapsed(&self) -> Duration {
        self.clock.now() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_is_shared() {
        let clock = SimClock::new();
        let alias = clock.clone();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance_millis(5);
        alias.advance_micros(250);
        assert_eq!(clock.now(), Duration::from_micros(5250));
    }

    #[test]
    fn stopwatch_measures_virtual_spans() {
        let clock = SimClock::new();
        clock.advance_millis(10);
        let watch = SimStopwatch::start(&clock);
        clock.advance_millis(7);
        assert_eq!(watch.elapsed(), Duration::from_millis(7));
    }

    #[test]
    fn forks_start_at_now_and_advance_independently() {
        let master = SimClock::new();
        master.advance_millis(3);
        let fork = master.fork();
        assert_eq!(fork.now(), Duration::from_millis(3));
        fork.advance_millis(10);
        master.advance_millis(1);
        assert_eq!(fork.now(), Duration::from_millis(13));
        assert_eq!(master.now(), Duration::from_millis(4));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let clock = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance_micros(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.now(), Duration::from_micros(8000));
    }
}
