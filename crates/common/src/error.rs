//! Error type shared across the engine.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, PrestoError>;

/// The error taxonomy of the engine.
///
/// The variants mirror where in the query lifecycle (Fig. 1 of the paper) an
/// error arises: parsing, analysis, planning, execution, or in one of the
/// substrates (storage, connector, file format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrestoError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query is syntactically valid but semantically wrong
    /// (unknown table/column, type mismatch, ...).
    Analysis(String),
    /// The optimizer or fragmenter could not produce a plan.
    Plan(String),
    /// A runtime failure while executing operators.
    Execution(String),
    /// A storage-layer failure (simulated HDFS / S3 / local fs).
    Storage(String),
    /// A connector-specific failure.
    Connector(String),
    /// File-format level corruption or version mismatch.
    Format(String),
    /// Schema evolution rule violation (§V.A: renames and type changes
    /// are rejected).
    SchemaEvolution(String),
    /// The paper's infamous `"Insufficient Resource ..."` error users hit on
    /// big joins (§XII.C). Raised when a query exceeds the session memory
    /// budget.
    InsufficientResources(String),
    /// The cluster memory pool ran dry and the OOM arbiter chose this query
    /// as the victim: it held the most memory and nothing was revocable
    /// (spillable) anywhere, so killing it frees the most capacity.
    ExceededMemoryLimit(String),
    /// A worker node died (crash, injected fault, lost heartbeat) while it
    /// held tasks. Infrastructure, not the query's fault: the coordinator
    /// may reassign the lost splits to surviving workers.
    WorkerFailed {
        /// The worker that failed.
        worker_id: u32,
        /// What happened.
        message: String,
    },
    /// A whole cluster cannot serve the query right now (no active workers,
    /// maintenance drain). The gateway may re-route to a healthy cluster.
    ClusterUnavailable(String),
    /// A transient-error retry budget ran out at this layer (e.g. the S3
    /// exponential backoff gave up after N `503 SlowDown`s, §IX).
    /// Non-retryable *here*, but retryable by the coordinator: the same
    /// split rescheduled onto another worker gets a fresh budget.
    TransientExhausted(String),
    /// Feature not supported by this reproduction.
    NotSupported(String),
    /// Invariant violation — a bug in the engine itself.
    Internal(String),
}

impl PrestoError {
    /// Short machine-readable code, handy in tests and logs.
    pub fn code(&self) -> &'static str {
        match self {
            PrestoError::Parse(_) => "PARSE_ERROR",
            PrestoError::Analysis(_) => "ANALYSIS_ERROR",
            PrestoError::Plan(_) => "PLAN_ERROR",
            PrestoError::Execution(_) => "EXECUTION_ERROR",
            PrestoError::Storage(_) => "STORAGE_ERROR",
            PrestoError::Connector(_) => "CONNECTOR_ERROR",
            PrestoError::Format(_) => "FORMAT_ERROR",
            PrestoError::SchemaEvolution(_) => "SCHEMA_EVOLUTION_ERROR",
            PrestoError::InsufficientResources(_) => "INSUFFICIENT_RESOURCES",
            PrestoError::ExceededMemoryLimit(_) => "EXCEEDED_MEMORY_LIMIT",
            PrestoError::WorkerFailed { .. } => "WORKER_FAILED",
            PrestoError::ClusterUnavailable(_) => "CLUSTER_UNAVAILABLE",
            PrestoError::TransientExhausted(_) => "TRANSIENT_EXHAUSTED",
            PrestoError::NotSupported(_) => "NOT_SUPPORTED",
            PrestoError::Internal(_) => "INTERNAL_ERROR",
        }
    }

    /// Is this an *infrastructure* fault a higher layer may retry on
    /// different resources — the coordinator by reassigning the split to a
    /// surviving worker, the gateway by re-routing the query to a healthy
    /// cluster? User, plan, and resource-policy errors are **not**
    /// retryable: re-running them elsewhere reproduces the same failure.
    ///
    /// The match is deliberately exhaustive with no wildcard (enforced by
    /// the `error-taxonomy` lint): adding a variant forces whoever adds it
    /// to decide, here, whether retry loops may act on it.
    pub fn is_retryable(&self) -> bool {
        match self {
            // infrastructure faults: fresh resources can succeed
            PrestoError::WorkerFailed { .. }
            | PrestoError::ClusterUnavailable(_)
            | PrestoError::TransientExhausted(_) => true,
            // user errors: the query itself is wrong everywhere
            PrestoError::Parse(_)
            | PrestoError::Analysis(_)
            | PrestoError::Plan(_)
            | PrestoError::NotSupported(_) => false,
            // deterministic runtime/substrate failures: same data, same crash
            PrestoError::Execution(_)
            | PrestoError::Storage(_)
            | PrestoError::Connector(_)
            | PrestoError::Format(_)
            | PrestoError::SchemaEvolution(_) => false,
            // resource-policy decisions: retrying would just re-trigger them
            PrestoError::InsufficientResources(_) | PrestoError::ExceededMemoryLimit(_) => false,
            // engine bugs must surface, never be papered over by retries
            PrestoError::Internal(_) => false,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            PrestoError::Parse(m)
            | PrestoError::Analysis(m)
            | PrestoError::Plan(m)
            | PrestoError::Execution(m)
            | PrestoError::Storage(m)
            | PrestoError::Connector(m)
            | PrestoError::Format(m)
            | PrestoError::SchemaEvolution(m)
            | PrestoError::InsufficientResources(m)
            | PrestoError::ExceededMemoryLimit(m)
            | PrestoError::WorkerFailed { message: m, .. }
            | PrestoError::ClusterUnavailable(m)
            | PrestoError::TransientExhausted(m)
            | PrestoError::NotSupported(m)
            | PrestoError::Internal(m) => m,
        }
    }
}

impl fmt::Display for PrestoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

impl std::error::Error for PrestoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages_round_trip() {
        let e = PrestoError::InsufficientResources("join too big".into());
        assert_eq!(e.code(), "INSUFFICIENT_RESOURCES");
        assert_eq!(e.message(), "join too big");
        assert_eq!(e.to_string(), "INSUFFICIENT_RESOURCES: join too big");
    }

    #[test]
    fn every_variant_has_a_distinct_code() {
        let all = [
            PrestoError::Parse(String::new()),
            PrestoError::Analysis(String::new()),
            PrestoError::Plan(String::new()),
            PrestoError::Execution(String::new()),
            PrestoError::Storage(String::new()),
            PrestoError::Connector(String::new()),
            PrestoError::Format(String::new()),
            PrestoError::SchemaEvolution(String::new()),
            PrestoError::InsufficientResources(String::new()),
            PrestoError::ExceededMemoryLimit(String::new()),
            PrestoError::WorkerFailed { worker_id: 0, message: String::new() },
            PrestoError::ClusterUnavailable(String::new()),
            PrestoError::TransientExhausted(String::new()),
            PrestoError::NotSupported(String::new()),
            PrestoError::Internal(String::new()),
        ];
        let mut codes: Vec<_> = all.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn only_infrastructure_faults_are_retryable() {
        assert!(
            PrestoError::WorkerFailed { worker_id: 3, message: "crashed".into() }.is_retryable()
        );
        assert!(PrestoError::ClusterUnavailable("no active workers".into()).is_retryable());
        assert!(PrestoError::TransientExhausted("gave up after 6 retries".into()).is_retryable());
        // user / plan / policy errors reproduce identically elsewhere
        for e in [
            PrestoError::Parse("x".into()),
            PrestoError::Analysis("x".into()),
            PrestoError::Execution("x".into()),
            PrestoError::InsufficientResources("x".into()),
            PrestoError::ExceededMemoryLimit("x".into()),
            PrestoError::Internal("x".into()),
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn worker_failed_carries_the_worker_id() {
        let e = PrestoError::WorkerFailed { worker_id: 7, message: "injected crash".into() };
        assert_eq!(e.code(), "WORKER_FAILED");
        assert_eq!(e.message(), "injected crash");
        assert_eq!(e.to_string(), "WORKER_FAILED: injected crash");
    }
}
