//! Named counters and latency histograms for reporting experiments.
//!
//! Several of the paper's results are expressed as call-count reductions
//! ("overall listFile calls is reduced to less than 40%", "almost 90% of
//! getFileInfo calls could be reduced", §VII). Simulators increment counters
//! here; experiments snapshot and compare them. The latency CDFs and
//! crossover plots (§V, §VI) need distributions rather than counts, so
//! [`Histogram`] keeps log-bucketed samples with `p(q)` quantile queries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Canonical counter and histogram names.
///
/// Every counter recorded by a library crate lives here, so a typo'd name
/// becomes a compile error instead of a counter that silently reads 0.
pub mod names {
    /// Connector splits scheduled by the local executor.
    pub const EXEC_SPLITS: &str = "exec.splits";
    /// Rows produced by table scans.
    pub const EXEC_ROWS_SCANNED: &str = "exec.rows_scanned";
    /// Fences loaded into the geospatial QuadTree index.
    pub const EXEC_GEO_INDEX_FENCES: &str = "exec.geo_index_fences";
    /// `st_contains` evaluations performed by the geo join.
    pub const EXEC_GEO_CONTAINS_CALLS: &str = "exec.geo_contains_calls";

    /// Spill files written by blocking operators.
    pub const SPILL_FILES: &str = "spill.files";
    /// Bytes written to spill storage.
    pub const SPILL_BYTES_WRITTEN: &str = "spill.bytes_written";
    /// Peak bytes reserved by a query against its memory pool.
    pub const MEMORY_RESERVED_PEAK: &str = "memory.reserved_peak";

    /// Queries that had to wait in the admission queue (0/1 per query).
    pub const ADMISSION_QUEUED: &str = "admission.queued";
    /// Virtual milliseconds a query waited for admission.
    pub const ADMISSION_WAIT_VIRTUAL_MS: &str = "admission.wait_virtual_ms";

    /// Queries a cluster started.
    pub const CLUSTER_QUERIES: &str = "cluster.queries";
    /// Distinct scan tasks (splits) a cluster scheduled.
    pub const CLUSTER_TASKS: &str = "cluster.tasks";
    /// Queries that started and then died.
    pub const CLUSTER_QUERIES_FAILED: &str = "cluster.queries_failed";
    /// Queries refused at the door (maintenance drain, full queue).
    pub const CLUSTER_QUERIES_REJECTED: &str = "cluster.queries_rejected";
    /// Scheduling rounds in which a worker failed at least one task.
    pub const CLUSTER_WORKER_FAILURES: &str = "cluster.worker_failures";
    /// Splits reassigned to surviving workers after retryable failures.
    pub const CLUSTER_SPLIT_RETRIES: &str = "cluster.split_retries";
    /// Workers quarantined by the consecutive-failure blacklist.
    pub const CLUSTER_BLACKLISTED_WORKERS: &str = "cluster.blacklisted_workers";
    /// Scan fragments whose sibling-runtime yardstick was pre-seeded from a
    /// previous run of the same plan fingerprint (in-wave speculation).
    pub const CLUSTER_SPECULATION_SEEDED: &str = "cluster.speculation_seeded_fragments";
    /// Duplicate attempts launched for straggling splits.
    pub const CLUSTER_SPECULATIVE_LAUNCHES: &str = "cluster.speculative_launches";
    /// Speculative attempts that finished before the original.
    pub const CLUSTER_SPECULATIVE_WINS: &str = "cluster.speculative_wins";
    /// Speculative attempts cancelled or failed after the original won.
    pub const CLUSTER_SPECULATIVE_WASTED: &str = "cluster.speculative_wasted";
    /// Exchange deliveries retried after a mid-stream tear.
    pub const CLUSTER_EXCHANGE_RETRIES: &str = "cluster.exchange_retries";
    /// Workers that completed the graceful decommission lifecycle
    /// (Active → Draining → Decommissioned) and left the fleet.
    pub const CLUSTER_WORKERS_DECOMMISSIONED: &str = "cluster.workers_decommissioned";
    /// Queued splits a draining worker handed off to surviving workers.
    pub const CLUSTER_SPLITS_HANDED_OFF: &str = "cluster.splits_handed_off";
    /// Splits the affinity scheduler placed on a ring successor because
    /// the owner's memory headroom could not fit another split.
    pub const CLUSTER_SPLITS_DIVERTED: &str = "cluster.splits_diverted";
    /// Fragment-cache entries migrated to the consistent successor before
    /// a draining worker left.
    pub const CLUSTER_CACHE_ENTRIES_MIGRATED: &str = "cluster.cache_entries_migrated";
    /// Workers abruptly lost to a spot-instance revocation.
    pub const CLUSTER_WORKERS_REVOKED: &str = "cluster.workers_revoked";
    /// Autoscaler scale-out actions (batches of workers added).
    pub const CLUSTER_SCALE_OUTS: &str = "cluster.autoscaler_scale_outs";
    /// Autoscaler scale-in actions (workers gracefully decommissioned).
    pub const CLUSTER_SCALE_INS: &str = "cluster.autoscaler_scale_ins";
    /// Workers the autoscaler added across all scale-out actions.
    pub const CLUSTER_SCALE_OUT_WORKERS: &str = "cluster.autoscaler_workers_added";

    /// Redirects the federation gateway resolved.
    pub const GATEWAY_REDIRECTS: &str = "gateway.redirects";
    /// Redirects that fell back because the primary cluster was draining.
    pub const GATEWAY_REROUTED_MAINTENANCE: &str = "gateway.rerouted_maintenance";
    /// Queries the gateway failed over to a healthy sibling cluster.
    pub const GATEWAY_RETRIED_QUERIES: &str = "gateway.retried_queries";
    /// Depth-aware submits steered away from a loaded primary cluster.
    pub const GATEWAY_LOAD_BALANCED_ROUTES: &str = "gateway.load_balanced_routes";
    /// Submits routed past a cluster whose admission lanes were saturated
    /// (the next admit would have been refused outright).
    pub const GATEWAY_SKIPPED_SATURATED: &str = "gateway.skipped_saturated";

    /// Fragment-result-cache hits.
    pub const FRC_HITS: &str = "frc.hits";
    /// Fragment-result-cache misses.
    pub const FRC_MISSES: &str = "frc.misses";

    /// Data-cache (worker-local block cache) hits.
    pub const DC_HITS: &str = "dc.hits";
    /// Data-cache misses.
    pub const DC_MISSES: &str = "dc.misses";
    /// Remote-storage bytes the data cache served locally instead.
    pub const DC_BYTES_SAVED: &str = "dc.bytes_saved";

    /// File-list-cache hits.
    pub const FLC_HITS: &str = "flc.hits";
    /// File-list-cache misses.
    pub const FLC_MISSES: &str = "flc.misses";
    /// Listings that bypassed the cache because the partition was open.
    pub const FLC_BYPASS_OPEN_PARTITION: &str = "flc.bypass_open_partition";

    /// File-handle (footer) cache hits.
    pub const FHC_HITS: &str = "fhc.hits";
    /// File-handle (footer) cache misses.
    pub const FHC_MISSES: &str = "fhc.misses";
    /// Stripe-footer cache hits.
    pub const FTC_HITS: &str = "ftc.hits";
    /// Stripe-footer cache misses.
    pub const FTC_MISSES: &str = "ftc.misses";

    /// Distributed column-chunk data-tier hits.
    pub const DIST_DATA_HITS: &str = "dist.data_hits";
    /// Distributed column-chunk data-tier misses.
    pub const DIST_DATA_MISSES: &str = "dist.data_misses";
    /// Distributed data-tier entries evicted by LRU pressure.
    pub const DIST_DATA_EVICTIONS: &str = "dist.data_evictions";
    /// Puts the owner-aware admission policy refused (wrong worker).
    pub const DIST_DATA_REJECTED: &str = "dist.data_rejected";
    /// Hot-key copies admitted at the second-choice replica.
    pub const DIST_DATA_REPLICATED: &str = "dist.data_replicated";
    /// Distributed metadata-tier hits.
    pub const DIST_META_HITS: &str = "dist.meta_hits";
    /// Distributed metadata-tier misses (absent, expired, or stale).
    pub const DIST_META_MISSES: &str = "dist.meta_misses";
    /// Metadata entries refused because their TTL had expired.
    pub const DIST_META_EXPIRED: &str = "dist.meta_expired";
    /// Metadata entries refused because their table version was stale.
    pub const DIST_META_STALE: &str = "dist.meta_stale";
    /// Table-version bumps (schema changes, partition adds).
    pub const DIST_META_INVALIDATIONS: &str = "dist.meta_invalidations";
    /// Entries migrated to their ring successor on worker removal.
    pub const DIST_REMAPPED: &str = "dist.remapped_entries";
    /// Entries dropped with an abruptly revoked worker.
    pub const DIST_DROPPED: &str = "dist.dropped_entries";
    /// Key-only accesses the shadow cache recorded.
    pub const SHADOW_ACCESSES: &str = "shadow.accesses";

    /// Partitions the Hive connector pruned via partition filters.
    pub const HIVE_PARTITIONS_PRUNED: &str = "hive.partitions_pruned";
    /// Leaf column values the Hive connector decoded.
    pub const HIVE_LEAVES_DECODED: &str = "hive.leaves_decoded";
    /// Row groups skipped by min/max statistics.
    pub const HIVE_ROW_GROUPS_SKIPPED: &str = "hive.row_groups_skipped";

    /// Statements executed against the simulated MySQL metastore.
    pub const MYSQL_STATEMENTS: &str = "mysql.statements";
    /// Rows the MySQL connector scanned server-side.
    pub const MYSQL_ROWS_SCANNED: &str = "mysql.rows_scanned";
    /// Rows the MySQL connector streamed to the engine.
    pub const MYSQL_ROWS_STREAMED: &str = "mysql.rows_streamed";

    /// Queries answered natively by the realtime store.
    pub const RT_NATIVE_QUERIES: &str = "rt.native_queries";
    /// Rows matched by realtime-store index lookups.
    pub const RT_ROWS_MATCHED: &str = "rt.rows_matched";
    /// Rows the realtime connector streamed to the engine.
    pub const RT_ROWS_STREAMED: &str = "rt.rows_streamed";

    /// `listFiles` calls against the simulated HDFS namenode.
    pub const HDFS_LIST_FILES: &str = "hdfs.list_files";
    /// `getFileInfo` calls against the simulated HDFS namenode.
    pub const HDFS_GET_FILE_INFO: &str = "hdfs.get_file_info";
    /// HDFS read operations.
    pub const HDFS_READ_OPS: &str = "hdfs.read_ops";
    /// Bytes read from HDFS.
    pub const HDFS_READ_BYTES: &str = "hdfs.read_bytes";
    /// HDFS write operations.
    pub const HDFS_WRITE_OPS: &str = "hdfs.write_ops";
    /// HDFS delete operations.
    pub const HDFS_DELETE_OPS: &str = "hdfs.delete_ops";

    /// Requests issued to the simulated S3 service.
    pub const S3_REQUESTS: &str = "s3.requests";
    /// S3 requests that were answered with an injected fault.
    pub const S3_FAULTS_INJECTED: &str = "s3.faults_injected";
    /// Bytes downloaded from S3 (GET side).
    pub const S3_BYTES_OUT: &str = "s3.bytes_out";
    /// Bytes uploaded to S3 (PUT side).
    pub const S3_BYTES_IN: &str = "s3.bytes_in";
    /// Retries performed by the S3 filesystem's backoff loop.
    pub const S3FS_RETRIES: &str = "s3fs.retries";
    /// Virtual nanoseconds spent in exponential backoff against S3.
    pub const S3FS_BACKOFF_NANOS: &str = "s3fs.backoff_nanos";
    /// Multipart uploads started by the S3 filesystem.
    pub const S3FS_MULTIPART_UPLOADS: &str = "s3fs.multipart_uploads";
    /// Seeks issued through the buffered S3 reader.
    pub const S3FS_SEEKS: &str = "s3fs.seeks";
    /// Seeks satisfied from the read-ahead buffer without a refetch.
    pub const S3FS_SEEK_FETCHES_AVOIDED: &str = "s3fs.seek_fetches_avoided";

    /// Histogram: end-to-end virtual query latency on a cluster, in µs.
    pub const HIST_CLUSTER_QUERY_LATENCY_US: &str = "cluster.query_latency_us";
    /// Histogram: virtual backoff waited between split retry rounds, in µs.
    pub const HIST_CLUSTER_RETRY_BACKOFF_US: &str = "cluster.retry_backoff_us";
    /// Histogram: virtual runtime of completed scan tasks, in µs — the
    /// sibling distribution the speculation quantile rule consults.
    pub const HIST_CLUSTER_TASK_RUNTIME_US: &str = "cluster.task_runtime_us";
    /// Histogram: virtual milliseconds queries waited for admission.
    pub const HIST_ADMISSION_QUEUE_WAIT_MS: &str = "admission.queue_wait_ms";
    /// Histogram: end-to-end virtual latency of gateway-submitted queries, µs.
    pub const HIST_GATEWAY_QUERY_LATENCY_US: &str = "gateway.query_latency_us";
    /// Histogram: admission-queue depth observed at each autoscaler
    /// evaluation tick — the hysteresis signal.
    pub const HIST_CLUSTER_QUEUE_DEPTH: &str = "cluster.autoscaler_queue_depth";

    /// Time series: per-worker busy fraction (percent of the sampling
    /// window spent running tasks), one series per worker id.
    pub const TS_WORKER_BUSY_PCT: &str = "telemetry.worker_busy_pct";
    /// Time series: mean busy fraction across the active fleet, percent.
    pub const TS_FLEET_BUSY_PCT: &str = "telemetry.fleet_busy_pct";
    /// Time series: admission-queue depth at each telemetry snapshot.
    pub const TS_QUEUE_DEPTH: &str = "telemetry.queue_depth";
    /// Time series: cluster memory-pool utilization, percent of budget
    /// (0 when the pool is unbounded).
    pub const TS_MEMORY_UTIL_PCT: &str = "telemetry.memory_util_pct";
    /// Time series: fragment-result-cache hit rate, percent of lookups.
    pub const TS_CACHE_HIT_PCT: &str = "telemetry.cache_hit_pct";
    /// Time series: distributed data-tier hit rate, percent of lookups
    /// (sampled only when the distributed cache is configured).
    pub const TS_DIST_CACHE_HIT_PCT: &str = "telemetry.dist_cache_hit_pct";
    /// Gauge: entries resident across every distributed data-tier shard.
    pub const GAUGE_DIST_CACHE_ENTRIES: &str = "telemetry.dist_cache_entries";
    /// Gauge: most recent fleet-mean busy fraction, percent — the signal
    /// the utilization-aware autoscaler reads between snapshots.
    pub const GAUGE_FLEET_BUSY_PCT: &str = "telemetry.fleet_busy_now_pct";
    /// Gauge: workers in the `Active` lifecycle at the last snapshot.
    pub const GAUGE_ACTIVE_WORKERS: &str = "telemetry.active_workers";
    /// Histogram: fleet busy-fraction observed at each autoscaler
    /// evaluation tick — the utilization hysteresis signal.
    pub const HIST_CLUSTER_BUSY_PCT: &str = "cluster.autoscaler_busy_pct";

    /// Queries the workload simulator injected (arrival events).
    pub const SIM_ARRIVALS: &str = "sim.arrivals";
    /// Queries the workload simulator ran to completion.
    pub const SIM_COMPLETED: &str = "sim.completed";
    /// Simulated queries that failed (should be 0 in a fault-free workload).
    pub const SIM_FAILED: &str = "sim.failed";
    /// Histogram: virtual end-to-end latency (queue wait + service) of
    /// simulated queries, in µs, recorded per tenant class.
    pub const HIST_SIM_LATENCY_US: &str = "sim.latency_us";
    /// Histogram: virtual time simulated queries spent queued before
    /// dispatch, in µs.
    pub const HIST_SIM_QUEUE_WAIT_US: &str = "sim.queue_wait_us";
}

/// A set of named, thread-safe monotonically increasing counters.
///
/// Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: Arc<RwLock<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl CounterSet {
    /// New, empty counter set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        let mut write = self.counters.write();
        write.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))).clone()
    }

    /// Increment `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.read().get(name).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.read().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }

    /// Reset every counter to zero (between experiment phases).
    ///
    /// Keeps the counter names registered; a later [`CounterSet::snapshot`]
    /// still lists them at value 0. Use [`CounterSet::clear`] to also drop
    /// the names so a new phase's snapshot doesn't carry stale keys.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Drop every counter, names included.
    ///
    /// Unlike [`CounterSet::reset`], a subsequent snapshot is empty until
    /// new counters are recorded — use this between experiment phases so
    /// phase-B reports don't inherit phase-A keys.
    pub fn clear(&self) {
        self.counters.write().clear();
    }
}

/// A log₂-bucketed latency/size histogram with quantile queries.
///
/// Values land in bucket `⌈log₂(v+1)⌉`: bucket 0 holds the value 0 and
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i − 1]`. Quantiles are answered to
/// within one bucket (≤ 2× relative error), clamped to the observed
/// min/max so `p(0) == min` and `p(1) == max` exactly. Merging two
/// histograms adds buckets element-wise, which makes `merge` commutative
/// and associative — safe to combine per-worker histograms in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded observations, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// rank-`⌈q·count⌉` observation, clamped to `[min, max]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i: 0 for bucket 0, else 2^i − 1.
                let upper = if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (element-wise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A fixed-interval time series over a bounded ring of buckets.
///
/// Samples are stamped with a *virtual* instant (always taken from a
/// `SimClock`, never the wall clock) and land in bucket
/// `⌊at / interval⌋`. Buckets within one interval accumulate; when the
/// ring exceeds its capacity the oldest buckets fall off the front, so the
/// series always covers the most recent `capacity · interval` of virtual
/// time. A sample older than the retained window is dropped — re-recording
/// the past would make the series order-dependent.
///
/// Merging adds buckets element-wise over *absolute* bucket indexes and
/// keeps the last `capacity` buckets ending at the later series' end —
/// commutative and associative by construction, like [`Histogram::merge`],
/// so per-worker series can be folded in any order. The digest folds the
/// canonical state (interval, window start, bucket values, sample count)
/// with the same FNV-1a the trace digests use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval_us: u64,
    capacity: usize,
    /// Absolute index of `values[0]` (bucket 0 starts at virtual t = 0).
    first: u64,
    values: Vec<u64>,
    samples: u64,
}

impl TimeSeries {
    /// New, empty series: `capacity` buckets of `interval_us` each.
    /// Zero-valued parameters are clamped to 1.
    pub fn new(interval_us: u64, capacity: usize) -> TimeSeries {
        TimeSeries {
            interval_us: interval_us.max(1),
            capacity: capacity.max(1),
            first: 0,
            values: Vec::new(),
            samples: 0,
        }
    }

    /// The bucket width in virtual microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Maximum number of retained buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples accepted over the series' lifetime (dropped-as-too-old
    /// samples are not counted; wrapped-away buckets still are).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Retained bucket count (≤ capacity).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// No buckets retained?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Record one observation at virtual instant `at`. Values landing in
    /// the same bucket accumulate; an observation older than the retained
    /// window is dropped.
    pub fn record(&mut self, at: std::time::Duration, value: u64) {
        let micros = u64::try_from(at.as_micros()).unwrap_or(u64::MAX);
        let bucket = micros / self.interval_us;
        if self.values.is_empty() {
            self.first = bucket;
            self.values.push(value);
            self.samples += 1;
            return;
        }
        if bucket < self.first {
            return; // older than the retained window
        }
        let idx = (bucket - self.first) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0);
        }
        self.values[idx] = self.values[idx].saturating_add(value);
        self.samples += 1;
        self.evict();
    }

    fn evict(&mut self) {
        if self.values.len() > self.capacity {
            let drop = self.values.len() - self.capacity;
            self.values.drain(..drop);
            self.first += drop as u64;
        }
    }

    /// Retained points as `(bucket_start_us, value)` in time order.
    pub fn points(&self) -> Vec<(u64, u64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| ((self.first + i as u64) * self.interval_us, v))
            .collect()
    }

    /// Largest retained bucket value, or 0 when empty.
    pub fn peak(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Fold another series into this one (element-wise bucket add over
    /// absolute indexes; both series must share `interval_us`). The result
    /// keeps the last `capacity` buckets ending at the later end.
    pub fn merge(&mut self, other: &TimeSeries) {
        debug_assert_eq!(self.interval_us, other.interval_us, "merging mismatched intervals");
        if other.values.is_empty() {
            return;
        }
        if self.values.is_empty() {
            let samples = self.samples + other.samples;
            *self = other.clone();
            self.samples = samples;
            return;
        }
        let first = self.first.min(other.first);
        let end =
            (self.first + self.values.len() as u64).max(other.first + other.values.len() as u64);
        let mut values = vec![0u64; (end - first) as usize];
        for (i, &v) in self.values.iter().enumerate() {
            values[(self.first - first) as usize + i] = v;
        }
        for (i, &v) in other.values.iter().enumerate() {
            let slot = &mut values[(other.first - first) as usize + i];
            *slot = slot.saturating_add(v);
        }
        self.first = first;
        self.values = values;
        self.samples += other.samples;
        self.evict();
    }

    /// Canonical FNV-1a digest of the series state — bit-identical across
    /// same-seed runs, like trace digests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.interval_us);
        h.write(self.first);
        h.write(self.values.len() as u64);
        for &v in &self.values {
            h.write(v);
        }
        h.write(self.samples);
        h.finish()
    }
}

/// The FNV-1a fold every digest in the workspace shares.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl Fnv {
    /// Start at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one 64-bit word, byte by byte.
    pub fn write(&mut self, value: u64) {
        for b in value.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a string's bytes.
    pub fn write_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A set of named, last-write-wins gauges. Cloning shares the data.
#[derive(Debug, Clone, Default)]
pub struct GaugeSet {
    inner: Arc<RwLock<BTreeMap<String, u64>>>,
}

impl GaugeSet {
    /// New, empty gauge set.
    pub fn new() -> GaugeSet {
        GaugeSet::default()
    }

    /// Set `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.inner.write().insert(name.to_string(), value);
    }

    /// Current value of `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.inner.read().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all gauges.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner.read().clone()
    }
}

/// A set of named, shared time series with a common interval/capacity.
/// Cloning shares the underlying data.
#[derive(Debug, Clone)]
pub struct TimeSeriesSet {
    interval_us: u64,
    capacity: usize,
    inner: Arc<RwLock<BTreeMap<String, TimeSeries>>>,
}

impl TimeSeriesSet {
    /// New, empty set; every series it creates uses `capacity` buckets of
    /// `interval_us` each.
    pub fn new(interval_us: u64, capacity: usize) -> TimeSeriesSet {
        TimeSeriesSet {
            interval_us: interval_us.max(1),
            capacity: capacity.max(1),
            inner: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// Record one observation under `name` at virtual instant `at`.
    pub fn sample(&self, name: &str, at: std::time::Duration, value: u64) {
        self.inner
            .write()
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(self.interval_us, self.capacity))
            .record(at, value);
    }

    /// Record one observation under the `id`-keyed variant of `name`
    /// (`name[id]`) — the per-worker form of [`TimeSeriesSet::sample`].
    pub fn sample_for(&self, name: &str, id: u32, at: std::time::Duration, value: u64) {
        let keyed = format!("{name}[{id}]");
        self.inner
            .write()
            .entry(keyed)
            .or_insert_with(|| TimeSeries::new(self.interval_us, self.capacity))
            .record(at, value);
    }

    /// Copy of the series for `name` (empty if never sampled).
    pub fn get(&self, name: &str) -> TimeSeries {
        self.inner
            .read()
            .get(name)
            .cloned()
            .unwrap_or_else(|| TimeSeries::new(self.interval_us, self.capacity))
    }

    /// Copy of the `id`-keyed series for `name`.
    pub fn get_for(&self, name: &str, id: u32) -> TimeSeries {
        self.get(&format!("{name}[{id}]"))
    }

    /// Snapshot of all series, in name order.
    pub fn snapshot(&self) -> BTreeMap<String, TimeSeries> {
        self.inner.read().clone()
    }

    /// Canonical digest over every named series, folded in BTree order.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, ts) in self.inner.read().iter() {
            h.write_str(name);
            h.write(ts.digest());
        }
        h.finish()
    }
}

/// A set of named, shared histograms. Cloning shares the underlying data.
#[derive(Debug, Clone, Default)]
pub struct HistogramSet {
    inner: Arc<RwLock<BTreeMap<String, Histogram>>>,
}

impl HistogramSet {
    /// New, empty histogram set.
    pub fn new() -> HistogramSet {
        HistogramSet::default()
    }

    /// Record one observation under `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.inner.write().entry(name.to_string()).or_default().record(value);
    }

    /// Copy of the histogram for `name` (empty if never recorded).
    pub fn get(&self, name: &str) -> Histogram {
        self.inner.read().get(name).cloned().unwrap_or_default()
    }

    /// Snapshot of all histograms.
    pub fn snapshot(&self) -> BTreeMap<String, Histogram> {
        self.inner.read().clone()
    }

    /// Drop every histogram, names included.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = CounterSet::new();
        m.incr("list_files");
        m.add("list_files", 4);
        m.incr("get_file_info");
        assert_eq!(m.get("list_files"), 5);
        assert_eq!(m.get("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(snap["list_files"], 5);
        assert_eq!(snap["get_file_info"], 1);
    }

    #[test]
    fn clones_share_state_and_reset_works() {
        let m = CounterSet::new();
        let alias = m.clone();
        alias.incr("x");
        assert_eq!(m.get("x"), 1);
        m.reset();
        assert_eq!(alias.get("x"), 0);
    }

    #[test]
    fn clear_drops_stale_names_while_reset_keeps_them() {
        let m = CounterSet::new();
        m.incr("phase_a.calls");
        m.reset();
        assert!(m.snapshot().contains_key("phase_a.calls"));
        m.clear();
        assert!(m.snapshot().is_empty());
        m.incr("phase_b.calls");
        assert_eq!(m.snapshot().len(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // Any quantile lies within [min, max] and within 2× of a real value.
        let p50 = h.quantile(0.5);
        assert!((1..=7).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn histogram_merge_matches_bulk_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 9, 12] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_set_shares_state() {
        let set = HistogramSet::new();
        let alias = set.clone();
        alias.record("lat", 10);
        alias.record("lat", 20);
        assert_eq!(set.get("lat").count(), 2);
        assert_eq!(set.snapshot().len(), 1);
        set.clear();
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn time_series_buckets_accumulate_and_wrap() {
        use std::time::Duration;
        let mut ts = TimeSeries::new(100, 4);
        ts.record(Duration::from_micros(10), 1);
        ts.record(Duration::from_micros(90), 2); // same bucket
        ts.record(Duration::from_micros(250), 5);
        assert_eq!(ts.points(), vec![(0, 3), (100, 0), (200, 5)]);
        assert_eq!(ts.samples(), 3);
        // advancing past capacity drops the oldest buckets
        ts.record(Duration::from_micros(550), 7);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.points()[0], (200, 5));
        assert_eq!(ts.points()[3], (500, 7));
        // a sample older than the window is dropped, not re-bucketed
        let before = ts.clone();
        ts.record(Duration::from_micros(10), 9);
        assert_eq!(ts, before);
        assert_eq!(ts.peak(), 7);
    }

    #[test]
    fn time_series_merge_matches_bulk_recording() {
        use std::time::Duration;
        let mut a = TimeSeries::new(50, 8);
        let mut b = TimeSeries::new(50, 8);
        let mut all = TimeSeries::new(50, 8);
        for (us, v) in [(0u64, 3u64), (120, 4)] {
            a.record(Duration::from_micros(us), v);
            all.record(Duration::from_micros(us), v);
        }
        for (us, v) in [(60u64, 1u64), (300, 9)] {
            b.record(Duration::from_micros(us), v);
            all.record(Duration::from_micros(us), v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.digest(), all.digest());
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let g = GaugeSet::new();
        let alias = g.clone();
        alias.set_gauge("busy", 40);
        alias.set_gauge("busy", 75);
        assert_eq!(g.gauge("busy"), 75);
        assert_eq!(g.gauge("missing"), 0);
    }

    #[test]
    fn time_series_set_keys_per_worker_series() {
        use std::time::Duration;
        let set = TimeSeriesSet::new(100, 16);
        set.sample("fleet", Duration::from_micros(10), 2);
        set.sample_for("busy", 3, Duration::from_micros(10), 50);
        set.sample_for("busy", 7, Duration::from_micros(10), 90);
        assert_eq!(set.get("fleet").samples(), 1);
        assert_eq!(set.get_for("busy", 3).points(), vec![(0, 50)]);
        assert_eq!(set.get_for("busy", 7).points(), vec![(0, 90)]);
        assert_eq!(set.snapshot().len(), 3);
        // digest is stable across identical replays
        let replay = TimeSeriesSet::new(100, 16);
        replay.sample("fleet", Duration::from_micros(10), 2);
        replay.sample_for("busy", 3, Duration::from_micros(10), 50);
        replay.sample_for("busy", 7, Duration::from_micros(10), 90);
        assert_eq!(set.digest(), replay.digest());
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let m = CounterSet::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr("hits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.get("hits"), 8000);
    }
}
