//! Named counters for reporting call-count experiments.
//!
//! Several of the paper's results are expressed as call-count reductions
//! ("overall listFile calls is reduced to less than 40%", "almost 90% of
//! getFileInfo calls could be reduced", §VII). Simulators increment counters
//! here; experiments snapshot and compare them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A set of named, thread-safe monotonically increasing counters.
///
/// Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counters: Arc<RwLock<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl CounterSet {
    /// New, empty counter set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        let mut write = self.counters.write();
        write.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))).clone()
    }

    /// Increment `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.read().get(name).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.read().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }

    /// Reset every counter to zero (between experiment phases).
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = CounterSet::new();
        m.incr("list_files");
        m.add("list_files", 4);
        m.incr("get_file_info");
        assert_eq!(m.get("list_files"), 5);
        assert_eq!(m.get("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(snap["list_files"], 5);
        assert_eq!(snap["get_file_info"], 1);
    }

    #[test]
    fn clones_share_state_and_reset_works() {
        let m = CounterSet::new();
        let alias = m.clone();
        alias.incr("x");
        assert_eq!(m.get("x"), 1);
        m.reset();
        assert_eq!(alias.get("x"), 0);
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let m = CounterSet::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr("hits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.get("hits"), 8000);
    }
}
