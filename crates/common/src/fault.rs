//! Deterministic fault injection for chaos experiments.
//!
//! The paper's operational claims (§VIII gateway re-routing, §IX elasticity,
//! §XII lessons) are about *surviving* bad hosts and node loss, not just
//! about the happy path. To test that reproducibly, this module provides a
//! seeded [`FaultInjector`] the cluster consults at every task start through
//! a cheap [`Arc`] handle. Faults are declared up front as a [`FaultPlan`]
//! (crash worker W at virtual time T, fail the k-th task on worker W,
//! probabilistic task faults at rate p) and every decision is a pure
//! function of `(seed, worker, per-worker task sequence)` plus the virtual
//! [`SimClock`](crate::SimClock) — never the wall clock and never a shared
//! PRNG stream, so the same seed replays the same fault schedule no matter
//! how the host interleaves worker threads.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One declared fault. Task sequence numbers are **1-based and
/// per-worker**: a worker's first task is sequence 1.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Crash worker `worker_id` at the first task it starts at or after
    /// virtual time `at` (fires once).
    CrashAt {
        /// Target worker.
        worker_id: u32,
        /// Virtual time threshold.
        at: Duration,
    },
    /// Crash worker `worker_id` when it starts its `task_seq`-th task.
    CrashOnTask {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
    },
    /// Transiently fail the `task_seq`-th task on worker `worker_id` (the
    /// worker survives — the flaky-host case).
    FailTask {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
    },
    /// Every task on every worker fails with probability `rate`, decided by
    /// a stateless hash of `(seed, worker, task sequence)` so the draw is
    /// reproducible under any thread interleaving.
    FailRate {
        /// Probability in `[0, 1]` that a task fails.
        rate: f64,
    },
}

/// A declarative set of faults to inject, built up fluently:
///
/// ```
/// use std::time::Duration;
/// use presto_common::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash_at(0, Duration::from_secs(5))
///     .fail_task(2, 1)
///     .fail_rate(0.05);
/// assert_eq!(plan.specs().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The declared faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Crash `worker_id` at the first task it starts at/after virtual `at`.
    pub fn crash_at(mut self, worker_id: u32, at: Duration) -> FaultPlan {
        self.specs.push(FaultSpec::CrashAt { worker_id, at });
        self
    }

    /// Crash `worker_id` when it starts its `task_seq`-th task (1-based).
    pub fn crash_on_task(mut self, worker_id: u32, task_seq: u64) -> FaultPlan {
        self.specs.push(FaultSpec::CrashOnTask { worker_id, task_seq });
        self
    }

    /// Transiently fail the `task_seq`-th task on `worker_id` (1-based).
    pub fn fail_task(mut self, worker_id: u32, task_seq: u64) -> FaultPlan {
        self.specs.push(FaultSpec::FailTask { worker_id, task_seq });
        self
    }

    /// Fail every task with probability `rate`.
    pub fn fail_rate(mut self, rate: f64) -> FaultPlan {
        self.specs.push(FaultSpec::FailRate { rate });
        self
    }
}

/// What the injector decided for one task start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Run the task normally.
    None,
    /// The task fails transiently; the worker stays up.
    FailTask,
    /// The worker dies; this task and everything in flight on the worker
    /// is lost.
    CrashWorker,
}

/// Per-injector mutable state, guarded by one mutex so sequence draws are
/// atomic with the once-only bookkeeping of timed crashes.
#[derive(Default)]
struct FaultState {
    /// Next 1-based task sequence per worker.
    task_seq: HashMap<u32, u64>,
    /// Which [`FaultSpec::CrashAt`] entries already fired (by spec index).
    fired: Vec<bool>,
}

/// The seeded fault-injection harness.
///
/// Sites call [`FaultInjector::on_task_start`] once per task; the injector
/// advances that worker's private sequence counter and evaluates the plan.
/// Construction returns an [`Arc`] so the handle is cheap to share with
/// every scheduler and worker thread. [`FaultInjector::disabled`] is the
/// no-fault default and short-circuits before taking any lock.
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    crashes_injected: AtomicU64,
    task_faults_injected: AtomicU64,
}

impl FaultInjector {
    /// An injector evaluating `plan` under `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> Arc<FaultInjector> {
        let fired = vec![false; plan.specs.len()];
        Arc::new(FaultInjector {
            seed,
            plan,
            state: Mutex::new(FaultState { task_seq: HashMap::new(), fired }),
            crashes_injected: AtomicU64::new(0),
            task_faults_injected: AtomicU64::new(0),
        })
    }

    /// The no-fault injector (the production default).
    pub fn disabled() -> Arc<FaultInjector> {
        FaultInjector::new(0, FaultPlan::new())
    }

    /// Does the plan declare any fault at all?
    pub fn is_enabled(&self) -> bool {
        !self.plan.specs.is_empty()
    }

    /// Worker crashes injected so far.
    pub fn crashes_injected(&self) -> u64 {
        self.crashes_injected.load(Ordering::Relaxed)
    }

    /// Transient task faults injected so far.
    pub fn task_faults_injected(&self) -> u64 {
        self.task_faults_injected.load(Ordering::Relaxed)
    }

    /// Consult the plan for the task `worker_id` is about to start at
    /// virtual time `now`. Crash specs take precedence over transient
    /// faults; among crashes, timed ones fire before sequence-numbered ones.
    pub fn on_task_start(&self, worker_id: u32, now: Duration) -> FaultDecision {
        if !self.is_enabled() {
            return FaultDecision::None;
        }
        let mut state = self.state.lock();
        let seq_entry = state.task_seq.entry(worker_id).or_insert(0);
        *seq_entry += 1;
        let seq = *seq_entry;

        let mut decision = FaultDecision::None;
        for (idx, spec) in self.plan.specs.iter().enumerate() {
            let hit = match *spec {
                FaultSpec::CrashAt { worker_id: w, at } => {
                    if w == worker_id && now >= at && !state.fired[idx] {
                        state.fired[idx] = true;
                        FaultDecision::CrashWorker
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::CrashOnTask { worker_id: w, task_seq } => {
                    if w == worker_id && task_seq == seq {
                        FaultDecision::CrashWorker
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::FailTask { worker_id: w, task_seq } => {
                    if w == worker_id && task_seq == seq {
                        FaultDecision::FailTask
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::FailRate { rate } => {
                    if unit_draw(self.seed, worker_id, seq) < rate {
                        FaultDecision::FailTask
                    } else {
                        FaultDecision::None
                    }
                }
            };
            // a crash dominates a transient fault for the same task
            if rank(hit) > rank(decision) {
                decision = hit;
            }
        }
        drop(state);
        match decision {
            FaultDecision::CrashWorker => {
                self.crashes_injected.fetch_add(1, Ordering::Relaxed);
            }
            FaultDecision::FailTask => {
                self.task_faults_injected.fetch_add(1, Ordering::Relaxed);
            }
            FaultDecision::None => {}
        }
        decision
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("specs", &self.plan.specs)
            .field("crashes_injected", &self.crashes_injected())
            .field("task_faults_injected", &self.task_faults_injected())
            .finish()
    }
}

fn rank(d: FaultDecision) -> u8 {
    match d {
        FaultDecision::None => 0,
        FaultDecision::FailTask => 1,
        FaultDecision::CrashWorker => 2,
    }
}

/// SplitMix64 finalizer: well-distributed 64-bit mixing of the
/// `(seed, worker, seq)` triple.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` that depends only on the triple — identical
/// under any thread interleaving.
fn unit_draw(seed: u64, worker_id: u32, seq: u64) -> f64 {
    let mixed = mix(seed ^ mix(u64::from(worker_id)) ^ mix(seq));
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for w in 0..4 {
            for _ in 0..100 {
                assert_eq!(inj.on_task_start(w, Duration::ZERO), FaultDecision::None);
            }
        }
        assert_eq!(inj.crashes_injected(), 0);
        assert_eq!(inj.task_faults_injected(), 0);
    }

    #[test]
    fn timed_crash_fires_once_at_virtual_time() {
        let inj = FaultInjector::new(7, FaultPlan::new().crash_at(1, Duration::from_secs(10)));
        // before T: nothing
        assert_eq!(inj.on_task_start(1, Duration::from_secs(9)), FaultDecision::None);
        // other workers never crash
        assert_eq!(inj.on_task_start(0, Duration::from_secs(11)), FaultDecision::None);
        // at/after T: exactly one crash
        assert_eq!(inj.on_task_start(1, Duration::from_secs(10)), FaultDecision::CrashWorker);
        assert_eq!(inj.on_task_start(1, Duration::from_secs(11)), FaultDecision::None);
        assert_eq!(inj.crashes_injected(), 1);
    }

    #[test]
    fn kth_task_faults_are_per_worker() {
        let inj = FaultInjector::new(7, FaultPlan::new().fail_task(2, 3).crash_on_task(0, 2));
        // worker 2: third task fails
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::FailTask);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        // worker 0: second task crashes it — its own counter, not worker 2's
        assert_eq!(inj.on_task_start(0, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(0, Duration::ZERO), FaultDecision::CrashWorker);
        assert_eq!(inj.task_faults_injected(), 1);
        assert_eq!(inj.crashes_injected(), 1);
    }

    #[test]
    fn rate_draws_are_deterministic_and_roughly_uniform() {
        let draws = |seed: u64| -> Vec<FaultDecision> {
            let inj = FaultInjector::new(seed, FaultPlan::new().fail_rate(0.25));
            (0..400).map(|i| inj.on_task_start(i % 4, Duration::ZERO)).collect()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed, same schedule");
        let hits = a.iter().filter(|d| **d == FaultDecision::FailTask).count();
        assert!((50..150).contains(&hits), "rate 0.25 over 400 draws, got {hits}");
        let c = draws(43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn rate_draws_ignore_thread_interleaving() {
        // Decisions for worker w depend only on w's own sequence numbers, so
        // drawing workers in a different global order changes nothing.
        let inj1 = FaultInjector::new(9, FaultPlan::new().fail_rate(0.5));
        let mut order1 = Vec::new();
        for w in [0u32, 1, 0, 1, 0, 1] {
            order1.push((w, inj1.on_task_start(w, Duration::ZERO)));
        }
        let inj2 = FaultInjector::new(9, FaultPlan::new().fail_rate(0.5));
        let mut order2 = Vec::new();
        for w in [1u32, 1, 1, 0, 0, 0] {
            order2.push((w, inj2.on_task_start(w, Duration::ZERO)));
        }
        let per_worker = |log: &[(u32, FaultDecision)], w: u32| -> Vec<FaultDecision> {
            log.iter().filter(|(x, _)| *x == w).map(|(_, d)| *d).collect()
        };
        assert_eq!(per_worker(&order1, 0), per_worker(&order2, 0));
        assert_eq!(per_worker(&order1, 1), per_worker(&order2, 1));
    }

    #[test]
    fn crash_dominates_transient_fault_on_same_task() {
        let inj = FaultInjector::new(1, FaultPlan::new().fail_task(3, 1).crash_on_task(3, 1));
        assert_eq!(inj.on_task_start(3, Duration::ZERO), FaultDecision::CrashWorker);
    }
}
