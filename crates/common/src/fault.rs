//! Deterministic fault injection for chaos experiments.
//!
//! The paper's operational claims (§VIII gateway re-routing, §IX elasticity,
//! §XII lessons) are about *surviving* bad hosts and node loss, not just
//! about the happy path. To test that reproducibly, this module provides a
//! seeded [`FaultInjector`] the cluster consults at every task start through
//! a cheap [`Arc`] handle. Faults are declared up front as a [`FaultPlan`]
//! (crash worker W at virtual time T, fail the k-th task on worker W,
//! probabilistic task faults at rate p) and every decision is a pure
//! function of `(seed, worker, per-worker task sequence)` plus the virtual
//! [`SimClock`](crate::SimClock) — never the wall clock and never a shared
//! PRNG stream, so the same seed replays the same fault schedule no matter
//! how the host interleaves worker threads.
//!
//! Beyond task-start faults, the plan can also fire **mid-stream**: scan
//! hooks ([`FaultInjector::on_scan_page`]) stall or tear a connector's page
//! stream partway through a split, and exchange hooks
//! ([`FaultInjector::on_exchange_page`]) do the same to pages in transit
//! between fragments. Page-level decisions are stateless — pure in
//! `(seed, worker, task ordinal, page ordinal)` for scans and
//! `(seed, fragment, page ordinal, delivery attempt)` for exchanges — so
//! they replay identically without any shared bookkeeping.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// One declared fault. Task sequence numbers are **1-based and
/// per-worker**: a worker's first task is sequence 1.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Crash worker `worker_id` at the first task it starts at or after
    /// virtual time `at` (fires once).
    CrashAt {
        /// Target worker.
        worker_id: u32,
        /// Virtual time threshold.
        at: Duration,
    },
    /// Crash worker `worker_id` when it starts its `task_seq`-th task.
    CrashOnTask {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
    },
    /// Transiently fail the `task_seq`-th task on worker `worker_id` (the
    /// worker survives — the flaky-host case).
    FailTask {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
    },
    /// Every task on every worker fails with probability `rate`, decided by
    /// a stateless hash of `(seed, worker, task sequence)` so the draw is
    /// reproducible under any thread interleaving.
    FailRate {
        /// Probability in `[0, 1]` that a task fails.
        rate: f64,
    },
    /// Stall the scan stream for `delay` of virtual time just before the
    /// `page_ordinal`-th page (1-based) of the `task_seq`-th task on worker
    /// `worker_id` — the slow-disk / hot-neighbour straggler case.
    StallScanPage {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
        /// 1-based page ordinal within the scan.
        page_ordinal: u64,
        /// Virtual-time stall to add to the scan.
        delay: Duration,
    },
    /// Tear the scan stream at the `page_ordinal`-th page of the
    /// `task_seq`-th task on worker `worker_id`: pages before the tear were
    /// produced, the rest of the split is lost mid-stream.
    TearScanPage {
        /// Target worker.
        worker_id: u32,
        /// 1-based task sequence number on that worker.
        task_seq: u64,
        /// 1-based page ordinal at which the stream tears.
        page_ordinal: u64,
    },
    /// Every scanned page stalls for `delay` with probability `rate`,
    /// decided by a stateless hash of `(seed, worker, task, page ordinal)`.
    ScanStallRate {
        /// Probability in `[0, 1]` that a page stalls.
        rate: f64,
        /// Virtual-time stall per hit.
        delay: Duration,
    },
    /// Every scanned page tears the stream with probability `rate`, decided
    /// by a stateless hash of `(seed, worker, task, page ordinal)`.
    ScanTearRate {
        /// Probability in `[0, 1]` that a page tears the stream.
        rate: f64,
    },
    /// Stall delivery of the `page_ordinal`-th page of fragment `fragment`'s
    /// exchange for `delay` of virtual time (fires on the first delivery
    /// attempt only, so a retried exchange proceeds at full speed).
    StallExchangePage {
        /// Producing fragment id.
        fragment: u32,
        /// 1-based page ordinal within the exchange.
        page_ordinal: u64,
        /// Virtual-time stall to add to delivery.
        delay: Duration,
    },
    /// Tear the exchange of fragment `fragment` at the `page_ordinal`-th
    /// page (first delivery attempt only — the retry succeeds).
    TearExchangePage {
        /// Producing fragment id.
        fragment: u32,
        /// 1-based page ordinal at which the exchange tears.
        page_ordinal: u64,
    },
    /// Every exchange page tears with probability `rate`, decided by a
    /// stateless hash of `(seed, fragment, page ordinal, delivery attempt)`
    /// — the attempt is in the draw so retries can succeed.
    ExchangeTearRate {
        /// Probability in `[0, 1]` that a page tears the exchange.
        rate: f64,
    },
    /// Revoke an entire worker class at virtual time `at` — the
    /// spot-instance storm. Unlike the task-start faults this spec is
    /// *polled*: the cluster calls [`FaultInjector::revocations_due`] as
    /// virtual time advances and abruptly loses every worker of the class
    /// the first time `now >= at` (fires once).
    RevokeClass {
        /// Worker class to revoke (e.g. `"spot"`).
        class: String,
        /// Virtual instant at which the class is lost.
        at: Duration,
    },
}

/// A declarative set of faults to inject, built up fluently:
///
/// ```
/// use std::time::Duration;
/// use presto_common::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash_at(0, Duration::from_secs(5))
///     .fail_task(2, 1)
///     .fail_rate(0.05);
/// assert_eq!(plan.specs().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The declared faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Crash `worker_id` at the first task it starts at/after virtual `at`.
    pub fn crash_at(mut self, worker_id: u32, at: Duration) -> FaultPlan {
        self.specs.push(FaultSpec::CrashAt { worker_id, at });
        self
    }

    /// Crash `worker_id` when it starts its `task_seq`-th task (1-based).
    pub fn crash_on_task(mut self, worker_id: u32, task_seq: u64) -> FaultPlan {
        self.specs.push(FaultSpec::CrashOnTask { worker_id, task_seq });
        self
    }

    /// Transiently fail the `task_seq`-th task on `worker_id` (1-based).
    pub fn fail_task(mut self, worker_id: u32, task_seq: u64) -> FaultPlan {
        self.specs.push(FaultSpec::FailTask { worker_id, task_seq });
        self
    }

    /// Fail every task with probability `rate`.
    pub fn fail_rate(mut self, rate: f64) -> FaultPlan {
        self.specs.push(FaultSpec::FailRate { rate });
        self
    }

    /// Stall the given scan page (1-based task and page ordinals) by `delay`.
    pub fn stall_scan_page(
        mut self,
        worker_id: u32,
        task_seq: u64,
        page_ordinal: u64,
        delay: Duration,
    ) -> FaultPlan {
        self.specs.push(FaultSpec::StallScanPage { worker_id, task_seq, page_ordinal, delay });
        self
    }

    /// Tear the scan stream at the given page (1-based ordinals).
    pub fn tear_scan_page(mut self, worker_id: u32, task_seq: u64, page_ordinal: u64) -> FaultPlan {
        self.specs.push(FaultSpec::TearScanPage { worker_id, task_seq, page_ordinal });
        self
    }

    /// Stall every scanned page by `delay` with probability `rate`.
    pub fn scan_stall_rate(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.specs.push(FaultSpec::ScanStallRate { rate, delay });
        self
    }

    /// Tear the scan stream at any page with probability `rate`.
    pub fn scan_tear_rate(mut self, rate: f64) -> FaultPlan {
        self.specs.push(FaultSpec::ScanTearRate { rate });
        self
    }

    /// Stall delivery of the given exchange page by `delay` (first attempt).
    pub fn stall_exchange_page(
        mut self,
        fragment: u32,
        page_ordinal: u64,
        delay: Duration,
    ) -> FaultPlan {
        self.specs.push(FaultSpec::StallExchangePage { fragment, page_ordinal, delay });
        self
    }

    /// Tear the given exchange at the given page (first attempt only).
    pub fn tear_exchange_page(mut self, fragment: u32, page_ordinal: u64) -> FaultPlan {
        self.specs.push(FaultSpec::TearExchangePage { fragment, page_ordinal });
        self
    }

    /// Tear any exchange page with probability `rate` (attempt-aware draw).
    pub fn exchange_tear_rate(mut self, rate: f64) -> FaultPlan {
        self.specs.push(FaultSpec::ExchangeTearRate { rate });
        self
    }

    /// Revoke every worker of `class` at virtual time `at` (fires once).
    pub fn revoke_class(mut self, class: &str, at: Duration) -> FaultPlan {
        self.specs.push(FaultSpec::RevokeClass { class: class.to_string(), at });
        self
    }

    /// Does the plan declare any [`FaultSpec::RevokeClass`] spec?
    pub fn has_revocations(&self) -> bool {
        self.specs.iter().any(|s| matches!(s, FaultSpec::RevokeClass { .. }))
    }
}

/// What the injector decided for one task start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Run the task normally.
    None,
    /// The task fails transiently; the worker stays up.
    FailTask,
    /// The worker dies; this task and everything in flight on the worker
    /// is lost.
    CrashWorker,
}

/// What the injector decided for one mid-stream page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// Deliver the page normally.
    None,
    /// Deliver the page after this much extra virtual time.
    Stall(Duration),
    /// The stream tears here: this page and everything after it is lost
    /// and the consumer sees a retryable failure.
    Tear,
}

/// A task admission ticket: the worker-local 1-based task ordinal the
/// injector assigned, plus its task-start decision. The ordinal keys all
/// later mid-stream draws for the task via
/// [`FaultInjector::on_scan_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskStart {
    /// 1-based per-worker task sequence number assigned to this task.
    pub seq: u64,
    /// The task-start fault decision.
    pub decision: FaultDecision,
}

/// Per-injector mutable state, guarded by one mutex so sequence draws are
/// atomic with the once-only bookkeeping of timed crashes.
#[derive(Default)]
struct FaultState {
    /// Next 1-based task sequence per worker.
    task_seq: HashMap<u32, u64>,
    /// Which [`FaultSpec::CrashAt`] entries already fired (by spec index).
    fired: Vec<bool>,
}

/// The seeded fault-injection harness.
///
/// Sites call [`FaultInjector::on_task_start`] once per task; the injector
/// advances that worker's private sequence counter and evaluates the plan.
/// Construction returns an [`Arc`] so the handle is cheap to share with
/// every scheduler and worker thread. [`FaultInjector::disabled`] is the
/// no-fault default and short-circuits before taking any lock.
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    crashes_injected: AtomicU64,
    task_faults_injected: AtomicU64,
    stalls_injected: AtomicU64,
    tears_injected: AtomicU64,
    revocations_injected: AtomicU64,
}

impl FaultInjector {
    /// An injector evaluating `plan` under `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> Arc<FaultInjector> {
        let fired = vec![false; plan.specs.len()];
        Arc::new(FaultInjector {
            seed,
            plan,
            state: Mutex::new(FaultState { task_seq: HashMap::new(), fired }),
            crashes_injected: AtomicU64::new(0),
            task_faults_injected: AtomicU64::new(0),
            stalls_injected: AtomicU64::new(0),
            tears_injected: AtomicU64::new(0),
            revocations_injected: AtomicU64::new(0),
        })
    }

    /// The no-fault injector (the production default).
    pub fn disabled() -> Arc<FaultInjector> {
        FaultInjector::new(0, FaultPlan::new())
    }

    /// Does the plan declare any fault at all?
    pub fn is_enabled(&self) -> bool {
        !self.plan.specs.is_empty()
    }

    /// Worker crashes injected so far.
    pub fn crashes_injected(&self) -> u64 {
        self.crashes_injected.load(Ordering::Relaxed)
    }

    /// Transient task faults injected so far.
    pub fn task_faults_injected(&self) -> u64 {
        self.task_faults_injected.load(Ordering::Relaxed)
    }

    /// Mid-stream page stalls injected so far (scan + exchange).
    pub fn stalls_injected(&self) -> u64 {
        self.stalls_injected.load(Ordering::Relaxed)
    }

    /// Mid-stream page tears injected so far (scan + exchange).
    pub fn tears_injected(&self) -> u64 {
        self.tears_injected.load(Ordering::Relaxed)
    }

    /// Worker-class revocations fired so far.
    pub fn revocations_injected(&self) -> u64 {
        self.revocations_injected.load(Ordering::Relaxed)
    }

    /// Does the plan declare any class revocation? Cheap enough to guard a
    /// per-event poll in the scan scheduler's hot loop.
    pub fn has_revocations(&self) -> bool {
        self.plan.has_revocations()
    }

    /// Worker classes whose revocation instant has arrived by virtual time
    /// `now`. Each [`FaultSpec::RevokeClass`] fires exactly once: the first
    /// poll at/after its `at` returns the class, later polls do not. Classes
    /// are returned in spec-declaration order, so the storm schedule is pure
    /// in `(plan, poll instants)`.
    pub fn revocations_due(&self, now: Duration) -> Vec<String> {
        if !self.has_revocations() {
            return Vec::new();
        }
        let mut state = self.state.lock();
        let mut due = Vec::new();
        for (idx, spec) in self.plan.specs.iter().enumerate() {
            if let FaultSpec::RevokeClass { class, at } = spec {
                if now >= *at && !state.fired[idx] {
                    state.fired[idx] = true;
                    due.push(class.clone());
                }
            }
        }
        drop(state);
        self.revocations_injected.fetch_add(due.len() as u64, Ordering::Relaxed);
        due
    }

    /// Consult the plan for the task `worker_id` is about to start at
    /// virtual time `now`. Crash specs take precedence over transient
    /// faults; among crashes, timed ones fire before sequence-numbered ones.
    pub fn on_task_start(&self, worker_id: u32, now: Duration) -> FaultDecision {
        self.begin_task(worker_id, now).decision
    }

    /// Like [`FaultInjector::on_task_start`] but also returns the 1-based
    /// per-worker task ordinal assigned, which keys mid-stream scan draws
    /// ([`FaultInjector::on_scan_page`]) for the rest of the task.
    pub fn begin_task(&self, worker_id: u32, now: Duration) -> TaskStart {
        let mut state = self.state.lock();
        let seq_entry = state.task_seq.entry(worker_id).or_insert(0);
        *seq_entry += 1;
        let seq = *seq_entry;
        if !self.is_enabled() {
            return TaskStart { seq, decision: FaultDecision::None };
        }

        let mut decision = FaultDecision::None;
        for (idx, spec) in self.plan.specs.iter().enumerate() {
            let hit = match *spec {
                FaultSpec::CrashAt { worker_id: w, at } => {
                    if w == worker_id && now >= at && !state.fired[idx] {
                        state.fired[idx] = true;
                        FaultDecision::CrashWorker
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::CrashOnTask { worker_id: w, task_seq } => {
                    if w == worker_id && task_seq == seq {
                        FaultDecision::CrashWorker
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::FailTask { worker_id: w, task_seq } => {
                    if w == worker_id && task_seq == seq {
                        FaultDecision::FailTask
                    } else {
                        FaultDecision::None
                    }
                }
                FaultSpec::FailRate { rate } => {
                    if unit_draw(self.seed, worker_id, seq) < rate {
                        FaultDecision::FailTask
                    } else {
                        FaultDecision::None
                    }
                }
                // mid-stream and polled specs never fire at task start
                FaultSpec::StallScanPage { .. }
                | FaultSpec::TearScanPage { .. }
                | FaultSpec::ScanStallRate { .. }
                | FaultSpec::ScanTearRate { .. }
                | FaultSpec::StallExchangePage { .. }
                | FaultSpec::TearExchangePage { .. }
                | FaultSpec::ExchangeTearRate { .. }
                | FaultSpec::RevokeClass { .. } => FaultDecision::None,
            };
            // a crash dominates a transient fault for the same task
            if rank(hit) > rank(decision) {
                decision = hit;
            }
        }
        drop(state);
        match decision {
            FaultDecision::CrashWorker => {
                self.crashes_injected.fetch_add(1, Ordering::Relaxed);
            }
            FaultDecision::FailTask => {
                self.task_faults_injected.fetch_add(1, Ordering::Relaxed);
            }
            FaultDecision::None => {}
        }
        TaskStart { seq, decision }
    }

    /// Consult the plan for the `page_ordinal`-th page (1-based) the
    /// `task_seq`-th task on `worker_id` is about to emit. Stateless: the
    /// answer is pure in `(seed, worker, task ordinal, page ordinal)`, so a
    /// replayed task sees the identical stall/tear schedule. A tear
    /// dominates a stall on the same page.
    pub fn on_scan_page(&self, worker_id: u32, task_seq: u64, page_ordinal: u64) -> PageFault {
        if !self.is_enabled() {
            return PageFault::None;
        }
        let mut fault = PageFault::None;
        for spec in self.plan.specs.iter() {
            let hit = match *spec {
                FaultSpec::StallScanPage { worker_id: w, task_seq: t, page_ordinal: p, delay } => {
                    if w == worker_id && t == task_seq && p == page_ordinal {
                        PageFault::Stall(delay)
                    } else {
                        PageFault::None
                    }
                }
                FaultSpec::TearScanPage { worker_id: w, task_seq: t, page_ordinal: p } => {
                    if w == worker_id && t == task_seq && p == page_ordinal {
                        PageFault::Tear
                    } else {
                        PageFault::None
                    }
                }
                FaultSpec::ScanStallRate { rate, delay } => {
                    let draw = unit_draw(
                        self.seed ^ SCAN_STALL_SALT,
                        worker_id,
                        mix(task_seq) ^ page_ordinal,
                    );
                    if draw < rate {
                        PageFault::Stall(delay)
                    } else {
                        PageFault::None
                    }
                }
                FaultSpec::ScanTearRate { rate } => {
                    let draw = unit_draw(
                        self.seed ^ SCAN_TEAR_SALT,
                        worker_id,
                        mix(task_seq) ^ page_ordinal,
                    );
                    if draw < rate {
                        PageFault::Tear
                    } else {
                        PageFault::None
                    }
                }
                _ => PageFault::None,
            };
            if page_rank(hit) > page_rank(fault) {
                fault = hit;
            }
        }
        self.note_page_fault(fault);
        fault
    }

    /// Consult the plan for the `page_ordinal`-th page (1-based) of fragment
    /// `fragment`'s exchange on delivery attempt `attempt` (1-based).
    /// Stateless and pure in `(seed, fragment, page ordinal, attempt)`;
    /// one-shot specs fire on the first attempt only so retries can succeed,
    /// while rate specs include the attempt in the draw.
    pub fn on_exchange_page(&self, fragment: u32, page_ordinal: u64, attempt: u64) -> PageFault {
        if !self.is_enabled() {
            return PageFault::None;
        }
        let mut fault = PageFault::None;
        for spec in self.plan.specs.iter() {
            let hit = match *spec {
                FaultSpec::StallExchangePage { fragment: f, page_ordinal: p, delay } => {
                    if f == fragment && p == page_ordinal && attempt == 1 {
                        PageFault::Stall(delay)
                    } else {
                        PageFault::None
                    }
                }
                FaultSpec::TearExchangePage { fragment: f, page_ordinal: p } => {
                    if f == fragment && p == page_ordinal && attempt == 1 {
                        PageFault::Tear
                    } else {
                        PageFault::None
                    }
                }
                FaultSpec::ExchangeTearRate { rate } => {
                    let draw = unit_draw(
                        self.seed ^ EXCHANGE_TEAR_SALT,
                        fragment,
                        mix(page_ordinal) ^ attempt,
                    );
                    if draw < rate {
                        PageFault::Tear
                    } else {
                        PageFault::None
                    }
                }
                _ => PageFault::None,
            };
            if page_rank(hit) > page_rank(fault) {
                fault = hit;
            }
        }
        self.note_page_fault(fault);
        fault
    }

    fn note_page_fault(&self, fault: PageFault) {
        match fault {
            PageFault::Stall(_) => {
                self.stalls_injected.fetch_add(1, Ordering::Relaxed);
            }
            PageFault::Tear => {
                self.tears_injected.fetch_add(1, Ordering::Relaxed);
            }
            PageFault::None => {}
        }
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("specs", &self.plan.specs)
            .field("crashes_injected", &self.crashes_injected())
            .field("task_faults_injected", &self.task_faults_injected())
            .field("stalls_injected", &self.stalls_injected())
            .field("tears_injected", &self.tears_injected())
            .field("revocations_injected", &self.revocations_injected())
            .finish()
    }
}

fn rank(d: FaultDecision) -> u8 {
    match d {
        FaultDecision::None => 0,
        FaultDecision::FailTask => 1,
        FaultDecision::CrashWorker => 2,
    }
}

fn page_rank(f: PageFault) -> u8 {
    match f {
        PageFault::None => 0,
        PageFault::Stall(_) => 1,
        PageFault::Tear => 2,
    }
}

/// Domain-separation salts so scan-stall, scan-tear, and exchange-tear rate
/// draws are independent streams even under the same seed.
const SCAN_STALL_SALT: u64 = 0x5CA7_57A1_1000_0001;
const SCAN_TEAR_SALT: u64 = 0x5CA7_7EA2_0000_0002;
const EXCHANGE_TEAR_SALT: u64 = 0xE8C4_7EA2_0000_0003;

/// Well-distributed 64-bit mixing of the `(seed, worker, seq)` triple —
/// the shared [`crate::rng`] SplitMix64 finalizer.
fn mix(z: u64) -> u64 {
    crate::rng::mix64(z)
}

/// A uniform draw in `[0, 1)` that depends only on the triple — identical
/// under any thread interleaving. The worker id is the draw's stream.
fn unit_draw(seed: u64, worker_id: u32, seq: u64) -> f64 {
    crate::rng::unit_draw(seed, u64::from(worker_id), seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for w in 0..4 {
            for _ in 0..100 {
                assert_eq!(inj.on_task_start(w, Duration::ZERO), FaultDecision::None);
            }
        }
        assert_eq!(inj.crashes_injected(), 0);
        assert_eq!(inj.task_faults_injected(), 0);
    }

    #[test]
    fn timed_crash_fires_once_at_virtual_time() {
        let inj = FaultInjector::new(7, FaultPlan::new().crash_at(1, Duration::from_secs(10)));
        // before T: nothing
        assert_eq!(inj.on_task_start(1, Duration::from_secs(9)), FaultDecision::None);
        // other workers never crash
        assert_eq!(inj.on_task_start(0, Duration::from_secs(11)), FaultDecision::None);
        // at/after T: exactly one crash
        assert_eq!(inj.on_task_start(1, Duration::from_secs(10)), FaultDecision::CrashWorker);
        assert_eq!(inj.on_task_start(1, Duration::from_secs(11)), FaultDecision::None);
        assert_eq!(inj.crashes_injected(), 1);
    }

    #[test]
    fn kth_task_faults_are_per_worker() {
        let inj = FaultInjector::new(7, FaultPlan::new().fail_task(2, 3).crash_on_task(0, 2));
        // worker 2: third task fails
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::FailTask);
        assert_eq!(inj.on_task_start(2, Duration::ZERO), FaultDecision::None);
        // worker 0: second task crashes it — its own counter, not worker 2's
        assert_eq!(inj.on_task_start(0, Duration::ZERO), FaultDecision::None);
        assert_eq!(inj.on_task_start(0, Duration::ZERO), FaultDecision::CrashWorker);
        assert_eq!(inj.task_faults_injected(), 1);
        assert_eq!(inj.crashes_injected(), 1);
    }

    #[test]
    fn rate_draws_are_deterministic_and_roughly_uniform() {
        let draws = |seed: u64| -> Vec<FaultDecision> {
            let inj = FaultInjector::new(seed, FaultPlan::new().fail_rate(0.25));
            (0..400).map(|i| inj.on_task_start(i % 4, Duration::ZERO)).collect()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed, same schedule");
        let hits = a.iter().filter(|d| **d == FaultDecision::FailTask).count();
        assert!((50..150).contains(&hits), "rate 0.25 over 400 draws, got {hits}");
        let c = draws(43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn rate_draws_ignore_thread_interleaving() {
        // Decisions for worker w depend only on w's own sequence numbers, so
        // drawing workers in a different global order changes nothing.
        let inj1 = FaultInjector::new(9, FaultPlan::new().fail_rate(0.5));
        let mut order1 = Vec::new();
        for w in [0u32, 1, 0, 1, 0, 1] {
            order1.push((w, inj1.on_task_start(w, Duration::ZERO)));
        }
        let inj2 = FaultInjector::new(9, FaultPlan::new().fail_rate(0.5));
        let mut order2 = Vec::new();
        for w in [1u32, 1, 1, 0, 0, 0] {
            order2.push((w, inj2.on_task_start(w, Duration::ZERO)));
        }
        let per_worker = |log: &[(u32, FaultDecision)], w: u32| -> Vec<FaultDecision> {
            log.iter().filter(|(x, _)| *x == w).map(|(_, d)| *d).collect()
        };
        assert_eq!(per_worker(&order1, 0), per_worker(&order2, 0));
        assert_eq!(per_worker(&order1, 1), per_worker(&order2, 1));
    }

    #[test]
    fn crash_dominates_transient_fault_on_same_task() {
        let inj = FaultInjector::new(1, FaultPlan::new().fail_task(3, 1).crash_on_task(3, 1));
        assert_eq!(inj.on_task_start(3, Duration::ZERO), FaultDecision::CrashWorker);
    }

    #[test]
    fn begin_task_hands_out_per_worker_ordinals() {
        let inj = FaultInjector::new(5, FaultPlan::new().fail_task(1, 2));
        assert_eq!(inj.begin_task(0, Duration::ZERO).seq, 1);
        assert_eq!(inj.begin_task(1, Duration::ZERO).seq, 1);
        assert_eq!(inj.begin_task(0, Duration::ZERO).seq, 2);
        let t = inj.begin_task(1, Duration::ZERO);
        assert_eq!(t.seq, 2);
        assert_eq!(t.decision, FaultDecision::FailTask);
    }

    #[test]
    fn targeted_scan_page_faults_hit_exact_ordinals() {
        let delay = Duration::from_millis(40);
        let inj = FaultInjector::new(
            3,
            FaultPlan::new().stall_scan_page(1, 2, 3, delay).tear_scan_page(0, 1, 2),
        );
        assert_eq!(inj.on_scan_page(1, 2, 3), PageFault::Stall(delay));
        assert_eq!(inj.on_scan_page(1, 2, 2), PageFault::None);
        assert_eq!(inj.on_scan_page(1, 1, 3), PageFault::None);
        assert_eq!(inj.on_scan_page(2, 2, 3), PageFault::None);
        assert_eq!(inj.on_scan_page(0, 1, 2), PageFault::Tear);
        assert_eq!(inj.on_scan_page(0, 1, 1), PageFault::None);
        assert_eq!(inj.stalls_injected(), 1);
        assert_eq!(inj.tears_injected(), 1);
    }

    #[test]
    fn scan_page_rate_draws_are_pure_in_the_quadruple() {
        let plan =
            FaultPlan::new().scan_stall_rate(0.3, Duration::from_millis(10)).scan_tear_rate(0.05);
        let a = FaultInjector::new(11, plan.clone());
        let b = FaultInjector::new(11, plan.clone());
        // different call order, same per-coordinate answers
        let mut hits = 0usize;
        for w in 0..3u32 {
            for t in 1..=4u64 {
                for p in 1..=8u64 {
                    let fa = a.on_scan_page(w, t, p);
                    if fa != PageFault::None {
                        hits += 1;
                    }
                    assert_eq!(fa, b.on_scan_page(w, t, p), "w={w} t={t} p={p}");
                    // repeated query of the same coordinate: same answer
                    assert_eq!(fa, a.on_scan_page(w, t, p));
                }
            }
        }
        assert!(hits > 0, "rates 0.3/0.05 over 96 pages should hit at least once");
        // a different seed yields a different schedule somewhere
        let c = FaultInjector::new(12, plan);
        let differs = (1..=8u64).any(|p| a.on_scan_page(0, 1, p) != c.on_scan_page(0, 1, p))
            || (1..=8u64).any(|p| a.on_scan_page(1, 2, p) != c.on_scan_page(1, 2, p))
            || (1..=8u64).any(|p| a.on_scan_page(2, 3, p) != c.on_scan_page(2, 3, p));
        assert!(differs, "seed must matter");
    }

    #[test]
    fn one_shot_exchange_faults_spare_the_retry() {
        let delay = Duration::from_millis(25);
        let inj = FaultInjector::new(
            9,
            FaultPlan::new().stall_exchange_page(1, 2, delay).tear_exchange_page(1, 3),
        );
        assert_eq!(inj.on_exchange_page(1, 1, 1), PageFault::None);
        assert_eq!(inj.on_exchange_page(1, 2, 1), PageFault::Stall(delay));
        assert_eq!(inj.on_exchange_page(1, 3, 1), PageFault::Tear);
        // second delivery attempt sails through
        assert_eq!(inj.on_exchange_page(1, 2, 2), PageFault::None);
        assert_eq!(inj.on_exchange_page(1, 3, 2), PageFault::None);
        // other fragments untouched
        assert_eq!(inj.on_exchange_page(2, 3, 1), PageFault::None);
    }

    #[test]
    fn exchange_tear_rate_draw_includes_the_attempt() {
        let plan = FaultPlan::new().exchange_tear_rate(0.5);
        let inj = FaultInjector::new(21, plan.clone());
        let replay = FaultInjector::new(21, plan);
        let mut torn = 0usize;
        let mut recovered = 0usize;
        for p in 1..=64u64 {
            let first = inj.on_exchange_page(1, p, 1);
            assert_eq!(first, replay.on_exchange_page(1, p, 1), "page {p}");
            if first == PageFault::Tear {
                torn += 1;
                if inj.on_exchange_page(1, p, 2) == PageFault::None {
                    recovered += 1;
                }
            }
        }
        assert!(torn > 0, "rate 0.5 over 64 pages must tear at least once");
        assert!(recovered > 0, "attempt is in the draw, so some retries must succeed");
    }

    #[test]
    fn class_revocation_fires_once_at_virtual_time() {
        let inj = FaultInjector::new(
            5,
            FaultPlan::new()
                .revoke_class("spot", Duration::from_millis(10))
                .revoke_class("preemptible", Duration::from_millis(30)),
        );
        assert!(inj.has_revocations());
        assert!(inj.revocations_due(Duration::from_millis(9)).is_empty());
        assert_eq!(inj.revocations_due(Duration::from_millis(10)), vec!["spot".to_string()]);
        // already fired: later polls stay quiet until the next spec is due
        assert!(inj.revocations_due(Duration::from_millis(20)).is_empty());
        assert_eq!(inj.revocations_due(Duration::from_millis(30)), vec!["preemptible".to_string()]);
        assert!(inj.revocations_due(Duration::from_secs(60)).is_empty());
        assert_eq!(inj.revocations_injected(), 2);
    }

    #[test]
    fn revocation_specs_never_fire_at_task_start() {
        let inj = FaultInjector::new(5, FaultPlan::new().revoke_class("spot", Duration::ZERO));
        assert_eq!(inj.on_task_start(0, Duration::from_secs(1)), FaultDecision::None);
        assert_eq!(inj.crashes_injected(), 0);
        // a poll past the instant still fires exactly once
        assert_eq!(inj.revocations_due(Duration::from_secs(1)), vec!["spot".to_string()]);
    }

    #[test]
    fn scan_and_exchange_draw_streams_are_independent() {
        // Same rate for both: with domain-separated salts the hit patterns
        // must not be identical across 64 coordinates.
        let inj =
            FaultInjector::new(33, FaultPlan::new().scan_tear_rate(0.4).exchange_tear_rate(0.4));
        let scan: Vec<bool> =
            (1..=64u64).map(|p| inj.on_scan_page(1, 1, p) == PageFault::Tear).collect();
        let exch: Vec<bool> =
            (1..=64u64).map(|p| inj.on_exchange_page(1, p, 1) == PageFault::Tear).collect();
        assert_ne!(scan, exch);
    }
}
