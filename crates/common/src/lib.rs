#![warn(missing_docs)]

//! Core types shared by every crate in the Presto-at-scale reproduction.
//!
//! This crate defines the vocabulary of the engine described in
//! *"From Batch Processing to Real Time Analytics: Running Presto at Scale"*
//! (ICDE 2022):
//!
//! - [`types::DataType`] — the SQL type system, including arbitrarily nested
//!   `ROW` / `ARRAY` / `MAP` types (§V of the paper is about nested data).
//! - [`block::Block`] — in-memory **columnar** vectors. Presto is a vectorized
//!   engine that processes "a bunch of in memory encoded column values
//!   vectorized, instead of row by row" (§III); blocks are that encoding,
//!   including dictionary-encoded blocks.
//! - [`page::Page`] — a horizontal slice of blocks, the unit streamed between
//!   operators and connectors.
//! - [`value::Value`] — scalar values used for literals, row-at-a-time paths
//!   (the *legacy* Parquet reader operates on these) and test oracles.
//! - [`clock::SimClock`] — a virtual clock used by the storage and cluster
//!   simulators so latency experiments are deterministic.
//! - [`metrics::CounterSet`] — named counters used to report call-count
//!   results (e.g. §VII's "listFiles calls reduced to less than 40%"), plus
//!   log-bucketed [`metrics::Histogram`]s for latency distributions.
//! - [`fault::FaultInjector`] — seeded, declarative fault injection so the
//!   cluster's crash-recovery paths replay deterministically.
//! - [`trace::Trace`] — hierarchical virtual-time spans (query → stage →
//!   task → operator) with a seed-deterministic digest, backing
//!   `EXPLAIN ANALYZE` and the chaos suite's determinism check.

pub mod block;
pub mod clock;
pub mod error;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod page;
pub mod ring;
pub mod rng;
pub mod telemetry;
pub mod trace;
pub mod types;
pub mod value;

pub use block::Block;
pub use clock::SimClock;
pub use error::{PrestoError, Result};
pub use fault::{FaultDecision, FaultInjector, FaultPlan, FaultSpec};
pub use metrics::{CounterSet, GaugeSet, Histogram, HistogramSet, TimeSeries, TimeSeriesSet};
pub use page::Page;
pub use ring::HashRing;
pub use telemetry::{QueryRow, TaskRow, TelemetryRegistry, WorkerRow};
pub use trace::{OperatorStats, Span, SpanId, SpanKind, Trace};
pub use types::{DataType, Field, Schema};
pub use value::Value;
