//! Cluster-wide telemetry: the queryable state behind `system.runtime`.
//!
//! The paper's operational lesson is that a fleet is run off its telemetry —
//! per-worker utilization, queue depth, query states — and Presto exposes
//! exactly that back through SQL (`system.runtime`). [`TelemetryRegistry`]
//! is the deterministic reproduction: every sample is stamped from the
//! virtual clock, every row set lives in a `BTreeMap` so materialization
//! order is canonical, and [`TelemetryRegistry::digest`] folds the whole
//! registry with the same FNV-1a the trace digests use — bit-identical
//! across same-seed runs.
//!
//! The cluster writes here from `PrestoCluster::tick` (worker rows, the
//! utilization time series, gauges) and from its query/task completion
//! paths; the `system` connector reads it back as ordinary tables.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::RwLock;

use crate::metrics::{Fnv, GaugeSet, TimeSeriesSet};

/// Default sampling interval for telemetry time series (virtual µs).
pub const DEFAULT_TELEMETRY_INTERVAL_US: u64 = 500;

/// Default ring capacity (buckets) for telemetry time series.
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 1024;

/// Oldest rows are evicted beyond this many per table, so a long sim run
/// cannot grow the registry without bound.
pub const MAX_ROWS_PER_TABLE: usize = 4096;

/// One row of `system.runtime.workers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRow {
    /// Worker id within its cluster.
    pub worker_id: u32,
    /// Capacity class (e.g. `"ondemand"`, `"spot"`).
    pub class: String,
    /// Coarse lifecycle: `active`, `draining`, `decommissioned`, `revoked`.
    pub lifecycle: String,
    /// Tasks running at the last snapshot.
    pub active_tasks: u64,
    /// Tasks completed over the worker's lifetime.
    pub completed_tasks: u64,
    /// Busy fraction over the last sampling window, percent.
    pub busy_pct: u64,
}

/// One row of `system.runtime.queries`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRow {
    /// Cluster-assigned query sequence number.
    pub query_id: u64,
    /// Terminal state: `finished` or `failed`.
    pub state: String,
    /// End-to-end virtual latency, µs.
    pub latency_us: u64,
    /// Peak bytes reserved against the query's memory pool.
    pub peak_memory_bytes: u64,
    /// Fleet busy-fraction peak sampled while the query ran, percent.
    pub peak_busy_pct: u64,
    /// Telemetry snapshots taken while the query ran.
    pub snapshots: u64,
}

/// One row of `system.runtime.tasks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRow {
    /// Monotone task sequence number within the cluster.
    pub task_id: u64,
    /// The query the task belonged to.
    pub query_id: u64,
    /// Worker that completed the task.
    pub worker_id: u32,
    /// Terminal state (`finished`).
    pub state: String,
    /// Virtual runtime of the task, µs.
    pub runtime_us: u64,
}

#[derive(Debug, Default)]
struct TelemetryInner {
    workers: BTreeMap<u32, WorkerRow>,
    queries: BTreeMap<u64, QueryRow>,
    tasks: BTreeMap<u64, TaskRow>,
    snapshots: u64,
}

/// The cluster-wide telemetry store: time series + gauges + the row sets
/// `system.runtime` exposes. All row maps are `BTreeMap`s so iteration —
/// and therefore table materialization and digests — is canonical.
#[derive(Debug)]
pub struct TelemetryRegistry {
    series: TimeSeriesSet,
    gauges: GaugeSet,
    inner: RwLock<TelemetryInner>,
}

impl Default for TelemetryRegistry {
    fn default() -> TelemetryRegistry {
        TelemetryRegistry::new()
    }
}

impl TelemetryRegistry {
    /// Registry with the default interval/capacity.
    pub fn new() -> TelemetryRegistry {
        TelemetryRegistry::with_config(DEFAULT_TELEMETRY_INTERVAL_US, DEFAULT_TELEMETRY_CAPACITY)
    }

    /// Registry with an explicit series interval (virtual µs) and ring
    /// capacity (buckets).
    pub fn with_config(interval_us: u64, capacity: usize) -> TelemetryRegistry {
        TelemetryRegistry {
            series: TimeSeriesSet::new(interval_us, capacity),
            gauges: GaugeSet::new(),
            inner: RwLock::new(TelemetryInner::default()),
        }
    }

    /// The shared time-series set.
    pub fn series(&self) -> &TimeSeriesSet {
        &self.series
    }

    /// The shared gauge set.
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// Record one observation under `name` at virtual instant `at`.
    pub fn sample(&self, name: &str, at: Duration, value: u64) {
        self.series.sample(name, at, value);
    }

    /// Record one observation under the `id`-keyed variant of `name`.
    pub fn sample_for(&self, name: &str, id: u32, at: Duration, value: u64) {
        self.series.sample_for(name, id, at, value);
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauges.set_gauge(name, value);
    }

    /// Current gauge value (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.gauge(name)
    }

    /// One cluster-wide snapshot completed: bump the snapshot counter.
    pub fn note_snapshot(&self) {
        self.inner.write().snapshots += 1;
    }

    /// Snapshots taken so far.
    pub fn snapshots(&self) -> u64 {
        self.inner.read().snapshots
    }

    /// Upsert one worker row (keyed by worker id).
    pub fn record_worker(&self, row: WorkerRow) {
        self.inner.write().workers.insert(row.worker_id, row);
    }

    /// Drop the row of a reaped worker.
    pub fn forget_worker(&self, worker_id: u32) {
        self.inner.write().workers.remove(&worker_id);
    }

    /// Upsert one query row (keyed by query id, oldest evicted beyond
    /// [`MAX_ROWS_PER_TABLE`]).
    pub fn record_query(&self, row: QueryRow) {
        let mut inner = self.inner.write();
        inner.queries.insert(row.query_id, row);
        while inner.queries.len() > MAX_ROWS_PER_TABLE {
            let oldest = inner.queries.keys().next().copied();
            if let Some(k) = oldest {
                inner.queries.remove(&k);
            }
        }
    }

    /// Upsert one task row (keyed by task id, oldest evicted beyond
    /// [`MAX_ROWS_PER_TABLE`]).
    pub fn record_task(&self, row: TaskRow) {
        let mut inner = self.inner.write();
        inner.tasks.insert(row.task_id, row);
        while inner.tasks.len() > MAX_ROWS_PER_TABLE {
            let oldest = inner.tasks.keys().next().copied();
            if let Some(k) = oldest {
                inner.tasks.remove(&k);
            }
        }
    }

    /// Worker rows in worker-id order.
    pub fn workers(&self) -> Vec<WorkerRow> {
        self.inner.read().workers.values().cloned().collect()
    }

    /// Query rows in query-id order.
    pub fn queries(&self) -> Vec<QueryRow> {
        self.inner.read().queries.values().cloned().collect()
    }

    /// Task rows in task-id order.
    pub fn tasks(&self) -> Vec<TaskRow> {
        self.inner.read().tasks.values().cloned().collect()
    }

    /// Named metric rows for `system.metrics`: every time series (kind
    /// `timeseries`, value = last retained bucket, samples = accepted
    /// sample count) and every gauge (kind `gauge`), in name order.
    pub fn metric_rows(&self) -> Vec<(String, String, u64, u64)> {
        let mut out = Vec::new();
        for (name, ts) in self.series.snapshot() {
            let last = ts.points().last().map(|&(_, v)| v).unwrap_or(0);
            out.push((name, "timeseries".to_string(), last, ts.samples()));
        }
        for (name, value) in self.gauges.snapshot() {
            out.push((name, "gauge".to_string(), value, 0));
        }
        out
    }

    /// Canonical digest over the whole registry: snapshots, rows in key
    /// order, every series, every gauge. Bit-identical across same-seed
    /// runs of the same workload.
    pub fn digest(&self) -> u64 {
        let inner = self.inner.read();
        let mut h = Fnv::new();
        h.write(inner.snapshots);
        for (id, w) in &inner.workers {
            h.write(u64::from(*id));
            h.write_str(&w.class);
            h.write_str(&w.lifecycle);
            h.write(w.active_tasks);
            h.write(w.completed_tasks);
            h.write(w.busy_pct);
        }
        for (id, q) in &inner.queries {
            h.write(*id);
            h.write_str(&q.state);
            h.write(q.latency_us);
            h.write(q.peak_memory_bytes);
            h.write(q.peak_busy_pct);
            h.write(q.snapshots);
        }
        for (id, t) in &inner.tasks {
            h.write(*id);
            h.write(t.query_id);
            h.write(u64::from(t.worker_id));
            h.write_str(&t.state);
            h.write(t.runtime_us);
        }
        drop(inner);
        h.write(self.series.digest());
        for (name, value) in self.gauges.snapshot() {
            h.write_str(&name);
            h.write(value);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::names;

    fn worker(id: u32, lifecycle: &str, busy: u64) -> WorkerRow {
        WorkerRow {
            worker_id: id,
            class: "ondemand".to_string(),
            lifecycle: lifecycle.to_string(),
            active_tasks: 0,
            completed_tasks: 3,
            busy_pct: busy,
        }
    }

    #[test]
    fn rows_materialize_in_key_order() {
        let t = TelemetryRegistry::new();
        t.record_worker(worker(5, "active", 80));
        t.record_worker(worker(1, "draining", 10));
        t.record_worker(worker(3, "active", 50));
        let ids: Vec<u32> = t.workers().iter().map(|w| w.worker_id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        t.forget_worker(3);
        assert_eq!(t.workers().len(), 2);
    }

    #[test]
    fn row_caps_evict_oldest() {
        let t = TelemetryRegistry::new();
        for id in 0..(MAX_ROWS_PER_TABLE as u64 + 10) {
            t.record_task(TaskRow {
                task_id: id,
                query_id: id / 4,
                worker_id: (id % 3) as u32,
                state: "finished".to_string(),
                runtime_us: id,
            });
        }
        let tasks = t.tasks();
        assert_eq!(tasks.len(), MAX_ROWS_PER_TABLE);
        assert_eq!(tasks[0].task_id, 10); // oldest ten evicted
    }

    #[test]
    fn digest_is_replay_stable_and_state_sensitive() {
        let build = |busy: u64| {
            let t = TelemetryRegistry::new();
            t.record_worker(worker(0, "active", busy));
            t.sample(names::TS_FLEET_BUSY_PCT, Duration::from_micros(700), busy);
            t.set_gauge(names::GAUGE_FLEET_BUSY_PCT, busy);
            t.note_snapshot();
            t
        };
        assert_eq!(build(40).digest(), build(40).digest());
        assert_ne!(build(40).digest(), build(41).digest());
        assert_eq!(build(40).snapshots(), 1);
        assert_eq!(build(40).metric_rows().len(), 2);
    }
}
