//! File classification, test-region detection, suppression handling, and
//! the workspace walker.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, TokKind};

/// What kind of source a file is; decides which rules apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Library source under `crates/<name>/src/` (or the root facade's
    /// `src/`). Carries the crate directory name (`"exec"`, `"root"`).
    Lib(String),
    /// Binary source (`src/main.rs`, `src/bin/**`) of a crate. Exempt from
    /// the console-output rule (CLIs print by design) but not the rest.
    Bin(String),
    /// Integration tests, benches, and examples: exempt from style rules —
    /// they are drivers, not engine code.
    TestOrExample,
}

/// One diagnostic the tool reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`wall-clock`, `no-unwrap`, ...).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A source file ready to check: lexed, classified, with suppression and
/// safety-comment indexes built.
pub struct FileCtx {
    pub rel_path: String,
    pub class: FileClass,
    pub lexed: Lexed,
    /// `// lint:allow(rule, ...)` coverage: inclusive line ranges with the
    /// rule ids they suppress. A trailing directive covers its own line; a
    /// directive on a comment-only line covers exactly the next statement.
    allow: Vec<(u32, u32, Vec<String>)>,
    /// Lines covered by a comment containing `SAFETY:`.
    safety_lines: HashSet<u32>,
    /// Token-index ranges inside `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl FileCtx {
    /// Build a context from raw source text and its workspace-relative path.
    pub fn new(rel_path: &str, src: &str) -> FileCtx {
        let lexed = lex(src);
        let mut allow: Vec<(u32, u32, Vec<String>)> = Vec::new();
        let mut safety_lines = HashSet::new();
        let token_lines: HashSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        for c in &lexed.comments {
            let rules = parse_allow(&c.text);
            if !rules.is_empty() {
                let range = if token_lines.contains(&c.start_line) {
                    // trailing directive: covers only the code on its line
                    (c.start_line, c.start_line)
                } else {
                    // standalone directive: covers the next statement, however
                    // many lines it spans — and nothing after it
                    match lexed.tokens.iter().position(|t| t.line > c.end_line) {
                        Some(first) => statement_line_range(&lexed.tokens, first),
                        None => (c.start_line, c.start_line),
                    }
                };
                allow.push((range.0, range.1, rules));
            }
            if c.text.contains("SAFETY:") {
                for l in c.start_line..=c.end_line {
                    safety_lines.insert(l);
                }
            }
        }
        let test_ranges = test_ranges(&lexed);
        FileCtx {
            rel_path: rel_path.to_string(),
            class: classify(rel_path),
            lexed,
            allow,
            safety_lines,
            test_ranges,
        }
    }

    /// The crate directory name, if this is crate code (`Lib` or `Bin`).
    pub fn crate_name(&self) -> Option<&str> {
        match &self.class {
            FileClass::Lib(n) | FileClass::Bin(n) => Some(n),
            FileClass::TestOrExample => None,
        }
    }

    /// Is token `idx` inside a `#[cfg(test)]` module or `#[test]` function?
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    /// Is `rule` suppressed on `line` by a `// lint:allow(...)` directive?
    /// A trailing directive covers its own line; a directive on its own line
    /// covers the next statement (all its lines) and never leaks past it.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow
            .iter()
            .any(|(a, b, rules)| line >= *a && line <= *b && rules.iter().any(|r| r == rule))
    }

    /// Is `line` (or the two lines above it) covered by a `SAFETY:` comment?
    /// The one-line slack lets an attribute sit between comment and item.
    pub fn has_safety_comment(&self, line: u32) -> bool {
        (line.saturating_sub(2)..=line).any(|l| self.safety_lines.contains(&l))
    }
}

/// The inclusive line range of the statement starting at token `start`.
///
/// A statement ends at the first `;` at bracket depth 0 (relative to its
/// first token), or at the `}` closing a block it opened at depth 0 (an
/// `if`/`for`/`match`/fn item), or just before the `}` that closes the
/// *enclosing* block. `else`-chains and method calls on a closed block
/// continue the same statement.
fn statement_line_range(toks: &[crate::lexer::Tok], start: usize) -> (u32, u32) {
    let start_line = toks[start].line;
    let mut depth = 0i32;
    let mut last_line = start_line;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    // the enclosing block closed first: end on the previous token
                    return (start_line, last_line);
                }
                if depth == 0 {
                    // a statement-level block closed; the statement continues
                    // only through `else`, a trailing `;`, or a method chain
                    match toks.get(i + 1) {
                        Some(n) if n.is_ident("else") => {}
                        Some(n) if n.is_punct(';') => return (start_line, n.line),
                        Some(n) if n.is_punct('.') => {}
                        _ => return (start_line, t.line),
                    }
                }
            }
            TokKind::Punct(';') if depth == 0 => return (start_line, t.line),
            _ => {}
        }
        last_line = t.line;
        i += 1;
    }
    (start_line, last_line)
}

/// Parse every `lint:allow(a, b)` directive out of a comment.
fn parse_allow(comment: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    rules.push(rule.to_string());
                }
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
    rules
}

/// Classify a workspace-relative path.
fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "src", rest @ ..] => {
            if rest == ["main.rs"] || rest.first() == Some(&"bin") {
                FileClass::Bin((*name).to_string())
            } else {
                FileClass::Lib((*name).to_string())
            }
        }
        ["crates", _, "tests" | "benches" | "examples", ..] => FileClass::TestOrExample,
        ["src", rest @ ..] => {
            if rest == ["main.rs"] || rest.first() == Some(&"bin") {
                FileClass::Bin("root".to_string())
            } else {
                FileClass::Lib("root".to_string())
            }
        }
        _ => FileClass::TestOrExample,
    }
}

/// Find token ranges belonging to `#[cfg(test)]` / `#[test]` items by brace
/// matching from the item's opening `{`.
fn test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // collect the attribute body between [ and its matching ]
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut idents = Vec::new();
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].kind == TokKind::Ident {
                    idents.push(toks[j].text.as_str());
                }
                j += 1;
            }
            let is_test_attr = match idents.first() {
                Some(&"test") => true,
                Some(&"cfg") => idents.contains(&"test"),
                _ => false,
            };
            if is_test_attr {
                // The attributed item's body is the next `{ ... }` before a
                // `;` at attribute level (an item like `#[cfg(test)] use x;`
                // has no body).
                let mut k = j + 1;
                let mut open = None;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        open = Some(k);
                        break;
                    }
                    if toks[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if let Some(start) = open {
                    let mut braces = 0usize;
                    let mut end = start;
                    while end < toks.len() {
                        if toks[end].is_punct('{') {
                            braces += 1;
                        } else if toks[end].is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    ranges.push((i, end + 1));
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Walk the workspace from `root`, collecting every `.rs` file the linter
/// owns. Skips build output, vendored stand-ins, VCS metadata, and the
/// linter's own deliberately-bad fixture corpus.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/exec/src/executor.rs"), FileClass::Lib("exec".into()));
        assert_eq!(classify("crates/bench/src/main.rs"), FileClass::Bin("bench".into()));
        assert_eq!(classify("crates/geo/benches/quad.rs"), FileClass::TestOrExample);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib("root".into()));
        assert_eq!(classify("tests/federation.rs"), FileClass::TestOrExample);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::TestOrExample);
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn more_lib() {}\n";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        let toks = &ctx.lexed.tokens;
        let helper = toks.iter().position(|t| t.is_ident("helper")).unwrap();
        let lib = toks.iter().position(|t| t.is_ident("lib_code")).unwrap();
        let more = toks.iter().position(|t| t.is_ident("more_lib")).unwrap();
        assert!(ctx.in_test_code(helper));
        assert!(!ctx.in_test_code(lib));
        assert!(!ctx.in_test_code(more));
    }

    #[test]
    fn cfg_test_on_bodyless_item_marks_nothing() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn real() {}\n";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        let toks = &ctx.lexed.tokens;
        let real = toks.iter().position(|t| t.is_ident("real")).unwrap();
        assert!(!ctx.in_test_code(real));
    }

    #[test]
    fn trailing_allow_is_line_scoped() {
        let src = "let a = 1; // lint:allow(no-unwrap)\nlet b = 2;\n";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        assert!(ctx.is_allowed("no-unwrap", 1));
        assert!(!ctx.is_allowed("no-unwrap", 2));
        assert!(!ctx.is_allowed("wall-clock", 1));
    }

    #[test]
    fn standalone_allow_covers_next_multiline_statement_only() {
        let src = "\
fn f(map: &std::collections::HashMap<u32, String>) -> String {
    // lint:allow(no-unwrap)
    let v = map
        .get(&1)
        .unwrap()
        .clone();
    let w = map.get(&2).unwrap().clone();
    v + &w
}
";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        // the whole covered statement, lines 3-6
        for line in 3..=6 {
            assert!(ctx.is_allowed("no-unwrap", line), "line {line} should be covered");
        }
        // never the statement after it, and never a different rule
        assert!(!ctx.is_allowed("no-unwrap", 7));
        assert!(!ctx.is_allowed("wall-clock", 4));
    }

    #[test]
    fn standalone_allow_covers_a_block_statement() {
        let src = "\
fn f(xs: &[u32]) -> u32 {
    let mut n = 0;
    // lint:allow(map-iter-in-digest)
    for x in xs {
        n += x;
    }
    let after = xs.len() as u32;
    n + after
}
";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        for line in 4..=6 {
            assert!(ctx.is_allowed("map-iter-in-digest", line), "line {line}");
        }
        assert!(!ctx.is_allowed("map-iter-in-digest", 7));
    }

    #[test]
    fn standalone_allow_stops_at_enclosing_block_close() {
        // directive above the last statement of a block must not cover code
        // after the block
        let src = "\
fn f() -> u32 {
    // lint:allow(no-unwrap)
    g()
}
fn g() -> u32 {
    1
}
";
        let ctx = FileCtx::new("crates/exec/src/x.rs", src);
        assert!(ctx.is_allowed("no-unwrap", 3));
        assert!(!ctx.is_allowed("no-unwrap", 5));
        assert!(!ctx.is_allowed("no-unwrap", 6));
    }

    #[test]
    fn allow_parses_multiple_rules() {
        assert_eq!(
            parse_allow("// lint:allow(wall-clock, no-unwrap)"),
            vec!["wall-clock".to_string(), "no-unwrap".to_string()]
        );
        assert!(parse_allow("// nothing here").is_empty());
    }

    #[test]
    fn safety_comment_coverage() {
        let src = "// SAFETY: the counter is atomic\nunsafe impl Sync for X {}\n";
        let ctx = FileCtx::new("crates/geo/src/x.rs", src);
        assert!(ctx.has_safety_comment(2));
        assert!(!ctx.has_safety_comment(5));
    }
}
