//! Pass 2: the workspace-global lock-order graph.
//!
//! Nodes are canonical lock identities (`Struct::field`); an edge `A -> B`
//! means some execution path acquires `B` while holding `A`. Edges come
//! from two places:
//!
//! * **intra-function**: one body acquires both locks with overlapping
//!   guard liveness (recorded in [`crate::summary::FnSummary::lock_edges`]);
//! * **cross-function**: a body calls `g(...)` while holding `A`, and `g`
//!   (resolved workspace-wide by name) transitively acquires `B`.
//!
//! Any cycle in this graph is a potential deadlock under concurrency: two
//! threads entering the cycle from different points block each other
//! forever. Each cycle is reported once, with a full witness path naming
//! every file:line involved — which is what makes the diagnostic
//! actionable when the two halves of the inversion live in different
//! crates. Holding a guard across an `.await` is reported under the same
//! rule: the task can be parked indefinitely mid-critical-section.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::Diagnostic;
use crate::summary::{FileSummary, FnSummary};

/// How one edge was proven; rendered into the witness path.
#[derive(Debug, Clone)]
struct EdgeWitness {
    /// Human-readable step, e.g.
    /// "`cluster::PrestoCluster::rebalance` (crates/cluster/src/cluster.rs:88)
    ///  acquires `PrestoCluster::workers` then `Worker::inner` (…:92)".
    text: String,
    /// Anchor for the diagnostic when this edge starts a cycle report.
    file: String,
    line: u32,
}

/// Run the lock-order analysis over all summaries.
pub fn check(files: &[FileSummary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fns: Vec<&FnSummary> = files.iter().flat_map(|f| &f.fns).collect();
    let by_name: BTreeMap<&str, Vec<usize>> = {
        let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            m.entry(f.name.as_str()).or_default().push(i);
        }
        m
    };

    // Transitive lock sets per function, with a witness (file, line, qual)
    // for where each lock is first acquired. Fixpoint over the call graph.
    let mut tset: Vec<BTreeMap<String, (String, u32, String)>> = fns
        .iter()
        .map(|f| {
            f.acquires
                .iter()
                .map(|a| (a.lock.clone(), (f.file.clone(), a.line, f.qual.clone())))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for call in &fns[i].calls {
                let Some(callees) = by_name.get(call.callee.as_str()) else { continue };
                for &c in callees {
                    if c == i {
                        continue;
                    }
                    let add: Vec<(String, (String, u32, String))> = tset[c]
                        .iter()
                        .filter(|(l, _)| !tset[i].contains_key(*l))
                        .map(|(l, w)| (l.clone(), w.clone()))
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        tset[i].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set with one (deterministic: first in BTreeMap order) witness each.
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for f in &fns {
        for e in &f.lock_edges {
            edges.entry((e.held.clone(), e.inner.clone())).or_insert_with(|| EdgeWitness {
                text: format!(
                    "`{}` ({}:{}) acquires `{}` then `{}` ({}:{})",
                    f.qual, f.file, e.held_line, e.held, e.inner, f.file, e.inner_line
                ),
                file: f.file.clone(),
                line: e.held_line,
            });
        }
    }
    for (i, f) in fns.iter().enumerate() {
        for call in &fns[i].calls {
            if call.holds.is_empty() {
                continue;
            }
            let Some(callees) = by_name.get(call.callee.as_str()) else { continue };
            for &c in callees {
                if c == i {
                    continue;
                }
                for (lock, (wfile, wline, wqual)) in &tset[c] {
                    for held in &call.holds {
                        if held.lock == *lock {
                            continue;
                        }
                        edges
                            .entry((held.lock.clone(), lock.clone()))
                            .or_insert_with(|| EdgeWitness {
                                text: format!(
                                    "`{}` ({}:{}) holds `{}` and calls `{}` ({}:{}), which acquires `{}` via `{}` ({}:{})",
                                    f.qual,
                                    f.file,
                                    held.line,
                                    held.lock,
                                    call.callee,
                                    f.file,
                                    call.line,
                                    lock,
                                    wqual,
                                    wfile,
                                    wline
                                ),
                                file: f.file.clone(),
                                line: held.line,
                            });
                    }
                }
            }
        }
    }

    // Cycle detection with rotation-deduplication: only start a DFS from
    // the lexicographically smallest node of each cycle.
    let adj: BTreeMap<&str, Vec<&str>> = {
        let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a.as_str()).or_default().push(b.as_str());
        }
        m
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        let mut path = vec![*start];
        find_cycle(start, start, &adj, &mut path, &mut reported, &edges, &mut out);
    }

    // Guards held across `.await`: same deadlock class, same rule.
    for f in &fns {
        for (lock, line) in &f.awaits_under_guard {
            out.push(Diagnostic {
                rule: "lock-order",
                path: f.file.clone(),
                line: *line,
                message: format!(
                    "`{}` holds the guard on `{lock}` across an .await; the task can be parked \
                     indefinitely mid-critical-section — drop the guard before suspending",
                    f.qual
                ),
            });
        }
    }

    out
}

/// DFS for a simple cycle back to `start`, visiting only nodes >= `start`
/// (so each cycle is found exactly once, anchored at its smallest node).
#[allow(clippy::too_many_arguments)]
fn find_cycle<'a>(
    start: &'a str,
    at: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    edges: &BTreeMap<(String, String), EdgeWitness>,
    out: &mut Vec<Diagnostic>,
) {
    if path.len() > 8 {
        return; // cycles longer than 8 locks: report on a shorter chord
    }
    let Some(nexts) = adj.get(at) else { return };
    for &next in nexts {
        if next == start {
            let key: Vec<String> = {
                let mut k: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                k.sort();
                k
            };
            if reported.insert(key) {
                let mut ring: Vec<&str> = path.clone();
                ring.push(start);
                let witness: Vec<&str> = ring
                    .windows(2)
                    .filter_map(|w| {
                        edges.get(&(w[0].to_string(), w[1].to_string())).map(|e| e.text.as_str())
                    })
                    .collect();
                let anchor = edges
                    .get(&(ring[0].to_string(), ring[1].to_string()))
                    .expect("cycle edge must exist");
                out.push(Diagnostic {
                    rule: "lock-order",
                    path: anchor.file.clone(),
                    line: anchor.line,
                    message: format!(
                        "lock-order cycle {}: two threads entering from different points deadlock; \
                         witness: {}",
                        ring.join(" -> "),
                        witness.join("; ")
                    ),
                });
            }
            continue;
        }
        if next < start || path.contains(&next) {
            continue;
        }
        path.push(next);
        find_cycle(start, next, adj, path, reported, edges, out);
        path.pop();
    }
}
