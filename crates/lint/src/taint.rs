//! Pass 2: nondeterminism taint — `map-iter-in-digest`.
//!
//! CI gates on bit-identical same-seed `Trace::digest()` and `SimReport`
//! digests (PRs 4-6). The one bug class those gates can only catch *after*
//! the fact is unordered iteration leaking into a digested value:
//! `HashMap`/`HashSet` iteration order varies run-to-run (SipHash keys are
//! randomized), so any such iteration on a digest path is a latent
//! determinism break. This check flags unordered iteration sites inside
//! functions that can reach a digest/hash sink, unless the site provably
//! escapes: it feeds an order-insensitive reduction (`sum`, `count`,
//! `min`, `max`, ...) or an ordered collection (`BTreeMap`/`BTreeSet`) in
//! the same statement, or a sort intervenes later in the same function.
//!
//! Scope: a function is "on a digest path" when its body touches a sink
//! (`digest`, `DefaultHasher`, `mix64`, ...), when it transitively calls
//! one that does, or when it lives in a determinism-critical crate — the
//! crates whose entire observable behavior is digested by the chaos/sim CI
//! gates.

use std::collections::BTreeMap;

use crate::engine::Diagnostic;
use crate::summary::{FileSummary, FnSummary};

/// Crates whose whole behavior feeds the same-seed digest gates: the
/// engine loop, coordinator, resource manager, simulator, and the common
/// layer that computes the digests themselves.
const DIGEST_CRATES: &[&str] = &["exec", "cluster", "resource", "sim", "common"];

/// Run the taint analysis over all summaries.
pub fn check(files: &[FileSummary]) -> Vec<Diagnostic> {
    let fns: Vec<&FnSummary> = files.iter().flat_map(|f| &f.fns).collect();
    let by_name: BTreeMap<&str, Vec<usize>> = {
        let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            m.entry(f.name.as_str()).or_default().push(i);
        }
        m
    };

    // sinky(f): f touches a sink directly or transitively calls one.
    let mut sinky: Vec<bool> = fns.iter().map(|f| f.has_sink).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if sinky[i] {
                continue;
            }
            let reaches = fns[i].calls.iter().any(|c| {
                by_name
                    .get(c.callee.as_str())
                    .is_some_and(|cs| cs.iter().any(|&j| j != i && sinky[j]))
            });
            if reaches {
                sinky[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        let critical_crate = DIGEST_CRATES.contains(&f.crate_name.as_str());
        if !critical_crate && !sinky[i] {
            continue;
        }
        let why = if sinky[i] {
            "is on a digest path".to_string()
        } else {
            format!("is in determinism-critical crate `{}`", f.crate_name)
        };
        for site in &f.iter_sites {
            if site.escaped {
                continue;
            }
            out.push(Diagnostic {
                rule: "map-iter-in-digest",
                path: f.file.clone(),
                line: site.line,
                message: format!(
                    "unordered iteration over `{}` in `{}`, which {why}: HashMap/HashSet order \
                     varies run-to-run and breaks same-seed digest replay — sort the items, use a \
                     BTreeMap/BTreeSet, or reduce order-insensitively",
                    site.container, f.qual
                ),
            });
        }
    }
    out
}
