//! Pass 1 of the two-pass analyzer: per-function summaries.
//!
//! For every library/binary file this module extracts, per function:
//! which locks it acquires (as canonical `Struct::field` identities) and in
//! what order, whether a guard is live across an `.await` or channel-send
//! boundary, every call made while a guard is held, every unordered
//! (`HashMap`/`HashSet`) iteration site, whether the body touches a
//! digest/hash sink, and every string literal passed as a counter or
//! histogram name. Pass 2 ([`crate::graph`], [`crate::taint`], and the
//! global rules in [`crate::rules`]) stitches these summaries into
//! workspace-wide diagnostics.
//!
//! The analysis is token-based and deliberately conservative: a receiver
//! that cannot be resolved to a unique lock field produces no lock
//! identity (and therefore no edge) rather than a guessed one.

use std::collections::BTreeMap;

use crate::engine::{FileClass, FileCtx};
use crate::lexer::{Tok, TokKind};

/// A direct lock acquisition: canonical identity + source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acq {
    /// Canonical lock identity, `Struct::field`.
    pub lock: String,
    pub line: u32,
}

/// An ordered pair observed inside one function: `inner` acquired while
/// `held` is live.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub held: String,
    pub held_line: u32,
    pub inner: String,
    pub inner_line: u32,
}

/// A call site, with the locks live at the moment of the call.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: String,
    pub line: u32,
    pub holds: Vec<Acq>,
}

/// An unordered-container iteration site.
#[derive(Debug, Clone)]
pub struct IterSite {
    /// What is being iterated (`queries`, `Pool::queries`, ...).
    pub container: String,
    pub line: u32,
    /// True when the iteration provably cannot leak order: it feeds an
    /// order-insensitive reduction or an ordered collection in the same
    /// statement, or a sort intervenes later in the same function.
    pub escaped: bool,
}

/// Everything pass 2 needs to know about one function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Bare function name (call-graph key).
    pub name: String,
    /// `crate::Struct::name` or `crate::name` (for messages).
    pub qual: String,
    pub file: String,
    pub line: u32,
    pub crate_name: String,
    pub acquires: Vec<Acq>,
    pub lock_edges: Vec<LockEdge>,
    pub calls: Vec<Call>,
    /// `.await` reached while a guard is live: (lock, await line).
    pub awaits_under_guard: Vec<(String, u32)>,
    /// Channel `send`/`try_send`/`blocking_send` while a guard is live.
    pub sends_under_guard: Vec<(String, u32)>,
    pub iter_sites: Vec<IterSite>,
    /// Body touches a digest/hashing sink (`digest`, `DefaultHasher`,
    /// `mix64`, `fnv1a`, `trace_digest`).
    pub has_sink: bool,
}

/// `is_retryable` as found next to a `PrestoError` declaration.
#[derive(Debug, Clone)]
pub struct Retryable {
    pub line: u32,
    /// Every identifier appearing in the body (variant mentions).
    pub idents: Vec<String>,
    /// A `_ =>` arm, which would silently classify new variants.
    pub wildcard_line: Option<u32>,
}

/// Per-file summary: function summaries plus file-level registries.
#[derive(Debug, Clone)]
pub struct FileSummary {
    pub file: String,
    pub crate_name: String,
    pub fns: Vec<FnSummary>,
    /// String literals passed as counter/histogram names:
    /// (method, literal, line).
    pub metric_literals: Vec<(String, String, u32)>,
    /// `const NAME: &str = "value";` items: (name, value, line).
    pub registry_consts: Vec<(String, String, u32)>,
    /// `enum PrestoError` variants declared here: (variant, line).
    pub error_variants: Vec<(String, u32)>,
    pub error_enum_line: Option<u32>,
    pub retryable: Option<Retryable>,
}

/// How a struct field matters to the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    Lock,
    Hash,
    /// e.g. `Mutex<HashMap<...>>`.
    LockAndHash,
}

impl FieldKind {
    pub fn is_lock(self) -> bool {
        matches!(self, FieldKind::Lock | FieldKind::LockAndHash)
    }
    pub fn is_hash(self) -> bool {
        matches!(self, FieldKind::Hash | FieldKind::LockAndHash)
    }
}

/// crate -> struct -> field -> kind. BTreeMaps keep every downstream
/// iteration deterministic.
pub type FieldMap = BTreeMap<String, BTreeMap<String, BTreeMap<String, FieldKind>>>;

/// Summarize every lib/bin file. Test/example files and `#[cfg(test)]`
/// regions are excluded — drivers are not part of the invariant surface.
pub fn summarize_all(ctxs: &[FileCtx]) -> Vec<FileSummary> {
    let fields = harvest_fields(ctxs);
    ctxs.iter()
        .filter(|c| c.class != FileClass::TestOrExample)
        .map(|c| summarize_file(c, &fields))
        .collect()
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

// ---------------------------------------------------------------------------
// Field harvesting (sub-pass 1a)
// ---------------------------------------------------------------------------

/// Walk every struct declaration in every file, recording which fields are
/// lock-typed (`Mutex`/`RwLock`) and which are unordered containers
/// (`HashMap`/`HashSet`).
pub fn harvest_fields(ctxs: &[FileCtx]) -> FieldMap {
    let mut map: FieldMap = BTreeMap::new();
    for ctx in ctxs {
        let Some(krate) = ctx.crate_name().map(str::to_string) else { continue };
        let toks = &ctx.lexed.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if ident_at(toks, i) == Some("struct") {
                if let Some((name, body)) = struct_body(toks, i) {
                    for (field, kind) in struct_fields(&toks[body.0..body.1]) {
                        map.entry(krate.clone())
                            .or_default()
                            .entry(name.clone())
                            .or_default()
                            .insert(field, kind);
                    }
                    i = body.1;
                    continue;
                }
            }
            i += 1;
        }
    }
    map
}

/// From the `struct` keyword, find the name and the token range of the
/// `{ ... }` body (exclusive of the braces). Tuple/unit structs yield none.
fn struct_body(toks: &[Tok], kw: usize) -> Option<(String, (usize, usize))> {
    let name = ident_at(toks, kw + 1)?.to_string();
    let mut i = kw + 2;
    let mut angle = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !is_punct(toks, i.wrapping_sub(1), '-') => angle -= 1,
            TokKind::Punct('{') if angle == 0 => {
                let close = match_brace(toks, i)?;
                return Some((name, (i + 1, close)));
            }
            // tuple (`(`) or unit (`;`) struct: no named fields
            TokKind::Punct('(') | TokKind::Punct(';') if angle == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parse `name: Type,` fields at depth 0 of a struct body slice.
fn struct_fields(body: &[Tok]) -> Vec<(String, FieldKind)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32; // (), [], {} inside default-type expressions etc.
    let mut angle = 0i32;
    while i < body.len() {
        match &body[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !is_punct(body, i.wrapping_sub(1), '-') => angle -= 1,
            TokKind::Punct(':') if depth == 0 && angle == 0 => {
                // field name is the ident just before `:`
                if let Some(name) = ident_at(body, i.wrapping_sub(1)) {
                    // type runs to the `,` at depth 0 / angle 0, or body end
                    let mut j = i + 1;
                    let (mut d2, mut a2) = (0i32, 0i32);
                    let mut has_lock = false;
                    let mut has_hash = false;
                    while j < body.len() {
                        match &body[j].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                d2 += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                d2 -= 1
                            }
                            TokKind::Punct('<') => a2 += 1,
                            TokKind::Punct('>') if !is_punct(body, j - 1, '-') => a2 -= 1,
                            TokKind::Punct(',') if d2 == 0 && a2 == 0 => break,
                            TokKind::Ident => match body[j].text.as_str() {
                                "Mutex" | "RwLock" => has_lock = true,
                                "HashMap" | "HashSet" => has_hash = true,
                                _ => {}
                            },
                            _ => {}
                        }
                        j += 1;
                    }
                    let kind = match (has_lock, has_hash) {
                        (true, true) => Some(FieldKind::LockAndHash),
                        (true, false) => Some(FieldKind::Lock),
                        (false, true) => Some(FieldKind::Hash),
                        (false, false) => None,
                    };
                    if let Some(kind) = kind {
                        out.push((name.to_string(), kind));
                    }
                    i = j;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// File summarization (sub-pass 1b)
// ---------------------------------------------------------------------------

/// Summarize one file against the workspace-wide field map.
pub fn summarize_file(ctx: &FileCtx, fields: &FieldMap) -> FileSummary {
    let krate = ctx.crate_name().unwrap_or("").to_string();
    let toks = &ctx.lexed.tokens;
    let mut out = FileSummary {
        file: ctx.rel_path.clone(),
        crate_name: krate.clone(),
        fns: Vec::new(),
        metric_literals: Vec::new(),
        registry_consts: Vec::new(),
        error_variants: Vec::new(),
        error_enum_line: None,
        retryable: None,
    };

    // impl blocks: (struct name, body token range)
    let impls = impl_blocks(toks);

    let mut i = 0usize;
    while i < toks.len() {
        match ident_at(toks, i) {
            Some("fn") if !ctx.in_test_code(i) => {
                if let Some((name, body)) = fn_body(toks, i) {
                    let self_struct = impls
                        .iter()
                        .filter(|(_, (a, b))| i > *a && i < *b)
                        .map(|(n, _)| n.as_str())
                        .next_back();
                    out.fns.push(summarize_fn(ctx, fields, &krate, &name, self_struct, i, body));
                    // do not skip the body: nested fns get their own summary
                }
                i += 1;
            }
            Some("enum") if ident_at(toks, i + 1) == Some("PrestoError") => {
                if let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) {
                    if let Some(close) = match_brace(toks, open) {
                        out.error_enum_line = Some(toks[i].line);
                        out.error_variants = enum_variants(&toks[open + 1..close]);
                        i = close;
                        continue;
                    }
                }
                i += 1;
            }
            Some("const") => {
                // `const NAME: &str = "value";`
                if let (Some(name), Some(val)) = (
                    ident_at(toks, i + 1),
                    toks.iter()
                        .skip(i + 2)
                        .take(8)
                        .take_while(|t| !t.is_punct(';'))
                        .find(|t| t.is_str()),
                ) {
                    if toks[i + 1..].iter().take(8).any(|t| t.is_ident("str")) {
                        out.registry_consts.push((
                            name.to_string(),
                            val.text.clone(),
                            toks[i].line,
                        ));
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Metric-name literals anywhere in non-test code:
    // `.incr("x"` / `.add("x"` / `.record("x"` / `.observe("x"` plus the
    // telemetry record sites `.sample("x"` / `.sample_for("x"` /
    // `.set_gauge("x"` / `.gauge("x"`.
    for j in 0..toks.len() {
        if let Some(m) = ident_at(toks, j) {
            if matches!(
                m,
                "incr"
                    | "add"
                    | "record"
                    | "observe"
                    | "sample"
                    | "sample_for"
                    | "set_gauge"
                    | "gauge"
            ) && j > 0
                && toks[j - 1].is_punct('.')
                && is_punct(toks, j + 1, '(')
                && toks.get(j + 2).is_some_and(|t| t.is_str())
                && !ctx.in_test_code(j)
            {
                out.metric_literals.push((m.to_string(), toks[j + 2].text.clone(), toks[j].line));
            }
        }
    }

    // `fn is_retryable` body (wherever it appears in the file)
    for j in 0..toks.len() {
        if ident_at(toks, j) == Some("fn")
            && ident_at(toks, j + 1) == Some("is_retryable")
            && !ctx.in_test_code(j)
        {
            if let Some((_, (a, b))) = fn_body(toks, j) {
                let body = &toks[a..b];
                let idents = body
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                let wildcard_line = body
                    .windows(3)
                    .find(|w| w[0].is_ident("_") && w[1].is_punct('=') && w[2].is_punct('>'))
                    .map(|w| w[0].line);
                out.retryable = Some(Retryable { line: toks[j].line, idents, wildcard_line });
            }
        }
    }

    out
}

/// Every `impl X { ... }` / `impl Trait for X { ... }` block.
fn impl_blocks(toks: &[Tok]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) == Some("impl") {
            let mut angle = 0i32;
            let mut j = i + 1;
            let mut after_for: Option<usize> = None;
            let mut open = None;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if !is_punct(toks, j - 1, '-') => angle -= 1,
                    TokKind::Ident if toks[j].text == "for" && angle == 0 => after_for = Some(j),
                    TokKind::Punct('{') if angle == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(';') if angle == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let name_from = after_for.map(|f| f + 1).unwrap_or(i + 1);
                let name =
                    (name_from..open).find_map(|k| ident_at(toks, k)).unwrap_or("").to_string();
                if let Some(close) = match_brace(toks, open) {
                    out.push((name, (open, close)));
                    // walk into the body anyway: nothing nests impls
                }
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// From the `fn` keyword, the function name and body token range
/// (exclusive of the braces). Trait-declaration signatures (ending `;`)
/// yield none.
fn fn_body(toks: &[Tok], kw: usize) -> Option<(String, (usize, usize))> {
    let name = ident_at(toks, kw + 1)?.to_string();
    let mut j = kw + 2;
    let (mut paren, mut angle) = (0i32, 0i32);
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !is_punct(toks, j - 1, '-') => angle -= 1,
            TokKind::Punct('{') if paren == 0 && angle <= 0 => {
                let close = match_brace(toks, j)?;
                return Some((name, (j + 1, close)));
            }
            TokKind::Punct(';') if paren == 0 && angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Variant names at depth 0 of an enum body slice.
fn enum_variants(body: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut at_start = true; // start of a variant (after `{`, `,`, or `]`)
    for (i, t) in body.iter().enumerate() {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 && t.is_punct(']') {
                    at_start = true; // attribute closed; variant name follows
                }
            }
            TokKind::Punct(',') if depth == 0 => at_start = true,
            TokKind::Punct('#') if depth == 0 => {} // attribute opener
            TokKind::Ident if depth == 0 => {
                if at_start {
                    out.push((t.text.clone(), t.line));
                    at_start = false;
                }
                let _ = i;
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Function body analysis
// ---------------------------------------------------------------------------

/// Methods whose zero-arg call on a lock field is an acquisition.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Iterator-producing methods on unordered containers.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "par_iter"];

/// Order-insensitive reductions: consuming an unordered iterator this way
/// cannot leak iteration order.
const ORDER_INSENSITIVE: &[&str] = &[
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
    "product",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "unzip_sum",
];

/// Sorting calls that restore determinism after an unordered iteration.
const SORTS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
];

/// Idents marking a digest/hashing sink.
const SINKS: &[&str] = &["digest", "DefaultHasher", "mix64", "fnv1a", "trace_digest"];

/// Method names too generic to resolve through the call graph — resolving
/// `x.get(...)` to every function named `get` in the workspace would wire
/// unrelated code together.
const CALL_STOPLIST: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "take",
    "len",
    "is_empty",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "push",
    "pop",
    "contains",
    "contains_key",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "new",
    "default",
    "next",
    "cmp",
    "eq",
    "ne",
    "fmt",
    "drop",
    "clear",
    "to_string",
    "into",
    "from",
    "try_from",
    "as_ref",
    "as_str",
    "as_bytes",
    "as_slice",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "fold",
    "sum",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "collect",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "rev",
    "zip",
    "enumerate",
    "take_while",
    "skip",
    "skip_while",
    "chain",
    "flat_map",
    "flatten",
    "any",
    "all",
    "position",
    "find",
    "find_map",
    "last",
    "first",
    "split",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "push_str",
    "lock",
    "read",
    "write",
    "try_lock",
    "format",
    "abs",
    "powi",
    "powf",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "to_vec",
    "to_owned",
    "cloned",
    "copied",
    "as_mut",
    "as_deref",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "min_element",
    "max_element",
    "send",
    "try_send",
    "blocking_send",
    "recv",
    "try_recv",
    "await",
    "clamp",
    "swap",
    "replace",
    "truncate",
    "resize",
    "retain",
    "dedup",
    "windows",
    "chunks",
    "binary_search",
    "binary_search_by",
    "partition_point",
    "iter_sorted",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_opt",
    "with_capacity",
    "reserve",
    "shrink_to_fit",
    "get_or_insert_with",
    "hash",
    "finish",
    "build",
    "value",
    "snapshot",
    "incr",
    "record",
    "observe",
    "add",
];

struct LiveGuard {
    lock: String,
    line: u32,
    /// Token-index range (inclusive) during which the guard is live.
    start: usize,
    end: usize,
}

#[allow(clippy::too_many_arguments)]
fn summarize_fn(
    ctx: &FileCtx,
    fields: &FieldMap,
    krate: &str,
    name: &str,
    self_struct: Option<&str>,
    kw: usize,
    body: (usize, usize),
) -> FnSummary {
    let toks = &ctx.lexed.tokens;
    let (bs, be) = body;
    let decl_line = toks[kw].line;
    let qual = match self_struct {
        Some(s) => format!("{krate}::{s}::{name}"),
        None => format!("{krate}::{name}"),
    };
    let mut summary = FnSummary {
        name: name.to_string(),
        qual,
        file: ctx.rel_path.clone(),
        line: decl_line,
        crate_name: krate.to_string(),
        acquires: Vec::new(),
        lock_edges: Vec::new(),
        calls: Vec::new(),
        awaits_under_guard: Vec::new(),
        sends_under_guard: Vec::new(),
        iter_sites: Vec::new(),
        has_sink: false,
    };

    // --- guards: find acquisitions and their live ranges -------------------
    let mut guards: Vec<LiveGuard> = Vec::new();
    for i in bs..be {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = ident_at(toks, i + 1) else { continue };
        if !ACQUIRE_METHODS.contains(&m)
            || !is_punct(toks, i + 2, '(')
            || !is_punct(toks, i + 3, ')')
        {
            continue;
        }
        let Some(lock) = resolve_lock(toks, i, fields, krate, self_struct) else { continue };
        let line = toks[i + 1].line;
        let stmt_start = statement_start(toks, bs, i);
        let end = if let Some(bound) = let_binding(toks, stmt_start) {
            guard_block_end(toks, i + 3, be, &bound)
        } else {
            guard_stmt_end(toks, i + 3, be)
        };
        summary.acquires.push(Acq { lock: lock.clone(), line });
        guards.push(LiveGuard { lock, line, start: i, end });
    }

    // intra-function order edges: b acquired while a live
    for a in &guards {
        for b in &guards {
            if b.start > a.start && b.start <= a.end && a.lock != b.lock {
                summary.lock_edges.push(LockEdge {
                    held: a.lock.clone(),
                    held_line: a.line,
                    inner: b.lock.clone(),
                    inner_line: toks[b.start].line,
                });
            }
        }
    }

    let holds_at = |i: usize| -> Vec<Acq> {
        guards
            .iter()
            .filter(|g| i > g.start && i <= g.end)
            .map(|g| Acq { lock: g.lock.clone(), line: g.line })
            .collect()
    };

    // --- calls, awaits, sends, sinks, hash locals --------------------------
    let hash_locals = hash_locals(toks, kw, be);
    for i in bs..be {
        let Some(id) = ident_at(toks, i) else { continue };
        if SINKS.contains(&id) {
            summary.has_sink = true;
        }
        if id == "await" && i > 0 && toks[i - 1].is_punct('.') {
            for h in holds_at(i) {
                summary.awaits_under_guard.push((h.lock, toks[i].line));
            }
            continue;
        }
        if matches!(id, "send" | "try_send" | "blocking_send")
            && i > 0
            && toks[i - 1].is_punct('.')
            && is_punct(toks, i + 1, '(')
        {
            for h in holds_at(i) {
                summary.sends_under_guard.push((h.lock, toks[i].line));
            }
        }
        // call site: `name(` that is not a declaration, macro, or stoplisted
        if is_punct(toks, i + 1, '(')
            && !CALL_STOPLIST.contains(&id)
            && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
        {
            summary.calls.push(Call {
                callee: id.to_string(),
                line: toks[i].line,
                holds: holds_at(i),
            });
        }
    }

    // --- unordered-iteration sites ----------------------------------------
    collect_iter_sites(toks, bs, be, fields, krate, self_struct, &hash_locals, &mut summary);

    summary
}

/// Resolve the receiver of `.lock()`/`.read()`/`.write()` at dot index `i`
/// to a canonical `Struct::field` identity, or None when ambiguous.
fn resolve_lock(
    toks: &[Tok],
    i: usize,
    fields: &FieldMap,
    krate: &str,
    self_struct: Option<&str>,
) -> Option<String> {
    let f = ident_at(toks, i.wrapping_sub(1))?;
    let via_self =
        is_punct(toks, i.wrapping_sub(2), '.') && ident_at(toks, i.wrapping_sub(3)) == Some("self");
    if via_self {
        if let Some(s) = self_struct {
            if fields
                .get(krate)
                .and_then(|c| c.get(s))
                .and_then(|fs| fs.get(f))
                .is_some_and(|k| k.is_lock())
            {
                return Some(format!("{s}::{f}"));
            }
        }
    }
    // unique lock field named `f` in this crate, else workspace-wide
    unique_field(fields, Some(krate), f, FieldKind::is_lock)
        .or_else(|| unique_field(fields, None, f, FieldKind::is_lock))
}

/// The unique `Struct::field` with the given field name satisfying `pred`,
/// searching one crate or (with `krate: None`) the whole workspace.
fn unique_field(
    fields: &FieldMap,
    krate: Option<&str>,
    field: &str,
    pred: fn(FieldKind) -> bool,
) -> Option<String> {
    let mut found: Option<String> = None;
    for (c, structs) in fields {
        if krate.is_some_and(|k| k != c) {
            continue;
        }
        for (s, fs) in structs {
            if fs.get(field).copied().is_some_and(pred) {
                let id = format!("{s}::{field}");
                match &found {
                    None => found = Some(id),
                    Some(prev) if *prev != id => return None, // ambiguous
                    _ => {}
                }
            }
        }
    }
    found
}

/// Token index where the statement containing `i` starts (just after the
/// nearest `;`, `{` or `}` at or before `i`, clamped to the body start).
fn statement_start(toks: &[Tok], body_start: usize, i: usize) -> usize {
    let mut j = i;
    while j > body_start {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j;
        }
        j -= 1;
    }
    body_start
}

/// If the statement at `start` is a simple `let [mut] name = ...` binding,
/// the bound name.
fn let_binding(toks: &[Tok], start: usize) -> Option<String> {
    if ident_at(toks, start)? != "let" {
        return None;
    }
    let mut j = start + 1;
    if ident_at(toks, j) == Some("mut") {
        j += 1;
    }
    let name = ident_at(toks, j)?;
    // `let Ok(g) = ...` / `let (a, b) = ...` are not simple bindings
    let next = toks.get(j + 1)?;
    if next.is_punct('=') || next.is_punct(':') {
        Some(name.to_string())
    } else {
        None
    }
}

/// Live range end for a `let`-bound guard: the enclosing block's close, an
/// explicit `drop(name)`, or a shadowing `let name =`, whichever is first.
fn guard_block_end(toks: &[Tok], from: usize, body_end: usize, name: &str) -> usize {
    let mut brace = 0i32;
    let mut i = from;
    while i < body_end {
        match &toks[i].kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => {
                brace -= 1;
                if brace < 0 {
                    return i.saturating_sub(1);
                }
            }
            TokKind::Ident if brace >= 0 => {
                // `drop(name)` ends the guard early
                if toks[i].is_ident("drop")
                    && is_punct(toks, i + 1, '(')
                    && ident_at(toks, i + 2) == Some(name)
                    && is_punct(toks, i + 3, ')')
                {
                    return i;
                }
                // shadowing `let [mut] name =`
                if toks[i].is_ident("let") {
                    let mut j = i + 1;
                    if ident_at(toks, j) == Some("mut") {
                        j += 1;
                    }
                    if ident_at(toks, j) == Some(name)
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('=') || t.is_punct(':'))
                    {
                        return i.saturating_sub(1);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    body_end.saturating_sub(1)
}

/// Live range end for a temporary guard (`match x.lock() {...}`,
/// `*x.lock() = v;`): the end of the statement, including any block the
/// statement opens.
fn guard_stmt_end(toks: &[Tok], from: usize, body_end: usize) -> usize {
    let mut paren = 0i32; // may go negative: we start mid-expression
    let mut brace = 0i32;
    let mut opened_block = false;
    let mut i = from;
    while i < body_end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('{') => {
                brace += 1;
                if brace == 1 {
                    opened_block = true;
                }
            }
            TokKind::Punct('}') => {
                brace -= 1;
                if brace < 0 {
                    return i.saturating_sub(1);
                }
                if brace == 0 && opened_block {
                    match toks.get(i + 1) {
                        Some(n) if n.is_ident("else") => {}
                        Some(n) if n.is_punct(';') => return i + 1,
                        Some(n) if n.is_punct('.') => {}
                        _ => return i,
                    }
                }
            }
            TokKind::Punct(';') if brace == 0 && paren <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_end.saturating_sub(1)
}

/// Names that are `HashMap`/`HashSet`-typed locals or parameters
/// (`x: HashMap<...>`, `let x = HashMap::new()`), scanning from the `fn`
/// keyword (so the signature's params are covered) to the body end.
fn hash_locals(toks: &[Tok], kw: usize, be: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in kw..be {
        let Some(id) = ident_at(toks, i) else { continue };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // `name: [&][mut] HashMap<...>`
        let mut j = i;
        while j > 0 && (toks[j - 1].is_punct('&') || ident_at(toks, j - 1) == Some("mut")) {
            j -= 1;
        }
        if j > 1 && toks[j - 1].is_punct(':') {
            if let Some(n) = ident_at(toks, j - 2) {
                out.push(n.to_string());
                continue;
            }
        }
        // `name = HashMap::new(...)` / `name = HashMap::with_capacity(...)`
        if j > 1 && toks[j - 1].is_punct('=') {
            if let Some(n) = ident_at(toks, j - 2) {
                out.push(n.to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Find unordered-iteration sites in the body and classify escapes.
#[allow(clippy::too_many_arguments)]
fn collect_iter_sites(
    toks: &[Tok],
    bs: usize,
    be: usize,
    fields: &FieldMap,
    krate: &str,
    self_struct: Option<&str>,
    hash_locals: &[String],
    summary: &mut FnSummary,
) {
    // does a sort intervene between `from` and the end of the function?
    let sort_after = |from: usize| -> bool {
        (from..be).any(|j| {
            ident_at(toks, j).is_some_and(|m| SORTS.contains(&m))
                && j > 0
                && toks[j - 1].is_punct('.')
        })
    };
    // is the statement containing `i` escaped (order-insensitive reduction
    // or ordered collection in the same statement)?
    let stmt_escape = |i: usize| -> bool {
        let end = guard_stmt_end(toks, i, be);
        (i..=end.min(be.saturating_sub(1))).any(|j| {
            ident_at(toks, j).is_some_and(|m| {
                (ORDER_INSENSITIVE.contains(&m) && is_punct(toks, j.wrapping_sub(1), '.'))
                    || m == "BTreeMap"
                    || m == "BTreeSet"
            })
        })
    };
    // resolve a receiver chain ending just before the `.m(` dot at `dot`
    let resolve_container = |dot: usize| -> Option<String> {
        let f = ident_at(toks, dot.wrapping_sub(1))?;
        if is_punct(toks, dot.wrapping_sub(2), '.') {
            if ident_at(toks, dot.wrapping_sub(3)) == Some("self") {
                let s = self_struct?;
                return fields
                    .get(krate)
                    .and_then(|c| c.get(s))
                    .and_then(|fs| fs.get(f))
                    .is_some_and(|k| k.is_hash())
                    .then(|| format!("{s}::{f}"));
            }
            // `expr.field.iter()`: unique hash field named `f` in this crate
            return unique_field(fields, Some(krate), f, FieldKind::is_hash);
        }
        // bare local
        hash_locals.contains(&f.to_string()).then(|| f.to_string())
    };

    for i in bs..be {
        let Some(id) = ident_at(toks, i) else { continue };
        // `container.iter()` and friends
        if ITER_METHODS.contains(&id)
            && i > 0
            && toks[i - 1].is_punct('.')
            && is_punct(toks, i + 1, '(')
        {
            if let Some(container) = resolve_container(i - 1) {
                let escaped = stmt_escape(i) || sort_after(i);
                summary.iter_sites.push(IterSite { container, line: toks[i].line, escaped });
            }
        }
        // `for x in [&][mut] chain { ... }`
        if id == "in" {
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| t.is_punct('&')) || ident_at(toks, j) == Some("mut") {
                j += 1;
            }
            // chain: ident (. ident)* directly followed by `{`
            let first = j;
            let mut last_ident = None;
            while let Some(_n) = ident_at(toks, j) {
                last_ident = Some(j);
                if is_punct(toks, j + 1, '.') && ident_at(toks, j + 2).is_some() {
                    j += 2;
                } else {
                    j += 1;
                    break;
                }
            }
            if !is_punct(toks, j, '{') {
                continue;
            }
            let Some(li) = last_ident else { continue };
            let f = ident_at(toks, li).unwrap_or("");
            let container = if li == first {
                hash_locals.contains(&f.to_string()).then(|| f.to_string())
            } else if ident_at(toks, first) == Some("self") && li == first + 2 {
                self_struct.and_then(|s| {
                    fields
                        .get(krate)
                        .and_then(|c| c.get(s))
                        .and_then(|fs| fs.get(f))
                        .is_some_and(|k| k.is_hash())
                        .then(|| format!("{s}::{f}"))
                })
            } else {
                unique_field(fields, Some(krate), f, FieldKind::is_hash)
            };
            if let Some(container) = container {
                // the loop body is the escape window for reductions
                let escaped = stmt_escape(i) || sort_after(i);
                summary.iter_sites.push(IterSite { container, line: toks[i].line, escaped });
            }
        }
    }
}
