//! A minimal Rust lexer: just enough to walk `use` paths, attributes, and
//! call sites without pulling in an external parser.
//!
//! The lexer strips string/char/byte literals and collects comments
//! separately, so rules never false-positive on text inside literals or
//! docs. It is deliberately permissive: malformed input produces a
//! best-effort token stream rather than an error, because a file that does
//! not lex will fail `cargo build` anyway.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `presto_common`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `#`, `!`, ...).
    Punct(char),
    /// The `::` path separator.
    PathSep,
    /// A lifetime (`'a`) — kept distinct so it is never confused with a
    /// char literal.
    Lifetime,
    /// A numeric literal. String/char literals are dropped entirely.
    Number,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier text; empty for non-identifiers.
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this token the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this token the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with the 1-based line range it covers (inclusive).
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`, stripping literals and collecting comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
            }
            b'\'' => {
                // Lifetime `'a` vs char literal `'x'` / `'\n'`: a lifetime is
                // `'` + ident chars with no closing quote.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if is_ident_char(n))
                    && next != Some(b'\\')
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Tok { kind: TokKind::Lifetime, text: String::new(), line });
                } else {
                    i = skip_char_literal(b, i, &mut line);
                }
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Tok { kind: TokKind::PathSep, text: String::new(), line });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                // numbers, incl. `1_000u64`, `0xff`, `1.5` (but not `1..2`)
                i += 1;
                while i < b.len() {
                    let fraction_dot = b[i] == b'.'
                        && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(i.wrapping_sub(1)) != Some(&b'.');
                    if is_ident_char(b[i]) || fraction_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok { kind: TokKind::Number, text: String::new(), line });
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes (`r"`, `r#"`, `b"`, `br#"`) and
                // raw identifiers (`r#match`) start with ident characters.
                if let Some(end) = try_raw_or_byte_string(b, i, &mut line) {
                    i = end;
                    continue;
                }
                if c == b'r'
                    && b.get(i + 1) == Some(&b'#')
                    && b.get(i + 2).is_some_and(|n| is_ident_start(*n))
                {
                    i += 2; // raw identifier: lex the ident part
                }
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c => {
                out.tokens.push(Tok { kind: TokKind::Punct(c as char), text: String::new(), line });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Skip a normal (escaped) string literal starting at the opening `"`.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            // an escaped newline (line continuation) still ends a line
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a char/byte-char literal starting at the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw or byte string (`r"`, `r#*"`, `b"`, `br#*"`),
/// skip it and return the index past its end.
fn try_raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    match b[j] {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' => {
            j += 1;
            if b.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        // scan for `"` followed by `hashes` hashes
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == b'"'
                && b[j + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(j)
    } else {
        // byte string `b"..."` with normal escapes, or byte char `b'x'`
        match b.get(j) {
            Some(&b'"') => Some(skip_string(b, j, line)),
            Some(&b'\'') => Some(skip_char_literal(b, j, line)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn literals_are_stripped() {
        let src = r##"let x = "Instant::now() unwrap()"; let y = 'u'; let z = r#"unsafe"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // the 'x' and '\n' literals are stripped, the lifetimes tokenized
        let lifetimes = lex(src).tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "// one\nfn f() {}\n/* two\nspans */ fn g() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[1].start_line, 3);
        assert_eq!(lexed.comments[1].end_line, 4);
        // tokens after a multi-line comment carry the right line
        let g = lexed.tokens.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* nested */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn path_sep_and_calls() {
        let src = "Instant::now()";
        let toks = lex(src).tokens;
        assert!(toks[0].is_ident("Instant"));
        assert_eq!(toks[1].kind, TokKind::PathSep);
        assert!(toks[2].is_ident("now"));
        assert!(toks[3].is_punct('('));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "for i in 0..10 { let f = 1.5; let h = 0xff_u32; }";
        let toks = lex(src).tokens;
        let numbers = toks.iter().filter(|t| t.kind == TokKind::Number).count();
        assert_eq!(numbers, 4);
        // `..` survives as two puncts
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#type = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}
