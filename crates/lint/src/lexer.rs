//! A minimal Rust lexer: just enough to walk `use` paths, attributes, and
//! call sites without pulling in an external parser.
//!
//! String/char/byte literals never pollute the identifier stream — a string
//! containing `unwrap()` can't trip the no-unwrap rule — but string literals
//! are kept as [`TokKind::Str`] tokens carrying their content, because the
//! metrics-registry rule must see the actual name passed to
//! `CounterSet::incr` and friends. Raw strings (`r#"…"#`, any hash depth)
//! and nested block comments are handled exactly, so a `//` or `"` inside
//! either can never desynchronize the scan. Comments are collected
//! separately with their line ranges (for `lint:allow` and `SAFETY:`
//! directives). The lexer is deliberately permissive: malformed input
//! produces a best-effort token stream rather than an error, because a file
//! that does not lex will fail `cargo build` anyway.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `presto_common`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `#`, `!`, ...).
    Punct(char),
    /// The `::` path separator.
    PathSep,
    /// A lifetime (`'a`) — kept distinct so it is never confused with a
    /// char literal.
    Lifetime,
    /// A numeric literal. Char literals are dropped entirely.
    Number,
    /// A string or byte-string literal; `text` holds the content between
    /// the quotes (raw content for `r"…"`/`r#"…"#`, escapes unprocessed).
    Str,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier text or string-literal content; empty otherwise.
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this token the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this token the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Is this token a string literal?
    pub fn is_str(&self) -> bool {
        self.kind == TokKind::Str
    }
}

/// A comment with the 1-based line range it covers (inclusive).
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`, keeping string literals as [`TokKind::Str`] tokens and
/// collecting comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                // Block comments nest: `/* a /* b */ c */` is ONE comment.
                // Track depth so the inner `*/` can't end the outer scan —
                // otherwise the tail would leak into the token stream.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let start_line = line;
                let end = skip_string(b, i, &mut line);
                // content excludes the closing quote when the literal closed
                let content_end =
                    if end > i + 1 && b.get(end - 1) == Some(&b'"') { end - 1 } else { end };
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: string_content(src, i + 1, content_end),
                    line: start_line,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime `'a` vs char literal `'x'` / `'\n'`: a lifetime is
                // `'` + ident chars with no closing quote.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if is_ident_char(n))
                    && next != Some(b'\\')
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Tok { kind: TokKind::Lifetime, text: String::new(), line });
                } else {
                    i = skip_char_literal(b, i, &mut line);
                }
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Tok { kind: TokKind::PathSep, text: String::new(), line });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                // numbers, incl. `1_000u64`, `0xff`, `1.5` (but not `1..2`)
                i += 1;
                while i < b.len() {
                    let fraction_dot = b[i] == b'.'
                        && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(i.wrapping_sub(1)) != Some(&b'.');
                    if is_ident_char(b[i]) || fraction_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok { kind: TokKind::Number, text: String::new(), line });
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes (`r"`, `r#"`, `b"`, `br#"`) and
                // raw identifiers (`r#match`) start with ident characters.
                let start_line = line;
                if let Some((end, content)) = try_raw_or_byte_string(b, i, &mut line) {
                    // byte-char literals (`b'x'`) carry no content and are
                    // dropped like char literals
                    if let Some((cs, ce)) = content {
                        out.tokens.push(Tok {
                            kind: TokKind::Str,
                            text: string_content(src, cs, ce),
                            line: start_line,
                        });
                    }
                    i = end;
                    continue;
                }
                if c == b'r'
                    && b.get(i + 1) == Some(&b'#')
                    && b.get(i + 2).is_some_and(|n| is_ident_start(*n))
                {
                    i += 2; // raw identifier: lex the ident part
                }
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c => {
                out.tokens.push(Tok { kind: TokKind::Punct(c as char), text: String::new(), line });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Literal content between byte offsets, lossy on the (ASCII-delimited)
/// boundaries; `end` points one past the closing delimiter.
fn string_content(src: &str, content_start: usize, content_end: usize) -> String {
    if content_end <= content_start || content_end > src.len() {
        return String::new();
    }
    String::from_utf8_lossy(&src.as_bytes()[content_start..content_end]).into_owned()
}

/// Skip a normal (escaped) string literal starting at the opening `"`;
/// returns the index one past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            // an escaped newline (line continuation) still ends a line
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a char/byte-char literal starting at the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` starts a raw/byte string (`r"`, `r#*"`, `b"`, `br#*"`)
/// or a byte-char (`b'x'`), skip it and return `(end, content)`: the index
/// past the literal plus the byte range of its string content (None for
/// byte-chars, which are dropped). Returns `None` when `i` is an ordinary
/// identifier.
#[allow(clippy::type_complexity)]
fn try_raw_or_byte_string(
    b: &[u8],
    i: usize,
    line: &mut u32,
) -> Option<(usize, Option<(usize, usize)>)> {
    let mut j = i;
    let mut raw = false;
    match b[j] {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' => {
            j += 1;
            if b.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        let content_start = j;
        // A raw string has no escapes: it ends at the first `"` followed by
        // exactly as many `#` as opened it. Anything else — `//`, `/*`,
        // lone `"` with too few hashes — is content.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == b'"'
                && b[j + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
                && b[j + 1..].len() >= hashes
            {
                return Some((j + 1 + hashes, Some((content_start, j))));
            }
            j += 1;
        }
        Some((j, Some((content_start, j))))
    } else {
        // byte string `b"..."` with normal escapes, or byte char `b'x'`
        match b.get(j) {
            Some(&b'"') => {
                let end = skip_string(b, j, line);
                // content excludes the closing quote when present
                let content_end = if b.get(end.wrapping_sub(1)) == Some(&b'"') && end > j + 1 {
                    end - 1
                } else {
                    end.min(b.len())
                };
                Some((end, Some((j + 1, content_end))))
            }
            Some(&b'\'') => Some((skip_char_literal(b, j, line), None)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text).collect()
    }

    #[test]
    fn literals_do_not_leak_identifiers() {
        let src = r##"let x = "Instant::now() unwrap()"; let y = 'u'; let z = r#"unsafe"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn string_literals_become_str_tokens_with_content() {
        let src = r#"metrics.incr("flc.hits"); metrics.add("dc.bytes", n);"#;
        assert_eq!(strings(src), vec!["flc.hits", "dc.bytes"]);
        let toks = lex(src).tokens;
        let s = toks.iter().find(|t| t.is_str()).unwrap();
        assert_eq!(s.line, 1);
    }

    #[test]
    fn raw_strings_keep_content_and_never_open_comments() {
        // `//` and `/*` inside a raw string are content, not comments; the
        // quote inside `r#"…"#` does not end the literal.
        let src = "let a = r#\"quote \" and // slash /* block\"#;\nfn f() {}";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "raw-string content parsed as comment");
        assert_eq!(strings(src), vec!["quote \" and // slash /* block"]);
        let f = lexed.tokens.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn raw_string_hash_depths_and_false_closers() {
        // a `"#` with too few hashes is content; `r##"…"##` needs two
        assert_eq!(strings(r####"let x = r##"a"# b"##;"####), vec!["a\"# b"]);
        assert_eq!(strings("let x = r\"plain\";"), vec!["plain"]);
        // a raw string closing at EOF without enough hashes keeps content
        assert_eq!(strings("let x = r##\"unterminated\"#"), vec!["unterminated\"#"]);
    }

    #[test]
    fn multiline_raw_string_counts_lines() {
        let src = "let q = r#\"line one\nline two\"#;\nInstant::now()";
        let toks = lex(src).tokens;
        let instant = toks.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(instant.line, 3);
        // Str token carries the line of its opening quote
        let s = toks.iter().find(|t| t.is_str()).unwrap();
        assert_eq!(s.line, 1);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(strings("let b = b\"bytes\";"), vec!["bytes"]);
        assert_eq!(strings("let b = br#\"raw bytes\"#;"), vec!["raw bytes"]);
        // byte char is dropped like a char literal; `b` alone stays an ident
        let src = "let c = b'x'; let b = 1;";
        assert_eq!(strings(src), Vec::<String>::new());
        assert!(idents(src).contains(&"b".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // the 'x' and '\n' literals are stripped, the lifetimes tokenized
        let lifetimes = lex(src).tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "// one\nfn f() {}\n/* two\nspans */ fn g() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[1].start_line, 3);
        assert_eq!(lexed.comments[1].end_line, 4);
        // tokens after a multi-line comment carry the right line
        let g = lexed.tokens.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* nested */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn nested_block_comment_tail_never_leaks_tokens() {
        // the inner `*/` must not end the outer comment: `leak()` is comment
        // text, and the string inside the comment is not a Str token
        let src = "/* outer /* inner */ leak() \"not a string\" */ fn real() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("leak()"));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("leak")));
        assert!(strings(src).is_empty());
        assert!(lexed.tokens.iter().any(|t| t.is_ident("real")));
    }

    #[test]
    fn multiline_nested_comment_line_counting() {
        let src = "/* a\n/* b\n*/\nc */\nfn after() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].end_line, 4);
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 5);
    }

    #[test]
    fn path_sep_and_calls() {
        let src = "Instant::now()";
        let toks = lex(src).tokens;
        assert!(toks[0].is_ident("Instant"));
        assert_eq!(toks[1].kind, TokKind::PathSep);
        assert!(toks[2].is_ident("now"));
        assert!(toks[3].is_punct('('));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "for i in 0..10 { let f = 1.5; let h = 0xff_u32; }";
        let toks = lex(src).tokens;
        let numbers = toks.iter().filter(|t| t.kind == TokKind::Number).count();
        assert_eq!(numbers, 4);
        // `..` survives as two puncts
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#type = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}
