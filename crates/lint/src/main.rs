//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p presto-lint -- --workspace         # lint the whole repo
//! cargo run -p presto-lint -- --rules             # list the rules
//! cargo run -p presto-lint -- crates/exec         # lint one subtree
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use presto_lint::{check_workspace, default_workspace_root, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "presto-lint: workspace invariant checker\n\n\
             USAGE:\n  presto-lint --workspace          lint the whole workspace\n  \
             presto-lint --rules              list rules\n  \
             presto-lint <path>...            lint files/subtrees under the workspace root\n\n\
             Suppress a single line with a trailing `// lint:allow(<rule-id>)` comment."
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in RULES {
            println!("{:<20} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = default_workspace_root();
    let diagnostics = if args.is_empty() || args.iter().any(|a| a == "--workspace") {
        match check_workspace(root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("presto-lint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Explicit paths: restrict the workspace scan to the given prefixes
        // so per-file classification (crate, lib vs test) still applies.
        let prefixes: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
        match check_workspace(root) {
            Ok(d) => d
                .into_iter()
                .filter(|diag| prefixes.iter().any(|p| Path::new(&diag.path).starts_with(p)))
                .collect(),
            Err(e) => {
                eprintln!("presto-lint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    };

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!("presto-lint: clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("presto-lint: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}
