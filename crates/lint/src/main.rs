//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p presto-lint -- --workspace               # lint the whole repo
//! cargo run -p presto-lint -- --workspace --format json # CI artifact output
//! cargo run -p presto-lint -- --rules                   # list the rules
//! cargo run -p presto-lint -- crates/exec               # lint one subtree
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use presto_lint::{check_workspace, default_workspace_root, to_json, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "presto-lint: workspace invariant checker (two-pass: per-file rules + \
             workspace-global lock-order/taint/registry analysis)\n\n\
             USAGE:\n  presto-lint --workspace          lint the whole workspace\n  \
             presto-lint --rules              list rules\n  \
             presto-lint --format json        emit diagnostics as a JSON array\n  \
             presto-lint <path>...            lint files/subtrees under the workspace root\n\n\
             Suppress with `// lint:allow(<rule-id>)`: trailing covers its line; on its own \
             line it covers exactly the next statement."
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in RULES {
            println!("{:<20} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let json = args.windows(2).any(|w| w[0] == "--format" && w[1] == "json")
        || args.iter().any(|a| a == "--format=json");

    // lint:allow(wall-clock)
    let t0 = std::time::Instant::now();

    let root = default_workspace_root();
    let paths: Vec<PathBuf> =
        args.iter().filter(|a| !a.starts_with("--") && *a != "json").map(PathBuf::from).collect();
    let diagnostics = match check_workspace(root) {
        Ok(d) if paths.is_empty() => d,
        // Explicit paths: restrict the workspace scan to the given prefixes
        // (classification and the global passes still see the whole tree).
        Ok(d) => d
            .into_iter()
            .filter(|diag| paths.iter().any(|p| Path::new(&diag.path).starts_with(p)))
            .collect(),
        Err(e) => {
            eprintln!("presto-lint: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let elapsed = t0.elapsed();

    if json {
        // stdout is the artifact; the human summary goes to stderr
        println!("{}", to_json(&diagnostics));
        eprintln!(
            "presto-lint: {} violation(s), {} rules, {:.2}s",
            diagnostics.len(),
            RULES.len(),
            elapsed.as_secs_f64()
        );
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        if diagnostics.is_empty() {
            println!("presto-lint: clean ({} rules, {:.2}s)", RULES.len(), elapsed.as_secs_f64());
        } else {
            println!(
                "presto-lint: {} violation(s) ({:.2}s)",
                diagnostics.len(),
                elapsed.as_secs_f64()
            );
        }
    }
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
