//! The rule set. Each rule guards one operational invariant from the
//! paper's §XII (running Presto as a fleet): determinism, error
//! propagation, memory-accounting hygiene, and strict layering.

use crate::engine::{Diagnostic, FileClass, FileCtx};
use crate::lexer::{Tok, TokKind};

/// Metadata for one rule, used by `--rules` and the docs.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule the tool ships.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "no Instant::now/SystemTime::now outside presto-common::clock and crates/bench \
                  (determinism: simulated latency must come from the virtual SimClock)",
    },
    Rule {
        id: "no-unwrap",
        summary: "no unwrap()/expect() in non-test code of exec, resource, cluster, core \
                  (errors must propagate as PrestoError, not take down the engine loop)",
    },
    Rule {
        id: "unsafe-needs-safety",
        summary: "every `unsafe` requires an adjacent `// SAFETY:` comment",
    },
    Rule {
        id: "layering",
        summary: "presto_* imports must respect the declared crate DAG \
                  (common -> {storage, parquet, expr} -> exec -> core -> cluster)",
    },
    Rule {
        id: "no-sleep-print",
        summary: "no thread::sleep/println!/eprintln! in library crates \
                  (use the virtual Clock and CounterSet metrics)",
    },
    Rule {
        id: "guard-leak",
        summary: "no mem::forget/Box::leak in library code \
                  (leaking an RAII reservation guard silently loses pool memory)",
    },
];

/// Crates whose non-test code must propagate `PrestoError` instead of
/// panicking: the engine loop, resource manager, cluster, and coordinator.
const NO_UNWRAP_CRATES: &[&str] = &["exec", "resource", "cluster", "core", "sim"];

/// The declared crate DAG (mirrors each crate's `Cargo.toml`): which
/// `presto_*` crates each crate may reference. `common` sits at the bottom;
/// `cluster` at the top. Connectors see the SPI layers only — never `exec`
/// internals.
const LAYERING: &[(&str, &[&str])] = &[
    ("common", &[]),
    ("storage", &["presto_common"]),
    ("expr", &["presto_common"]),
    ("geo", &["presto_common"]),
    ("parquet", &["presto_common", "presto_storage"]),
    ("cache", &["presto_common", "presto_storage", "presto_parquet"]),
    ("resource", &["presto_common", "presto_storage", "presto_parquet"]),
    (
        "connectors",
        &["presto_common", "presto_expr", "presto_storage", "presto_parquet", "presto_cache"],
    ),
    (
        "plan",
        &["presto_common", "presto_expr", "presto_connectors", "presto_geo", "presto_parquet"],
    ),
    ("sql", &["presto_common", "presto_expr", "presto_plan", "presto_connectors"]),
    (
        "exec",
        &[
            "presto_common",
            "presto_expr",
            "presto_plan",
            "presto_connectors",
            "presto_geo",
            "presto_resource",
        ],
    ),
    (
        "core",
        &[
            "presto_common",
            "presto_expr",
            "presto_sql",
            "presto_plan",
            "presto_exec",
            "presto_connectors",
            "presto_geo",
            "presto_storage",
            "presto_parquet",
            "presto_cache",
            "presto_resource",
        ],
    ),
    (
        "cluster",
        &[
            "presto_common",
            "presto_core",
            "presto_connectors",
            "presto_exec",
            "presto_plan",
            "presto_cache",
            "presto_resource",
        ],
    ),
    (
        "sim",
        &["presto_common", "presto_core", "presto_connectors", "presto_cluster", "presto_resource"],
    ),
];

/// The files allowed to read the real clock: the virtual-clock module
/// itself and the benchmark crate that measures real elapsed time.
fn wall_clock_exempt(ctx: &FileCtx) -> bool {
    ctx.rel_path == "crates/common/src/clock.rs" || ctx.crate_name() == Some("bench")
}

/// Run every rule over one file.
pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    if ctx.class == FileClass::TestOrExample {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        wall_clock(ctx, toks, i, &mut out);
        no_unwrap(ctx, toks, i, &mut out);
        unsafe_needs_safety(ctx, toks, i, &mut out);
        layering(ctx, toks, i, &mut out);
        no_sleep_print(ctx, toks, i, &mut out);
        guard_leak(ctx, toks, i, &mut out);
    }
    out.retain(|d| !ctx.is_allowed(d.rule, d.line));
    out
}

fn push(out: &mut Vec<Diagnostic>, ctx: &FileCtx, rule: &'static str, line: u32, message: String) {
    out.push(Diagnostic { rule, path: ctx.rel_path.clone(), line, message });
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` anywhere outside the
/// virtual-clock module. Wall time in engine code breaks deterministic
/// latency accounting (§VII/§IX experiments replay on the SimClock).
fn wall_clock(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if wall_clock_exempt(ctx) || ctx.in_test_code(i) {
        return;
    }
    let Some(head) = ident_at(toks, i) else { return };
    if (head == "Instant" || head == "SystemTime")
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("now")
    {
        push(
            out,
            ctx,
            "wall-clock",
            toks[i].line,
            format!("{head}::now() reads the wall clock; use presto_common::SimClock so simulated latency stays deterministic"),
        );
    }
}

/// `no-unwrap`: `.unwrap()` / `.expect(` in the crates whose panics would
/// take down the engine loop. `unwrap_or*` / `unwrap_err` are different
/// identifiers and never match.
fn no_unwrap(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let in_scope =
        matches!(&ctx.class, FileClass::Lib(n) if NO_UNWRAP_CRATES.contains(&n.as_str()));
    if !in_scope || ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    if (name == "unwrap" || name == "expect")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        push(
            out,
            ctx,
            "no-unwrap",
            toks[i].line,
            format!(".{name}() can panic mid-query; propagate a PrestoError (Internal for invariant violations) instead"),
        );
    }
}

/// `unsafe-needs-safety`: every `unsafe` keyword needs a `// SAFETY:`
/// comment on the same line or just above it.
fn unsafe_needs_safety(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if ident_at(toks, i) != Some("unsafe") {
        return;
    }
    let line = toks[i].line;
    if !ctx.has_safety_comment(line) {
        push(
            out,
            ctx,
            "unsafe-needs-safety",
            line,
            "`unsafe` without an adjacent `// SAFETY:` comment documenting the audited invariant"
                .to_string(),
        );
    }
}

/// `layering`: any `presto_*` path in crate C must be a declared dependency
/// of C. Catches `use` lines and fully-qualified call sites alike.
fn layering(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let Some(crate_name) = ctx.crate_name() else { return };
    if matches!(crate_name, "root" | "bench" | "lint") {
        return;
    }
    let Some(referenced) = ident_at(toks, i) else { return };
    if !referenced.starts_with("presto_") {
        return;
    }
    let self_name = format!("presto_{crate_name}");
    if referenced == self_name {
        return;
    }
    let allowed =
        LAYERING.iter().find(|(name, _)| *name == crate_name).map(|(_, deps)| *deps).unwrap_or(&[]);
    if !allowed.contains(&referenced) {
        push(
            out,
            ctx,
            "layering",
            toks[i].line,
            format!(
                "crate `{crate_name}` may not reference `{referenced}`: it is not in its declared dependency DAG (see crates/lint/src/rules.rs LAYERING)"
            ),
        );
    }
}

/// `no-sleep-print`: real sleeps stall deterministic schedulers, and stdout
/// writes from library crates bypass the metrics pipeline.
fn no_sleep_print(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let in_scope =
        matches!(&ctx.class, FileClass::Lib(n) if !matches!(n.as_str(), "bench" | "lint"));
    if !in_scope || ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    if name == "thread"
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("sleep")
    {
        push(
            out,
            ctx,
            "no-sleep-print",
            toks[i].line,
            "thread::sleep in a library crate; advance the virtual SimClock instead".to_string(),
        );
        return;
    }
    if matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
    {
        push(
            out,
            ctx,
            "no-sleep-print",
            toks[i].line,
            format!("{name}! in a library crate; record a CounterSet metric or return data to the caller"),
        );
    }
}

/// `guard-leak`: `mem::forget` / `Box::leak` defeat RAII. Forgetting a
/// `Reservation` guard leaks pool bytes until the query is dropped —
/// the exact accounting drift the memory pool exists to prevent.
fn guard_leak(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    let leak = (name == "mem"
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("forget"))
        || (name == "Box"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
            && ident_at(toks, i + 2) == Some("leak"));
    if leak {
        let what = if name == "mem" { "mem::forget" } else { "Box::leak" };
        push(
            out,
            ctx,
            "guard-leak",
            toks[i].line,
            format!("{what} defeats RAII; a leaked reservation guard never returns its bytes to the MemoryPool"),
        );
    }
}
