//! The rule set. Each rule guards one operational invariant from the
//! paper's §XII (running Presto as a fleet): determinism, error
//! propagation, memory-accounting hygiene, and strict layering.

use crate::engine::{Diagnostic, FileClass, FileCtx};
use crate::lexer::{Tok, TokKind};
use crate::summary::FileSummary;
use crate::{graph, taint};

/// Metadata for one rule, used by `--rules` and the docs.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule the tool ships.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "no Instant::now/SystemTime::now outside presto-common::clock and crates/bench \
                  (determinism: simulated latency must come from the virtual SimClock)",
    },
    Rule {
        id: "no-unwrap",
        summary: "no unwrap()/expect() in non-test code of exec, resource, cluster, core \
                  (errors must propagate as PrestoError, not take down the engine loop)",
    },
    Rule {
        id: "unsafe-needs-safety",
        summary: "every `unsafe` requires an adjacent `// SAFETY:` comment",
    },
    Rule {
        id: "layering",
        summary: "presto_* imports must respect the declared crate DAG \
                  (common -> {storage, parquet, expr} -> exec -> core -> cluster)",
    },
    Rule {
        id: "no-sleep-print",
        summary: "no thread::sleep/println!/eprintln! in library crates \
                  (use the virtual Clock and CounterSet metrics)",
    },
    Rule {
        id: "guard-leak",
        summary: "no mem::forget/Box::leak in library code \
                  (leaking an RAII reservation guard silently loses pool memory)",
    },
    Rule {
        id: "lock-order",
        summary: "the workspace-global lock-order graph must be acyclic, and no guard may be \
                  held across .await (a cycle means two threads can deadlock; the diagnostic \
                  carries the full cross-file witness path)",
    },
    Rule {
        id: "map-iter-in-digest",
        summary: "no unordered HashMap/HashSet iteration reaching a digest/report sink without \
                  an intervening sort (iteration order varies run-to-run and breaks the \
                  same-seed digest CI gates)",
    },
    Rule {
        id: "metrics-registry",
        summary: "counter/histogram/time-series/gauge names at record sites (incr, add, record, \
                  observe, sample, sample_for, set_gauge, gauge) must be metrics::names \
                  constants, never string literals (a typo silently splits a metric), and \
                  registry constants must not share values",
    },
    Rule {
        id: "error-taxonomy",
        summary: "every PrestoError variant must be explicitly classified in is_retryable \
                  (no wildcard arm), so retry loops never meet an unclassified error",
    },
];

/// Crates whose non-test code must propagate `PrestoError` instead of
/// panicking: the engine loop, resource manager, cluster, and coordinator.
const NO_UNWRAP_CRATES: &[&str] = &["exec", "resource", "cluster", "core", "sim"];

/// The declared crate DAG (mirrors each crate's `Cargo.toml`): which
/// `presto_*` crates each crate may reference. `common` sits at the bottom;
/// `cluster` at the top. Connectors see the SPI layers only — never `exec`
/// internals.
const LAYERING: &[(&str, &[&str])] = &[
    ("common", &[]),
    ("storage", &["presto_common"]),
    ("expr", &["presto_common"]),
    ("geo", &["presto_common"]),
    ("parquet", &["presto_common", "presto_storage"]),
    ("cache", &["presto_common", "presto_storage", "presto_parquet"]),
    ("resource", &["presto_common", "presto_storage", "presto_parquet"]),
    (
        "connectors",
        &["presto_common", "presto_expr", "presto_storage", "presto_parquet", "presto_cache"],
    ),
    (
        "plan",
        &["presto_common", "presto_expr", "presto_connectors", "presto_geo", "presto_parquet"],
    ),
    ("sql", &["presto_common", "presto_expr", "presto_plan", "presto_connectors"]),
    (
        "exec",
        &[
            "presto_common",
            "presto_expr",
            "presto_plan",
            "presto_connectors",
            "presto_geo",
            "presto_resource",
        ],
    ),
    (
        "core",
        &[
            "presto_common",
            "presto_expr",
            "presto_sql",
            "presto_plan",
            "presto_exec",
            "presto_connectors",
            "presto_geo",
            "presto_storage",
            "presto_parquet",
            "presto_cache",
            "presto_resource",
        ],
    ),
    (
        "cluster",
        &[
            "presto_common",
            "presto_core",
            "presto_connectors",
            "presto_exec",
            "presto_plan",
            "presto_cache",
            "presto_resource",
        ],
    ),
    (
        "sim",
        &["presto_common", "presto_core", "presto_connectors", "presto_cluster", "presto_resource"],
    ),
];

/// The files allowed to read the real clock: the virtual-clock module
/// itself and the benchmark crate that measures real elapsed time.
fn wall_clock_exempt(ctx: &FileCtx) -> bool {
    ctx.rel_path == "crates/common/src/clock.rs" || ctx.crate_name() == Some("bench")
}

/// Run every rule over one file.
pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    if ctx.class == FileClass::TestOrExample {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        wall_clock(ctx, toks, i, &mut out);
        no_unwrap(ctx, toks, i, &mut out);
        unsafe_needs_safety(ctx, toks, i, &mut out);
        layering(ctx, toks, i, &mut out);
        no_sleep_print(ctx, toks, i, &mut out);
        guard_leak(ctx, toks, i, &mut out);
    }
    out.retain(|d| !ctx.is_allowed(d.rule, d.line));
    out
}

/// Pass 2: the rules that need the whole workspace's summaries — the
/// lock-order graph, the nondeterminism taint, and the metrics/error
/// registries. Suppression is applied by the caller (it owns the
/// per-file contexts).
pub fn check_global(summaries: &[FileSummary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(graph::check(summaries));
    out.extend(taint::check(summaries));
    out.extend(metrics_registry(summaries));
    out.extend(error_taxonomy(summaries));
    out
}

/// The file that owns the canonical metric-name registry.
const METRICS_REGISTRY_FILE: &str = "crates/common/src/metrics.rs";

/// `metrics-registry`: every counter/histogram name recorded anywhere must
/// be a `metrics::names` constant — a string literal at a record site is a
/// typo waiting to silently split a metric — and no two registry constants
/// may share a value (that silently *merges* two metrics).
fn metrics_registry(summaries: &[FileSummary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in summaries {
        if f.file == METRICS_REGISTRY_FILE || matches!(f.crate_name.as_str(), "lint" | "bench") {
            continue;
        }
        for (method, name, line) in &f.metric_literals {
            out.push(Diagnostic {
                rule: "metrics-registry",
                path: f.file.clone(),
                line: *line,
                message: format!(
                    ".{method}(\"{name}\", ...) passes a string literal as a metric name; add a \
                     constant to presto_common::metrics::names and use it (a typo here silently \
                     splits the metric)"
                ),
            });
        }
    }
    // duplicate values inside the registry itself
    for f in summaries.iter().filter(|f| f.file == METRICS_REGISTRY_FILE) {
        let mut seen: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
        for (name, value, line) in &f.registry_consts {
            if let Some(first) = seen.get(value.as_str()) {
                out.push(Diagnostic {
                    rule: "metrics-registry",
                    path: f.file.clone(),
                    line: *line,
                    message: format!(
                        "registry constant `{name}` duplicates the value \"{value}\" of `{first}`; \
                         two constants naming one metric silently merge unrelated series"
                    ),
                });
            } else {
                seen.insert(value.as_str(), name.as_str());
            }
        }
    }
    out
}

/// `error-taxonomy`: in the file declaring `enum PrestoError`, every
/// variant must be named in `is_retryable` (exhaustively — no `_ =>` arm),
/// so a retry loop can never meet a variant nobody classified.
fn error_taxonomy(summaries: &[FileSummary]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in summaries {
        let Some(enum_line) = f.error_enum_line else { continue };
        let Some(retryable) = &f.retryable else {
            out.push(Diagnostic {
                rule: "error-taxonomy",
                path: f.file.clone(),
                line: enum_line,
                message: "enum PrestoError has no is_retryable in this file; every variant needs \
                          an explicit retry classification"
                    .to_string(),
            });
            continue;
        };
        if let Some(line) = retryable.wildcard_line {
            out.push(Diagnostic {
                rule: "error-taxonomy",
                path: f.file.clone(),
                line,
                message: "is_retryable has a `_ =>` arm: a newly added PrestoError variant would \
                          be classified silently — match every variant explicitly"
                    .to_string(),
            });
        }
        for (variant, line) in &f.error_variants {
            if !retryable.idents.iter().any(|i| i == variant) {
                out.push(Diagnostic {
                    rule: "error-taxonomy",
                    path: f.file.clone(),
                    line: *line,
                    message: format!(
                        "PrestoError::{variant} is never named in is_retryable; classify it \
                         explicitly so retry loops don't meet an unclassified error"
                    ),
                });
            }
        }
    }
    out
}

fn push(out: &mut Vec<Diagnostic>, ctx: &FileCtx, rule: &'static str, line: u32, message: String) {
    out.push(Diagnostic { rule, path: ctx.rel_path.clone(), line, message });
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` anywhere outside the
/// virtual-clock module. Wall time in engine code breaks deterministic
/// latency accounting (§VII/§IX experiments replay on the SimClock).
fn wall_clock(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if wall_clock_exempt(ctx) || ctx.in_test_code(i) {
        return;
    }
    let Some(head) = ident_at(toks, i) else { return };
    if (head == "Instant" || head == "SystemTime")
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("now")
    {
        push(
            out,
            ctx,
            "wall-clock",
            toks[i].line,
            format!("{head}::now() reads the wall clock; use presto_common::SimClock so simulated latency stays deterministic"),
        );
    }
}

/// `no-unwrap`: `.unwrap()` / `.expect(` in the crates whose panics would
/// take down the engine loop. `unwrap_or*` / `unwrap_err` are different
/// identifiers and never match.
fn no_unwrap(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let in_scope =
        matches!(&ctx.class, FileClass::Lib(n) if NO_UNWRAP_CRATES.contains(&n.as_str()));
    if !in_scope || ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    if (name == "unwrap" || name == "expect")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        push(
            out,
            ctx,
            "no-unwrap",
            toks[i].line,
            format!(".{name}() can panic mid-query; propagate a PrestoError (Internal for invariant violations) instead"),
        );
    }
}

/// `unsafe-needs-safety`: every `unsafe` keyword needs a `// SAFETY:`
/// comment on the same line or just above it.
fn unsafe_needs_safety(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if ident_at(toks, i) != Some("unsafe") {
        return;
    }
    let line = toks[i].line;
    if !ctx.has_safety_comment(line) {
        push(
            out,
            ctx,
            "unsafe-needs-safety",
            line,
            "`unsafe` without an adjacent `// SAFETY:` comment documenting the audited invariant"
                .to_string(),
        );
    }
}

/// `layering`: any `presto_*` path in crate C must be a declared dependency
/// of C. Catches `use` lines and fully-qualified call sites alike.
fn layering(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let Some(crate_name) = ctx.crate_name() else { return };
    if matches!(crate_name, "root" | "bench" | "lint") {
        return;
    }
    let Some(referenced) = ident_at(toks, i) else { return };
    if !referenced.starts_with("presto_") {
        return;
    }
    let self_name = format!("presto_{crate_name}");
    if referenced == self_name {
        return;
    }
    let allowed =
        LAYERING.iter().find(|(name, _)| *name == crate_name).map(|(_, deps)| *deps).unwrap_or(&[]);
    if !allowed.contains(&referenced) {
        push(
            out,
            ctx,
            "layering",
            toks[i].line,
            format!(
                "crate `{crate_name}` may not reference `{referenced}`: it is not in its declared dependency DAG (see crates/lint/src/rules.rs LAYERING)"
            ),
        );
    }
}

/// `no-sleep-print`: real sleeps stall deterministic schedulers, and stdout
/// writes from library crates bypass the metrics pipeline.
fn no_sleep_print(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let in_scope =
        matches!(&ctx.class, FileClass::Lib(n) if !matches!(n.as_str(), "bench" | "lint"));
    if !in_scope || ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    if name == "thread"
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("sleep")
    {
        push(
            out,
            ctx,
            "no-sleep-print",
            toks[i].line,
            "thread::sleep in a library crate; advance the virtual SimClock instead".to_string(),
        );
        return;
    }
    if matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
    {
        push(
            out,
            ctx,
            "no-sleep-print",
            toks[i].line,
            format!("{name}! in a library crate; record a CounterSet metric or return data to the caller"),
        );
    }
}

/// `guard-leak`: `mem::forget` / `Box::leak` defeat RAII. Forgetting a
/// `Reservation` guard leaks pool bytes until the query is dropped —
/// the exact accounting drift the memory pool exists to prevent.
fn guard_leak(ctx: &FileCtx, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if ctx.in_test_code(i) {
        return;
    }
    let Some(name) = ident_at(toks, i) else { return };
    let leak = (name == "mem"
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
        && ident_at(toks, i + 2) == Some("forget"))
        || (name == "Box"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::PathSep)
            && ident_at(toks, i + 2) == Some("leak"));
    if leak {
        let what = if name == "mem" { "mem::forget" } else { "Box::leak" };
        push(
            out,
            ctx,
            "guard-leak",
            toks[i].line,
            format!("{what} defeats RAII; a leaked reservation guard never returns its bytes to the MemoryPool"),
        );
    }
}
