//! `presto-lint`: the workspace invariant checker.
//!
//! The paper's operational sections (§XII) describe keeping a very large
//! Presto fleet correct; this reproduction encodes the same invariants
//! (virtual clock, RAII memory reservations, a strict crate DAG) and this
//! tool enforces them mechanically so every PR lands with them intact.
//!
//! Run it over the whole workspace:
//!
//! ```text
//! cargo run -p presto-lint -- --workspace
//! ```
//!
//! It prints `file:line: [rule-id] message` diagnostics and exits nonzero
//! if any are found. A violation that is genuinely intended can be
//! suppressed for a single line with a trailing `// lint:allow(<rule-id>)`
//! comment — the directive applies to its own line only.
//!
//! The tool is dependency-free: a small lexer ([`lexer`]) strips comments
//! and literals and produces a line-annotated token stream, the engine
//! ([`engine`]) classifies files and test regions, and the rules
//! ([`rules`]) pattern-match the tokens.

pub mod engine;
pub mod lexer;
pub mod rules;

use std::path::Path;

pub use engine::{Diagnostic, FileClass, FileCtx};
pub use rules::{Rule, RULES};

/// Check one file's source text under its workspace-relative path (the
/// path decides which rules apply — see [`engine::FileClass`]).
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    rules::check(&FileCtx::new(rel_path, src))
}

/// Check every `.rs` file in the workspace rooted at `root`, in a
/// deterministic order.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for (rel, path) in engine::collect_workspace_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        out.extend(check_source(&rel, &src));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

/// The workspace root when running via `cargo run -p presto-lint`
/// (two levels up from this crate's manifest).
pub fn default_workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).unwrap_or(manifest)
}
