//! `presto-lint`: the workspace invariant checker.
//!
//! The paper's operational sections (§XII) describe keeping a very large
//! Presto fleet correct; this reproduction encodes the same invariants
//! (virtual clock, RAII memory reservations, a strict crate DAG, bit-
//! identical same-seed digests) and this tool enforces them mechanically
//! so every PR lands with them intact.
//!
//! Run it over the whole workspace:
//!
//! ```text
//! cargo run -p presto-lint -- --workspace
//! ```
//!
//! It prints `file:line: [rule-id] message` diagnostics (or a JSON array
//! with `--format json`) and exits nonzero if any are found.
//!
//! The analyzer runs in **two passes**. Pass 1 lexes and classifies every
//! file, runs the per-line token rules ([`rules`]), and builds per-function
//! summaries ([`summary`]): locks acquired and in what order, guards live
//! across `.await`/send boundaries, calls made under a held guard, string
//! literals used as metric names, unordered-container iteration sites, and
//! which bodies touch a digest sink. Pass 2 stitches the summaries into
//! workspace-global diagnostics: the lock-order graph ([`graph`]), the
//! nondeterminism taint ([`taint`]), and the metrics/error-taxonomy
//! registries ([`rules::check_global`]).
//!
//! A violation that is genuinely intended can be suppressed with
//! `// lint:allow(<rule-id>)`: trailing on a line it covers that line; on
//! its own line it covers exactly the next statement (however many lines
//! it spans) and never leaks past it.
//!
//! The tool is dependency-free: a small lexer ([`lexer`]) produces a
//! line-annotated token stream (string literals kept as tokens, comments
//! collected separately), and everything above it is token-pattern
//! analysis.

pub mod engine;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod summary;
pub mod taint;

use std::collections::HashMap;
use std::path::Path;

pub use engine::{Diagnostic, FileClass, FileCtx};
pub use rules::{Rule, RULES};

/// Check a set of sources together: per-file rules plus the workspace-
/// global passes (lock-order graph, nondeterminism taint, registries).
/// `files` holds `(workspace-relative path, source text)` pairs; global
/// diagnostics can span files (a lock-order witness names every file on
/// its cycle).
pub fn check_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let ctxs: Vec<FileCtx> = files.iter().map(|(p, s)| FileCtx::new(p, s)).collect();
    let mut out = Vec::new();
    for ctx in &ctxs {
        out.extend(rules::check(ctx));
    }
    let summaries = summary::summarize_all(&ctxs);
    let mut global = rules::check_global(&summaries);
    // suppression for global diagnostics: honor the owning file's allows
    let by_path: HashMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.rel_path.as_str(), c)).collect();
    global.retain(|d| {
        !by_path.get(d.path.as_str()).is_some_and(|ctx| ctx.is_allowed(d.rule, d.line))
    });
    out.extend(global);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup();
    out
}

/// Check one file's source text under its workspace-relative path (the
/// path decides which rules apply — see [`engine::FileClass`]). Global
/// rules run too, scoped to this one file.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    check_sources(&[(rel_path.to_string(), src.to_string())])
}

/// Check every `.rs` file in the workspace rooted at `root`, in a
/// deterministic order, with the global passes seeing all files at once.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for (rel, path) in engine::collect_workspace_files(root)? {
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(check_sources(&files))
}

/// Render diagnostics as a JSON array (machine-readable CI artifact).
/// Hand-rolled — the tool is dependency-free by design.
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                r#"  {{"rule": "{}", "path": "{}", "line": {}, "message": "{}"}}"#,
                esc(d.rule),
                esc(&d.path),
                d.line,
                esc(&d.message)
            )
        })
        .collect();
    if items.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n]", items.join(",\n"))
    }
}

/// The workspace root when running via `cargo run -p presto-lint`
/// (two levels up from this crate's manifest).
pub fn default_workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).unwrap_or(manifest)
}
