//! Trailing directives are line-scoped; a standalone directive covers the
//! next statement — however many lines it spans — and nothing after it.
use std::collections::HashMap;

pub fn suppressed(map: &HashMap<u32, String>) -> String {
    map.get(&0).unwrap().clone() // lint:allow(no-unwrap)
}

pub fn bare(map: &HashMap<u32, String>) -> String {
    map.get(&1).unwrap().clone()
}

pub fn statement_scoped(map: &HashMap<u32, String>) -> String {
    // lint:allow(no-unwrap)
    let first = map
        .get(&2)
        .unwrap()
        .clone();
    let second = map.get(&3).unwrap().clone();
    format!("{first}{second}")
}
