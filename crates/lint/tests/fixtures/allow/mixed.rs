//! One suppressed violation, one bare violation, and one directive on the
//! line *above* a violation (which must not suppress it).
use std::collections::HashMap;

pub fn suppressed(map: &HashMap<u32, String>) -> String {
    map.get(&0).unwrap().clone() // lint:allow(no-unwrap)
}

pub fn bare(map: &HashMap<u32, String>) -> String {
    map.get(&1).unwrap().clone()
}

pub fn directive_above(map: &HashMap<u32, String>) -> String {
    // lint:allow(no-unwrap)
    map.get(&2).unwrap().clone()
}
