//! Clean: guards release through Drop, possibly early — never silently.
use presto_resource::Reservation;

pub fn release_now(mut guard: Reservation) {
    guard.release_all();
    drop(guard);
}
