//! Bad: defeating RAII on a reservation guard.
use std::mem;

use presto_resource::Reservation;

pub fn hold_forever(guard: Reservation) {
    mem::forget(guard);
}

pub fn leak_state(state: Box<Vec<u8>>) -> &'static mut Vec<u8> {
    Box::leak(state)
}
