//! Clean: every unsafe carries an audited SAFETY comment.
use std::cell::Cell;

pub struct Counter {
    n: Cell<u64>,
}

// SAFETY: the Cell is only written under the build-phase &mut self; after
// publication the index is read-only, so cross-thread reads never race.
unsafe impl Sync for Counter {}

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: bounds asserted on the line above.
    unsafe { *v.get_unchecked(0) }
}
