//! Bad: unsafe with no justification.
use std::cell::Cell;

pub struct Counter {
    n: Cell<u64>,
}

unsafe impl Sync for Counter {}

pub fn first_byte(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
