//! Bad: engine code reading the wall clock.
use std::time::{Instant, SystemTime};

pub fn latency_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
