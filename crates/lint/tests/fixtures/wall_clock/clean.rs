//! Clean: simulated latency comes from the shared virtual clock, and the
//! string "Instant::now()" in a literal or comment is not a violation.
use presto_common::SimClock;
use std::time::Duration;

pub fn simulated_call(clock: &SimClock) -> Duration {
    clock.advance(Duration::from_millis(3))
}

pub fn describe() -> &'static str {
    "never call Instant::now() or SystemTime::now() here"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let _t = Instant::now();
    }
}
