//! Bad: panics in engine-loop code.
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u32, String>, id: u32) -> String {
    map.get(&id).unwrap().clone()
}

pub fn read_config(path: &str) -> String {
    std::fs::read_to_string(path).expect("config must exist")
}
