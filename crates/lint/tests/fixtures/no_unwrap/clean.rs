//! Clean: errors propagate as PrestoError; `unwrap_or` and test code are
//! out of scope.
use std::collections::HashMap;

use presto_common::{PrestoError, Result};

pub fn lookup(map: &HashMap<u32, String>, id: u32) -> Result<String> {
    map.get(&id)
        .cloned()
        .ok_or_else(|| PrestoError::Internal(format!("query {id} not registered")))
}

pub fn fallback(map: &HashMap<u32, String>, id: u32) -> String {
    map.get(&id).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: std::result::Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
