//! Two registry constants with one value silently merge two series.
pub mod names {
    /// Cache hits.
    pub const CACHE_HITS: &str = "cache.hits";
    /// Oops: a copy-paste kept the old value.
    pub const INDEX_HITS: &str = "cache.hits";
}
