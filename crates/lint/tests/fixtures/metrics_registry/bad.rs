//! A string literal at a record site: one typo away from silently
//! splitting a metric into two series.
use presto_common::metrics::CounterSet;

pub fn touch(metrics: &CounterSet) {
    metrics.incr("fixture.hits");
}
