//! Record sites must pass `names::` constants, never literals.
use presto_common::metrics::{names, CounterSet};

pub fn touch(metrics: &CounterSet) {
    metrics.incr(names::FRC_HITS);
}
