//! Every variant explicitly classified; no wildcard to hide behind.
pub enum PrestoError {
    Parse(String),
    Timeout(String),
}

impl PrestoError {
    pub fn is_retryable(&self) -> bool {
        match self {
            PrestoError::Parse(_) => false,
            PrestoError::Timeout(_) => true,
        }
    }
}
