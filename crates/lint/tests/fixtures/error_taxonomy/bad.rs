//! A variant nobody classified, hidden behind a wildcard arm.
pub enum PrestoError {
    Parse(String),
    Timeout(String),
}

impl PrestoError {
    pub fn is_retryable(&self) -> bool {
        match self {
            PrestoError::Parse(_) => false,
            _ => true,
        }
    }
}
