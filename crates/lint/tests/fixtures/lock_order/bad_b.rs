//! Seeded deadlock, half 2: acquires `Pool::mem` then `Scheduler::queue` —
//! the inverse of `bad_a.rs`. Together the two files form a cycle whose
//! halves live in different files; the diagnostic's witness must name both.
impl Pool {
    pub fn reserve(&self, sched: &Scheduler) {
        let m = self.mem.lock();
        let q = sched.queue.lock();
        drop(q);
        drop(m);
    }
}
