//! Seeded deadlock, half 1: acquires `Scheduler::queue` then `Pool::mem`.
use parking_lot::Mutex;

pub struct Scheduler {
    pub queue: Mutex<Vec<u32>>,
}

pub struct Pool {
    pub mem: Mutex<u64>,
}

impl Scheduler {
    pub fn schedule(&self, pool: &Pool) {
        let q = self.queue.lock();
        let m = pool.mem.lock();
        drop(m);
        drop(q);
    }
}
