//! The second file also takes queue before mem: no inversion, no cycle.
impl Pool {
    pub fn reserve(&self, sched: &Scheduler) {
        let q = sched.queue.lock();
        let m = self.mem.lock();
        drop(m);
        drop(q);
    }
}
