//! Bad: real sleeps and stdout writes in a library crate.
use std::thread;
use std::time::Duration;

pub fn wait_for_worker() {
    thread::sleep(Duration::from_millis(50));
    println!("worker ready");
}

pub fn log_error(msg: &str) {
    eprintln!("error: {msg}");
}
