//! Clean: virtual time and metrics instead of sleeps and prints.
use std::time::Duration;

use presto_common::metrics::{names, CounterSet};
use presto_common::SimClock;

pub fn wait_for_worker(clock: &SimClock, metrics: &CounterSet) {
    clock.advance(Duration::from_millis(50));
    metrics.incr(names::CLUSTER_TASKS);
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn tests_may_sleep_and_print() {
        std::thread::sleep(Duration::from_millis(1));
        println!("test output is fine");
    }
}
