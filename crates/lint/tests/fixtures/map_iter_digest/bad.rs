//! Unordered iteration feeding a digest sink: HashMap iteration order
//! varies run-to-run, so the accumulated value differs between replays.
use std::collections::HashMap;

pub fn digest_batch(rows: &HashMap<u64, u64>, acc: &mut u64) {
    for (k, v) in rows.iter() {
        *acc = mix64(*acc ^ *k ^ *v);
    }
}
