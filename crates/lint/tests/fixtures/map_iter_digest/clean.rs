//! Sorted before digesting: the fold sees one canonical order, so the
//! digest is identical on every same-seed run.
use std::collections::HashMap;

pub fn digest_batch(rows: &HashMap<u64, u64>, acc: &mut u64) {
    let mut items: Vec<(u64, u64)> = rows.iter().map(|(k, v)| (*k, *v)).collect();
    items.sort_unstable();
    for (k, v) in items {
        *acc = mix64(*acc ^ k ^ v);
    }
}
