//! Clean (checked as a `storage` crate file): storage sits directly above
//! common and references nothing else.
use presto_common::{PrestoError, Result};

pub fn read(path: &str) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| PrestoError::Storage(format!("{path}: {e}")))
}
