//! Bad (checked as a `storage` crate file): the storage layer reaching up
//! into the executor and coordinator.
use presto_exec::execute;

pub fn run() {
    let _ = presto_core::PrestoEngine::new();
    let _ = execute;
}
