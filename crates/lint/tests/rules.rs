//! Per-rule fixture corpus: one known-bad and one known-clean snippet per
//! rule, asserting exact rule ids and line numbers, plus the suppression
//! and whole-workspace checks.

use std::path::Path;

use presto_lint::{check_source, check_workspace, default_workspace_root, Diagnostic, RULES};

/// Load a fixture and check it under a synthetic workspace path (the path
/// decides crate and class, so fixtures can live outside the real tree).
fn check_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    check_source(as_path, &src)
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn wall_clock_bad_and_clean() {
    let bad = check_fixture("wall_clock/bad.rs", "crates/exec/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "wall-clock"), vec![5, 10]);
    assert_eq!(bad.len(), 2, "unexpected extra diagnostics: {bad:?}");

    let clean = check_fixture("wall_clock/clean.rs", "crates/exec/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn wall_clock_exemptions() {
    let src = "pub fn now_impl() { let _ = Instant::now(); }";
    // the virtual-clock module itself may read the wall clock
    assert!(check_source("crates/common/src/clock.rs", src).is_empty());
    // so may the benchmark crate, which measures real elapsed time
    assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
    // any other library crate may not
    assert_eq!(rule_lines(&check_source("crates/storage/src/x.rs", src), "wall-clock"), vec![1]);
}

#[test]
fn no_unwrap_bad_and_clean() {
    let bad = check_fixture("no_unwrap/bad.rs", "crates/exec/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "no-unwrap"), vec![5, 9]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("no_unwrap/clean.rs", "crates/exec/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn no_unwrap_only_guards_engine_crates() {
    // the same panicky source is fine in a crate outside the engine loop
    let clean = check_fixture("no_unwrap/bad.rs", "crates/parquet/src/fixture.rs");
    assert!(rule_lines(&clean, "no-unwrap").is_empty());
    // and in all four engine crates it is not
    for krate in ["exec", "resource", "cluster", "core"] {
        let path = format!("crates/{krate}/src/fixture.rs");
        let bad = check_fixture("no_unwrap/bad.rs", &path);
        assert_eq!(rule_lines(&bad, "no-unwrap"), vec![5, 9], "crate {krate}");
    }
}

#[test]
fn unsafe_needs_safety_bad_and_clean() {
    let bad = check_fixture("unsafe_safety/bad.rs", "crates/geo/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "unsafe-needs-safety"), vec![8, 11]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("unsafe_safety/clean.rs", "crates/geo/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn layering_bad_and_clean() {
    let bad = check_fixture("layering/bad.rs", "crates/storage/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "layering"), vec![3, 6]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("layering/clean.rs", "crates/storage/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn layering_connectors_must_not_reach_exec() {
    let src = "use presto_exec::execute;";
    let diags = check_source("crates/connectors/src/fixture.rs", src);
    assert_eq!(rule_lines(&diags, "layering"), vec![1]);
    // while exec itself may of course name exec
    assert!(check_source("crates/exec/src/fixture.rs", "use presto_exec::execute;").is_empty());
}

#[test]
fn sleep_print_bad_and_clean() {
    let bad = check_fixture("sleep_print/bad.rs", "crates/cache/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "no-sleep-print"), vec![6, 7, 11]);
    assert_eq!(bad.len(), 3);

    let clean = check_fixture("sleep_print/clean.rs", "crates/cache/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn guard_leak_bad_and_clean() {
    let bad = check_fixture("guard_leak/bad.rs", "crates/resource/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "guard-leak"), vec![7, 11]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("guard_leak/clean.rs", "crates/resource/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn allow_suppresses_only_its_own_line() {
    let diags = check_fixture("allow/mixed.rs", "crates/exec/src/fixture.rs");
    // line 6 is suppressed by its trailing directive; line 10 is bare; the
    // directive on line 14 does NOT cover the violation on line 15
    assert_eq!(rule_lines(&diags, "no-unwrap"), vec![10, 15]);
    assert_eq!(diags.len(), 2);
}

#[test]
fn tests_benches_examples_are_exempt() {
    let src = "pub fn f() { let _ = Instant::now(); let x: Option<u32> = None; x.unwrap(); }";
    for path in [
        "tests/integration.rs",
        "examples/demo.rs",
        "crates/geo/benches/b.rs",
        "crates/exec/tests/t.rs",
    ] {
        assert!(check_source(path, src).is_empty(), "{path} should be exempt");
    }
}

#[test]
fn every_rule_has_fixture_coverage() {
    // keep RULES, the fixture corpus, and this test in sync
    let covered = [
        "wall-clock",
        "no-unwrap",
        "unsafe-needs-safety",
        "layering",
        "no-sleep-print",
        "guard-leak",
    ];
    assert_eq!(RULES.len(), covered.len());
    for rule in RULES {
        assert!(covered.contains(&rule.id), "rule {} lacks fixture coverage", rule.id);
    }
}

/// The acceptance gate: the workspace itself must lint clean, the same way
/// `cargo run -p presto-lint -- --workspace` checks it in CI.
#[test]
fn workspace_is_clean() {
    let diags = check_workspace(default_workspace_root()).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
