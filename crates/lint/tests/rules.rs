//! Per-rule fixture corpus: one known-bad and one known-clean snippet per
//! rule, asserting exact rule ids and line numbers, plus the suppression
//! and whole-workspace checks.

use std::path::Path;

use presto_lint::{
    check_source, check_sources, check_workspace, default_workspace_root, Diagnostic, RULES,
};

fn fixture_src(fixture: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Load a fixture and check it under a synthetic workspace path (the path
/// decides crate and class, so fixtures can live outside the real tree).
fn check_fixture(fixture: &str, as_path: &str) -> Vec<Diagnostic> {
    check_source(as_path, &fixture_src(fixture))
}

/// Check several fixtures together as one synthetic workspace — the
/// cross-file rules (lock-order) need to see all of them at once.
fn check_fixtures(pairs: &[(&str, &str)]) -> Vec<Diagnostic> {
    let files: Vec<(String, String)> =
        pairs.iter().map(|(fix, path)| (path.to_string(), fixture_src(fix))).collect();
    check_sources(&files)
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn wall_clock_bad_and_clean() {
    let bad = check_fixture("wall_clock/bad.rs", "crates/exec/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "wall-clock"), vec![5, 10]);
    assert_eq!(bad.len(), 2, "unexpected extra diagnostics: {bad:?}");

    let clean = check_fixture("wall_clock/clean.rs", "crates/exec/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn wall_clock_exemptions() {
    let src = "pub fn now_impl() { let _ = Instant::now(); }";
    // the virtual-clock module itself may read the wall clock
    assert!(check_source("crates/common/src/clock.rs", src).is_empty());
    // so may the benchmark crate, which measures real elapsed time
    assert!(check_source("crates/bench/src/lib.rs", src).is_empty());
    // any other library crate may not
    assert_eq!(rule_lines(&check_source("crates/storage/src/x.rs", src), "wall-clock"), vec![1]);
}

#[test]
fn no_unwrap_bad_and_clean() {
    let bad = check_fixture("no_unwrap/bad.rs", "crates/exec/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "no-unwrap"), vec![5, 9]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("no_unwrap/clean.rs", "crates/exec/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn no_unwrap_only_guards_engine_crates() {
    // the same panicky source is fine in a crate outside the engine loop
    let clean = check_fixture("no_unwrap/bad.rs", "crates/parquet/src/fixture.rs");
    assert!(rule_lines(&clean, "no-unwrap").is_empty());
    // and in all four engine crates it is not
    for krate in ["exec", "resource", "cluster", "core"] {
        let path = format!("crates/{krate}/src/fixture.rs");
        let bad = check_fixture("no_unwrap/bad.rs", &path);
        assert_eq!(rule_lines(&bad, "no-unwrap"), vec![5, 9], "crate {krate}");
    }
}

#[test]
fn unsafe_needs_safety_bad_and_clean() {
    let bad = check_fixture("unsafe_safety/bad.rs", "crates/geo/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "unsafe-needs-safety"), vec![8, 11]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("unsafe_safety/clean.rs", "crates/geo/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn layering_bad_and_clean() {
    let bad = check_fixture("layering/bad.rs", "crates/storage/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "layering"), vec![3, 6]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("layering/clean.rs", "crates/storage/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn layering_connectors_must_not_reach_exec() {
    let src = "use presto_exec::execute;";
    let diags = check_source("crates/connectors/src/fixture.rs", src);
    assert_eq!(rule_lines(&diags, "layering"), vec![1]);
    // while exec itself may of course name exec
    assert!(check_source("crates/exec/src/fixture.rs", "use presto_exec::execute;").is_empty());
}

#[test]
fn sleep_print_bad_and_clean() {
    let bad = check_fixture("sleep_print/bad.rs", "crates/cache/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "no-sleep-print"), vec![6, 7, 11]);
    assert_eq!(bad.len(), 3);

    let clean = check_fixture("sleep_print/clean.rs", "crates/cache/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn guard_leak_bad_and_clean() {
    let bad = check_fixture("guard_leak/bad.rs", "crates/resource/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "guard-leak"), vec![7, 11]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("guard_leak/clean.rs", "crates/resource/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn allow_trailing_is_line_scoped_standalone_is_statement_scoped() {
    let diags = check_fixture("allow/mixed.rs", "crates/exec/src/fixture.rs");
    // line 6 is suppressed by its trailing directive; line 10 is bare; the
    // standalone directive on line 14 covers the whole builder statement on
    // lines 15-18 (the `.unwrap()` is on line 17) but NOT the next
    // statement on line 19
    assert_eq!(rule_lines(&diags, "no-unwrap"), vec![10, 19]);
    assert_eq!(diags.len(), 2);
}

#[test]
fn lock_order_cycle_detected_across_files() {
    let diags = check_fixtures(&[
        ("lock_order/bad_a.rs", "crates/exec/src/fixture_a.rs"),
        ("lock_order/bad_b.rs", "crates/exec/src/fixture_b.rs"),
    ]);
    let cycles: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "lock-order").collect();
    assert_eq!(cycles.len(), 1, "expected exactly one cycle report: {diags:?}");
    let d = cycles[0];
    // anchored at the inversion's smallest-node edge: `Pool::mem` acquired
    // on line 6 of bad_b.rs, then `Scheduler::queue`
    assert_eq!((d.path.as_str(), d.line), ("crates/exec/src/fixture_b.rs", 6));
    assert!(d.message.contains("Pool::mem") && d.message.contains("Scheduler::queue"), "{d:?}");
    // the witness path names BOTH files — that is what makes a cross-file
    // inversion actionable
    assert!(
        d.message.contains("fixture_a.rs") && d.message.contains("fixture_b.rs"),
        "witness must span both files: {}",
        d.message
    );
    assert_eq!(diags.len(), 1, "unexpected extra diagnostics: {diags:?}");
}

#[test]
fn lock_order_consistent_order_is_clean() {
    let diags = check_fixtures(&[
        ("lock_order/clean_a.rs", "crates/exec/src/fixture_a.rs"),
        ("lock_order/clean_b.rs", "crates/exec/src/fixture_b.rs"),
    ]);
    assert!(diags.is_empty(), "clean pair flagged: {diags:?}");
}

#[test]
fn map_iter_in_digest_bad_and_clean() {
    // flagged because the function feeds a digest sink (`mix64`), even
    // outside the determinism-critical crates
    let bad = check_fixture("map_iter_digest/bad.rs", "crates/parquet/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "map-iter-in-digest"), vec![6]);
    assert!(bad[0].message.contains("digest path"), "{bad:?}");
    assert_eq!(bad.len(), 1);

    // inside a determinism-critical crate the same site is flagged too
    let bad = check_fixture("map_iter_digest/bad.rs", "crates/exec/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "map-iter-in-digest"), vec![6]);

    // a sort between the iteration and the fold restores determinism
    let clean = check_fixture("map_iter_digest/clean.rs", "crates/exec/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn map_iter_order_insensitive_reduction_is_clean() {
    let src = "pub fn total(m: &HashMap<u64, u64>) -> u64 { m.values().sum() }\n";
    let diags = check_source("crates/exec/src/fixture.rs", src);
    assert!(diags.is_empty(), "order-insensitive reduction flagged: {diags:?}");
}

#[test]
fn metrics_registry_bad_and_clean() {
    let bad = check_fixture("metrics_registry/bad.rs", "crates/cache/src/fixture.rs");
    assert_eq!(rule_lines(&bad, "metrics-registry"), vec![6]);
    assert!(bad[0].message.contains("fixture.hits"), "{bad:?}");
    assert_eq!(bad.len(), 1);

    let clean = check_fixture("metrics_registry/clean.rs", "crates/cache/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn metrics_registry_flags_duplicate_constants() {
    // the registry file itself may hold literals, but not two constants
    // with one value (that silently merges two series)
    let diags = check_fixture("metrics_registry/dup.rs", "crates/common/src/metrics.rs");
    assert_eq!(rule_lines(&diags, "metrics-registry"), vec![6]);
    assert!(diags[0].message.contains("INDEX_HITS"), "{diags:?}");
    assert_eq!(diags.len(), 1);
}

#[test]
fn error_taxonomy_bad_and_clean() {
    let bad = check_fixture("error_taxonomy/bad.rs", "crates/common/src/fixture.rs");
    // line 4: `Timeout` never named in is_retryable; line 11: wildcard arm
    assert_eq!(rule_lines(&bad, "error-taxonomy"), vec![4, 11]);
    assert_eq!(bad.len(), 2);

    let clean = check_fixture("error_taxonomy/clean.rs", "crates/common/src/fixture.rs");
    assert!(clean.is_empty(), "clean fixture flagged: {clean:?}");
}

#[test]
fn error_taxonomy_requires_is_retryable() {
    let src = "pub enum PrestoError {\n    Parse(String),\n}\n";
    let diags = check_source("crates/common/src/fixture.rs", src);
    assert_eq!(rule_lines(&diags, "error-taxonomy"), vec![1]);
    assert!(diags[0].message.contains("no is_retryable"), "{diags:?}");
}

#[test]
fn tests_benches_examples_are_exempt() {
    let src = "pub fn f() { let _ = Instant::now(); let x: Option<u32> = None; x.unwrap(); }";
    for path in [
        "tests/integration.rs",
        "examples/demo.rs",
        "crates/geo/benches/b.rs",
        "crates/exec/tests/t.rs",
    ] {
        assert!(check_source(path, src).is_empty(), "{path} should be exempt");
    }
}

#[test]
fn every_rule_has_fixture_coverage() {
    // keep RULES, the fixture corpus, and this test in sync
    let covered = [
        "wall-clock",
        "no-unwrap",
        "unsafe-needs-safety",
        "layering",
        "no-sleep-print",
        "guard-leak",
        "lock-order",
        "map-iter-in-digest",
        "metrics-registry",
        "error-taxonomy",
    ];
    assert_eq!(RULES.len(), covered.len());
    for rule in RULES {
        assert!(covered.contains(&rule.id), "rule {} lacks fixture coverage", rule.id);
    }
}

/// The acceptance gate: the workspace itself must lint clean, the same way
/// `cargo run -p presto-lint -- --workspace` checks it in CI.
#[test]
fn workspace_is_clean() {
    let diags = check_workspace(default_workspace_root()).expect("workspace walk failed");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
