//! Schema shredding and schema evolution.
//!
//! "Parquet is storing nested fields as separate columns on disk" (§V.B).
//! [`FlatSchema`] flattens a nested SQL schema into its leaf columns with
//! Dremel repetition/definition levels; every reader and writer works in
//! terms of these leaves, which is what makes nested column pruning (§V.D)
//! possible: reading `base.city_id` touches exactly one leaf out of the
//! dozens a 50-field struct shreds into.
//!
//! Schema evolution (§V.A): adding fields to a struct is allowed (old files
//! return NULL), removing fields is allowed (stale data is ignored), renames
//! and type changes are rejected because Parquet matches columns by name and
//! the engine is type-strict.

use presto_common::{DataType, Field, PrestoError, Result, Schema, Value};

use crate::encoding::{ByteReader, ByteWriter};

/// On-disk primitive type of one leaf column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalType {
    /// One byte per value.
    Bool,
    /// 4-byte little-endian signed.
    I32,
    /// 8-byte little-endian signed.
    I64,
    /// 8-byte IEEE double.
    F64,
    /// Varint length + payload.
    Bytes,
}

impl PhysicalType {
    /// Physical type for a scalar logical type.
    pub fn for_scalar(t: &DataType) -> Result<PhysicalType> {
        match t {
            DataType::Boolean => Ok(PhysicalType::Bool),
            DataType::Integer | DataType::Date => Ok(PhysicalType::I32),
            DataType::Bigint | DataType::Timestamp => Ok(PhysicalType::I64),
            DataType::Double => Ok(PhysicalType::F64),
            DataType::Varchar => Ok(PhysicalType::Bytes),
            nested => Err(PrestoError::Internal(format!("{nested} is not a leaf type"))),
        }
    }
}

/// One leaf column of the shredded schema.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafColumn {
    /// Dotted path from the top-level column, with `item` / `key` / `value`
    /// segments for arrays and maps (e.g. `base.status.tags.item`).
    pub path: Vec<String>,
    /// Leaf logical type.
    pub scalar_type: DataType,
    /// On-disk primitive type.
    pub physical: PhysicalType,
    /// Definition level when the value is present.
    pub max_def: u16,
    /// Repetition level of the innermost repeated ancestor.
    pub max_rep: u16,
}

impl LeafColumn {
    /// Dotted display form of the path.
    pub fn dotted(&self) -> String {
        self.path.join(".")
    }
}

/// Structural node of the shredded schema, carrying the level bookkeeping
/// shredding and assembly need.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaNode {
    /// A scalar leaf.
    Leaf {
        /// Index into [`FlatSchema::leaves`].
        leaf_index: usize,
        /// Leaf logical type.
        scalar_type: DataType,
        /// Definition level when present.
        max_def: u16,
    },
    /// A struct.
    Row {
        /// Field name/node pairs.
        fields: Vec<(String, SchemaNode)>,
        /// Definition level when the struct itself is present.
        def_present: u16,
        /// Original field list (for type reconstruction).
        row_fields: Vec<Field>,
    },
    /// An array. Consumes two definition levels (list present; element slot
    /// exists) and one repetition level.
    Array {
        /// Element node.
        element: Box<SchemaNode>,
        /// Definition level when the list is present (empty list encodes at
        /// exactly this level; elements encode deeper).
        def_present: u16,
        /// Repetition level of this list's elements.
        rep: u16,
        /// Element logical type.
        element_type: DataType,
    },
    /// A map, encoded as a repeated (key, value) entry group.
    Map {
        /// Key node (always a leaf in SQL maps).
        key: Box<SchemaNode>,
        /// Value node.
        value: Box<SchemaNode>,
        /// Definition level when the map is present.
        def_present: u16,
        /// Repetition level of entries.
        rep: u16,
        /// Key logical type.
        key_type: DataType,
        /// Value logical type.
        value_type: DataType,
    },
}

impl SchemaNode {
    /// Leaf indices in this subtree, in schema order.
    pub fn leaf_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            SchemaNode::Leaf { leaf_index, .. } => out.push(*leaf_index),
            SchemaNode::Row { fields, .. } => {
                for (_, f) in fields {
                    f.collect_leaves(out);
                }
            }
            SchemaNode::Array { element, .. } => element.collect_leaves(out),
            SchemaNode::Map { key, value, .. } => {
                key.collect_leaves(out);
                value.collect_leaves(out);
            }
        }
    }

    /// First (leftmost) leaf index — the structural pilot stream used by the
    /// record assembler.
    pub fn first_leaf(&self) -> usize {
        match self {
            SchemaNode::Leaf { leaf_index, .. } => *leaf_index,
            SchemaNode::Row { fields, .. } => fields[0].1.first_leaf(),
            SchemaNode::Array { element, .. } => element.first_leaf(),
            SchemaNode::Map { key, .. } => key.first_leaf(),
        }
    }

    /// The logical type this node reconstructs to.
    pub fn data_type(&self) -> DataType {
        match self {
            SchemaNode::Leaf { scalar_type, .. } => scalar_type.clone(),
            SchemaNode::Row { row_fields, .. } => DataType::Row(row_fields.clone()),
            SchemaNode::Array { element_type, .. } => DataType::array(element_type.clone()),
            SchemaNode::Map { key_type, value_type, .. } => {
                DataType::map(key_type.clone(), value_type.clone())
            }
        }
    }

    /// True when no array/map appears in this subtree (enables the direct
    /// columnar build of the new reader).
    pub fn is_repetition_free(&self) -> bool {
        match self {
            SchemaNode::Leaf { .. } => true,
            SchemaNode::Row { fields, .. } => fields.iter().all(|(_, f)| f.is_repetition_free()),
            SchemaNode::Array { .. } | SchemaNode::Map { .. } => false,
        }
    }

    /// Navigate to the node for a dotted sub-path of struct field names
    /// (the nested-column-pruning access path, e.g. `["status", "code"]`).
    pub fn descend(&self, sub_path: &[&str]) -> Result<&SchemaNode> {
        if sub_path.is_empty() {
            return Ok(self);
        }
        match self {
            SchemaNode::Row { fields, .. } => {
                let (_, child) =
                    fields.iter().find(|(name, _)| name == sub_path[0]).ok_or_else(|| {
                        PrestoError::Analysis(format!("no field '{}' in struct", sub_path[0]))
                    })?;
                child.descend(&sub_path[1..])
            }
            _ => Err(PrestoError::Analysis(format!(
                "cannot descend into non-struct at '{}'",
                sub_path[0]
            ))),
        }
    }
}

/// A schema flattened to leaves, with one structural tree per top-level
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSchema {
    /// The original nested schema.
    pub schema: Schema,
    /// All leaf columns across all top-level columns, in schema order.
    pub leaves: Vec<LeafColumn>,
    /// One structural tree per top-level column, parallel to
    /// `schema.fields()`.
    pub roots: Vec<SchemaNode>,
}

impl FlatSchema {
    /// Flatten `schema`.
    pub fn new(schema: Schema) -> Result<FlatSchema> {
        let mut leaves = Vec::new();
        let mut roots = Vec::new();
        for field in schema.fields() {
            let mut path = vec![field.name.clone()];
            let node = flatten(&field.data_type, &mut path, 0, 0, &mut leaves)?;
            roots.push(node);
        }
        Ok(FlatSchema { schema, leaves, roots })
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Structural tree for a top-level column by name.
    pub fn root(&self, column: &str) -> Result<&SchemaNode> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| PrestoError::Analysis(format!("no column '{column}'")))?;
        Ok(&self.roots[idx])
    }

    /// Leaf index for an exact dotted path.
    pub fn leaf_by_path(&self, dotted: &str) -> Option<usize> {
        self.leaves.iter().position(|l| l.dotted() == dotted)
    }
}

fn flatten(
    dt: &DataType,
    path: &mut Vec<String>,
    def: u16,
    rep: u16,
    leaves: &mut Vec<LeafColumn>,
) -> Result<SchemaNode> {
    match dt {
        DataType::Row(fields) => {
            if fields.is_empty() {
                return Err(PrestoError::Analysis("empty struct type".into()));
            }
            let mut children = Vec::with_capacity(fields.len());
            for f in fields {
                path.push(f.name.clone());
                let node = flatten(&f.data_type, path, def + 1, rep, leaves)?;
                path.pop();
                children.push((f.name.clone(), node));
            }
            Ok(SchemaNode::Row {
                fields: children,
                def_present: def + 1,
                row_fields: fields.clone(),
            })
        }
        DataType::Array(elem) => {
            path.push("item".to_string());
            let element = flatten(elem, path, def + 2, rep + 1, leaves)?;
            path.pop();
            Ok(SchemaNode::Array {
                element: Box::new(element),
                def_present: def + 1,
                rep: rep + 1,
                element_type: (**elem).clone(),
            })
        }
        DataType::Map(k, v) => {
            path.push("key".to_string());
            let key = flatten(k, path, def + 2, rep + 1, leaves)?;
            path.pop();
            path.push("value".to_string());
            let value = flatten(v, path, def + 2, rep + 1, leaves)?;
            path.pop();
            Ok(SchemaNode::Map {
                key: Box::new(key),
                value: Box::new(value),
                def_present: def + 1,
                rep: rep + 1,
                key_type: (**k).clone(),
                value_type: (**v).clone(),
            })
        }
        scalar => {
            let leaf_index = leaves.len();
            leaves.push(LeafColumn {
                path: path.clone(),
                scalar_type: scalar.clone(),
                physical: PhysicalType::for_scalar(scalar)?,
                max_def: def + 1,
                max_rep: rep,
            });
            Ok(SchemaNode::Leaf { leaf_index, scalar_type: scalar.clone(), max_def: def + 1 })
        }
    }
}

// --------------------------------------------------------- schema evolution

/// How one table (metastore) column resolves against a file's schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnResolution {
    /// Column exists in the file with the same type: read it.
    Present {
        /// Index of the column in the *file* schema.
        file_column: usize,
    },
    /// Column was added to the table after this file was written: return
    /// NULLs (§V.A "When querying newly added fields in old data, Presto
    /// will return null").
    MissingReturnsNull,
}

/// Resolve the table schema against a file schema under the §V.A rules.
///
/// Struct-typed columns are resolved field-by-field recursively: added
/// sub-fields read as NULL; sub-fields removed from the table but present in
/// the file are ignored ("Presto just ignores them"); a type change at any
/// depth is a [`PrestoError::SchemaEvolution`] error.
pub fn resolve_schemas(
    table_schema: &Schema,
    file_schema: &Schema,
) -> Result<Vec<ColumnResolution>> {
    table_schema
        .fields()
        .iter()
        .map(|table_field| match file_schema.index_of(&table_field.name) {
            None => Ok(ColumnResolution::MissingReturnsNull),
            Some(idx) => {
                check_compatible(
                    &table_field.name,
                    &table_field.data_type,
                    &file_schema.field_at(idx).data_type,
                )?;
                Ok(ColumnResolution::Present { file_column: idx })
            }
        })
        .collect()
}

/// Public entry point for the recursive compatibility check, used by readers
/// resolving pruned sub-paths.
pub fn check_evolution(name: &str, table: &DataType, file: &DataType) -> Result<()> {
    check_compatible(name, table, file)
}

/// Recursive compatibility check: same shape modulo added/removed struct
/// fields; no type changes ("Field rename and type change are not allowed").
fn check_compatible(name: &str, table: &DataType, file: &DataType) -> Result<()> {
    match (table, file) {
        (DataType::Row(tf), DataType::Row(ff)) => {
            for t in tf {
                if let Some(f) = ff.iter().find(|f| f.name == t.name) {
                    check_compatible(&format!("{name}.{}", t.name), &t.data_type, &f.data_type)?;
                }
                // fields missing from the file read as NULL — allowed
            }
            // fields present in the file but removed from the table are ignored
            Ok(())
        }
        (DataType::Array(t), DataType::Array(f)) => check_compatible(name, t, f),
        (DataType::Map(tk, tv), DataType::Map(fk, fv)) => {
            check_compatible(name, tk, fk)?;
            check_compatible(name, tv, fv)
        }
        (t, f) if t == f => Ok(()),
        (t, f) => Err(PrestoError::SchemaEvolution(format!(
            "type change on column '{name}': file has {f}, table has {t} \
             (type changes are not allowed; no automatic coercion)"
        ))),
    }
}

/// Adapt a value read under the file schema to the table schema's shape:
/// added struct fields materialize as NULL, removed ones are dropped, field
/// order follows the table. Types must already have passed
/// [`resolve_schemas`] / `check_compatible`.
pub fn adapt_value(v: &Value, file: &DataType, table: &DataType) -> Value {
    if file == table || v.is_null() {
        return v.clone();
    }
    match (v, file, table) {
        (Value::Row(items), DataType::Row(ff), DataType::Row(tf)) => Value::Row(
            tf.iter()
                .map(|t| match ff.iter().position(|f| f.name == t.name) {
                    Some(i) => adapt_value(&items[i], &ff[i].data_type, &t.data_type),
                    None => Value::Null,
                })
                .collect(),
        ),
        (Value::Array(items), DataType::Array(fe), DataType::Array(te)) => {
            Value::Array(items.iter().map(|i| adapt_value(i, fe, te)).collect())
        }
        (Value::Map(entries), DataType::Map(fk, fv), DataType::Map(tk, tv)) => Value::Map(
            entries
                .iter()
                .map(|(k, val)| (adapt_value(k, fk, tk), adapt_value(val, fv, tv)))
                .collect(),
        ),
        _ => v.clone(),
    }
}

// -------------------------------------------------- binary schema (footer)

/// Serialize a schema into the footer.
pub fn write_schema(schema: &Schema, w: &mut ByteWriter) {
    w.varint(schema.len() as u64);
    for f in schema.fields() {
        w.string(&f.name);
        write_type(&f.data_type, w);
    }
}

/// Deserialize a footer schema.
pub fn read_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.varint()? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let dt = read_type(r)?;
        fields.push(Field::new(name, dt));
    }
    Schema::new(fields)
}

fn write_type(dt: &DataType, w: &mut ByteWriter) {
    match dt {
        DataType::Boolean => w.u8(0),
        DataType::Bigint => w.u8(1),
        DataType::Integer => w.u8(2),
        DataType::Double => w.u8(3),
        DataType::Varchar => w.u8(4),
        DataType::Date => w.u8(5),
        DataType::Timestamp => w.u8(6),
        DataType::Array(e) => {
            w.u8(7);
            write_type(e, w);
        }
        DataType::Map(k, v) => {
            w.u8(8);
            write_type(k, w);
            write_type(v, w);
        }
        DataType::Row(fields) => {
            w.u8(9);
            w.varint(fields.len() as u64);
            for f in fields {
                w.string(&f.name);
                write_type(&f.data_type, w);
            }
        }
    }
}

fn read_type(r: &mut ByteReader<'_>) -> Result<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Boolean,
        1 => DataType::Bigint,
        2 => DataType::Integer,
        3 => DataType::Double,
        4 => DataType::Varchar,
        5 => DataType::Date,
        6 => DataType::Timestamp,
        7 => DataType::array(read_type(r)?),
        8 => {
            let k = read_type(r)?;
            let v = read_type(r)?;
            DataType::map(k, v)
        }
        9 => {
            let n = r.varint()? as usize;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.string()?;
                fields.push(Field::new(name, read_type(r)?));
            }
            DataType::Row(fields)
        }
        other => return Err(PrestoError::Format(format!("unknown type tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trips_schema() -> Schema {
        Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("driver_uuid", DataType::Varchar),
                    Field::new("city_id", DataType::Bigint),
                    Field::new(
                        "status",
                        DataType::row(vec![
                            Field::new("code", DataType::Integer),
                            Field::new("tags", DataType::array(DataType::Varchar)),
                        ]),
                    ),
                    Field::new("features", DataType::map(DataType::Varchar, DataType::Double)),
                ]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn flatten_computes_paths_and_levels() {
        let flat = FlatSchema::new(trips_schema()).unwrap();
        let dotted: Vec<String> = flat.leaves.iter().map(LeafColumn::dotted).collect();
        assert_eq!(
            dotted,
            vec![
                "datestr",
                "base.driver_uuid",
                "base.city_id",
                "base.status.code",
                "base.status.tags.item",
                "base.features.key",
                "base.features.value",
            ]
        );
        // datestr: one optional level
        assert_eq!(flat.leaves[0].max_def, 1);
        assert_eq!(flat.leaves[0].max_rep, 0);
        // base.city_id: base struct + leaf
        assert_eq!(flat.leaves[2].max_def, 2);
        assert_eq!(flat.leaves[2].max_rep, 0);
        // base.status.tags.item: base + status + (tags list: 2) + leaf = 5
        assert_eq!(flat.leaves[4].max_def, 5);
        assert_eq!(flat.leaves[4].max_rep, 1);
        // map leaves
        assert_eq!(flat.leaves[5].max_def, 4);
        assert_eq!(flat.leaves[5].max_rep, 1);
    }

    #[test]
    fn descend_navigates_structs() {
        let flat = FlatSchema::new(trips_schema()).unwrap();
        let base = flat.root("base").unwrap();
        let city = base.descend(&["city_id"]).unwrap();
        assert!(matches!(city, SchemaNode::Leaf { .. }));
        assert_eq!(city.data_type(), DataType::Bigint);
        assert!(base.descend(&["nope"]).is_err());
        assert!(base.descend(&["city_id", "deeper"]).is_err());
        assert!(!base.descend(&["status"]).unwrap().is_repetition_free());
        assert!(base.descend(&["status", "code"]).unwrap().is_repetition_free());
    }

    #[test]
    fn schema_binary_round_trip() {
        let schema = trips_schema();
        let mut w = ByteWriter::new();
        write_schema(&schema, &mut w);
        let data = w.into_bytes();
        let mut r = ByteReader::new(&data);
        assert_eq!(read_schema(&mut r).unwrap(), schema);
    }

    #[test]
    fn evolution_added_field_reads_null() {
        let file = Schema::new(vec![Field::new("a", DataType::Bigint)]).unwrap();
        let table = Schema::new(vec![
            Field::new("a", DataType::Bigint),
            Field::new("b", DataType::Varchar), // added after the file was written
        ])
        .unwrap();
        let res = resolve_schemas(&table, &file).unwrap();
        assert_eq!(res[0], ColumnResolution::Present { file_column: 0 });
        assert_eq!(res[1], ColumnResolution::MissingReturnsNull);
    }

    #[test]
    fn evolution_removed_field_is_ignored() {
        let file = Schema::new(vec![
            Field::new("a", DataType::Bigint),
            Field::new("zombie", DataType::Varchar), // removed from the table
        ])
        .unwrap();
        let table = Schema::new(vec![Field::new("a", DataType::Bigint)]).unwrap();
        let res = resolve_schemas(&table, &file).unwrap();
        assert_eq!(res, vec![ColumnResolution::Present { file_column: 0 }]);
    }

    #[test]
    fn evolution_rejects_type_changes_at_any_depth() {
        let file = Schema::new(vec![Field::new(
            "base",
            DataType::row(vec![Field::new("city_id", DataType::Bigint)]),
        )])
        .unwrap();
        let table = Schema::new(vec![Field::new(
            "base",
            DataType::row(vec![Field::new("city_id", DataType::Varchar)]), // retyped!
        )])
        .unwrap();
        let err = resolve_schemas(&table, &file).unwrap_err();
        assert_eq!(err.code(), "SCHEMA_EVOLUTION_ERROR");
        assert!(err.message().contains("base.city_id"));
    }

    #[test]
    fn evolution_nested_add_and_remove() {
        let file = Schema::new(vec![Field::new(
            "base",
            DataType::row(vec![
                Field::new("old_field", DataType::Bigint),
                Field::new("kept", DataType::Double),
            ]),
        )])
        .unwrap();
        let table = Schema::new(vec![Field::new(
            "base",
            DataType::row(vec![
                Field::new("kept", DataType::Double),
                Field::new("new_field", DataType::Varchar),
            ]),
        )])
        .unwrap();
        // kept field matches; old_field removed (ignored); new_field added (null)
        assert!(resolve_schemas(&table, &file).is_ok());
    }
}
