//! Byte-level encoding primitives: little-endian scalars, varints,
//! length-prefixed byte strings, and the RLE/bit-hybrid run encoding used for
//! repetition levels, definition levels and dictionary ids.

use presto_common::{PrestoError, Result};

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write u16 LE.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write u32 LE.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write u64 LE.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write i32 LE.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write i64 LE.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write f64 LE.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write varint length + raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Write a UTF-8 string (varint length + bytes).
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Sequential binary reader with bounds checking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| PrestoError::Format(format!("truncated input at byte {}", self.pos)))?;
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read u16 LE.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read u32 LE.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read u64 LE.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read i32 LE.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read i64 LE.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read f64 LE.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(PrestoError::Format("varint too long".into()));
            }
        }
    }

    /// Read varint length + bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.varint()? as usize;
        self.take(n)
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| PrestoError::Format("invalid utf-8 string".into()))
    }
}

/// RLE-encode a stream of small integers (levels, dictionary ids).
///
/// Format: repeated groups of `varint header` where header = `count << 1 |
/// is_run`. A run group is followed by a single varint value; a literal
/// group by `count` varint values. Nested data's levels are extremely
/// run-heavy (flat non-null data is one giant run), which is why the fast
/// non-nested path of the vectorized reader (§V.I) can skip level decoding
/// almost entirely.
pub fn rle_encode(values: &[u32], out: &mut ByteWriter) {
    out.varint(values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        // measure run
        let mut run = 1;
        while i + run < values.len() && values[i + run] == values[i] {
            run += 1;
        }
        if run >= 4 {
            out.varint(((run as u64) << 1) | 1);
            out.varint(values[i] as u64);
            i += run;
        } else {
            // gather literals until the next long run
            let start = i;
            i += run;
            while i < values.len() {
                let mut next_run = 1;
                while i + next_run < values.len() && values[i + next_run] == values[i] {
                    next_run += 1;
                }
                if next_run >= 4 {
                    break;
                }
                i += next_run;
            }
            out.varint(((i - start) as u64) << 1);
            for &v in &values[start..i] {
                out.varint(v as u64);
            }
        }
    }
}

/// Decode an [`rle_encode`]d stream.
pub fn rle_decode(reader: &mut ByteReader<'_>) -> Result<Vec<u32>> {
    let total = reader.varint()? as usize;
    // the count is untrusted input: cap the up-front reservation so a
    // corrupted varint cannot force a giant allocation before any data is
    // validated (the vec still grows to `total` if the stream really is
    // that long)
    let mut out = Vec::with_capacity(total.min(1 << 16));
    while out.len() < total {
        let header = reader.varint()?;
        let count = (header >> 1) as usize;
        if count == 0 {
            return Err(PrestoError::Format("zero-length RLE group".into()));
        }
        if header & 1 == 1 {
            let v = reader.varint()? as u32;
            out.resize(out.len() + count, v);
        } else {
            for _ in 0..count {
                out.push(reader.varint()? as u32);
            }
        }
    }
    if out.len() != total {
        return Err(PrestoError::Format("RLE stream length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(65535);
        w.u32(123456);
        w.u64(u64::MAX);
        w.i32(-5);
        w.i64(i64::MIN);
        w.f64(3.5);
        w.varint(300);
        w.string("héllo");
        w.bytes(b"\x00\x01");
        let data = w.into_bytes();
        let mut r = ByteReader::new(&data);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert_eq!(r.varint().unwrap(), 300);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"\x00\x01");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![1],
            vec![1, 1, 1, 1, 1, 1],
            vec![1, 2, 3, 4, 5],
            vec![0; 100_000],
            vec![5, 5, 5, 5, 9, 1, 2, 3, 7, 7, 7, 7, 7, 0],
        ];
        for case in cases {
            let mut w = ByteWriter::new();
            rle_encode(&case, &mut w);
            let data = w.into_bytes();
            let mut r = ByteReader::new(&data);
            assert_eq!(rle_decode(&mut r).unwrap(), case);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn rle_runs_compress_well() {
        let run = vec![3u32; 100_000];
        let mut w = ByteWriter::new();
        rle_encode(&run, &mut w);
        assert!(w.len() < 16, "a single run must be tiny, got {}", w.len());
    }

    #[test]
    fn rle_rejects_corruption() {
        let mut w = ByteWriter::new();
        rle_encode(&[1, 2, 3, 4, 5, 6, 7, 8], &mut w);
        let data = w.into_bytes();
        let mut r = ByteReader::new(&data[..data.len() - 2]);
        assert!(rle_decode(&mut r).is_err());
    }
}
