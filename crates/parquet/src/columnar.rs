//! Direct columnar paths between [`Block`]s and triplet streams.
//!
//! The legacy reader/writer pair goes through *records*: rows are assembled
//! from triplets and then re-transformed into columnar blocks (reader, Fig 4)
//! or blocks are exploded into records and re-shredded (writer, §V.J). The
//! new reader "read\[s\] columns in Parquet directly ... and build\[s\] columnar
//! blocks on the fly" (Fig 6), and the native writer "writes directly from
//! Presto's in-memory data structure to Parquet's columnar file format,
//! including data values, repetition values, and definition values" (§V.J).
//! This module is that direct path.
//!
//! Repetition-free subtrees (scalars and structs of scalars — the shapes
//! nested-column pruning usually leaves behind) build with tight typed
//! loops; repeated subtrees (arrays/maps) fall back to the record assembler
//! for reading but still shred directly for writing.

use presto_common::{Block, DataType, PrestoError, Result, Value};

use crate::schema::SchemaNode;
use crate::shred::{assemble_column, LeafCursor, LeafData, LeafValues};

// ------------------------------------------------------------------- read

/// Build a [`Block`] for `node` from decoded leaf streams (indexed by global
/// leaf index), without going through records when the subtree is
/// repetition-free.
pub fn build_block(node: &SchemaNode, leaf_data: &[LeafData]) -> Result<Block> {
    if node.is_repetition_free() {
        build_repetition_free(node, leaf_data)
    } else {
        // Repeated subtree: record assembly, then the generic builder.
        let mut cursors: Vec<LeafCursor<'_>> = leaf_data.iter().map(LeafCursor::new).collect();
        let values = assemble_column(node, &mut cursors)?;
        Block::from_values(&node.data_type(), &values)
    }
}

fn build_repetition_free(node: &SchemaNode, leaf_data: &[LeafData]) -> Result<Block> {
    match node {
        SchemaNode::Leaf { leaf_index, scalar_type, max_def } => {
            let data = &leaf_data[*leaf_index];
            build_leaf_block(data, scalar_type, *max_def)
        }
        SchemaNode::Row { fields, def_present, row_fields } => {
            let children = fields
                .iter()
                .map(|(_, child)| build_repetition_free(child, leaf_data))
                .collect::<Result<Vec<_>>>()?;
            // Struct validity comes from the pilot leaf's definition levels:
            // def < def_present means the struct itself (or an ancestor) is
            // null at that row.
            let pilot = &leaf_data[node.first_leaf()];
            let len = pilot.defs.len();
            let nulls: Vec<bool> = pilot.defs.iter().map(|&d| d < *def_present).collect();
            let nulls = if nulls.iter().any(|&b| b) { Some(nulls) } else { None };
            Ok(Block::Row { fields: row_fields.clone(), children, len, nulls })
        }
        _ => Err(PrestoError::Internal("build_repetition_free called on repeated subtree".into())),
    }
}

/// Direct leaf decode: definition levels become the null mask, compacted
/// values expand into the block's value lanes.
fn build_leaf_block(data: &LeafData, scalar_type: &DataType, max_def: u16) -> Result<Block> {
    let len = data.defs.len();
    let no_nulls = data.defs.iter().all(|&d| d == max_def);
    let nulls: Option<Vec<bool>> =
        if no_nulls { None } else { Some(data.defs.iter().map(|&d| d < max_def).collect()) };
    macro_rules! expand {
        ($vals:expr, $default:expr) => {{
            if no_nulls {
                $vals.clone()
            } else {
                let mut out = Vec::with_capacity(len);
                let mut vi = 0;
                for &d in &data.defs {
                    if d == max_def {
                        out.push($vals[vi].clone());
                        vi += 1;
                    } else {
                        out.push($default);
                    }
                }
                out
            }
        }};
    }
    match (&data.values, scalar_type) {
        (LeafValues::Bool(v), DataType::Boolean) => {
            Ok(Block::Boolean { values: expand!(v, false), nulls })
        }
        (LeafValues::I32(v), DataType::Integer) => {
            Ok(Block::Integer { values: expand!(v, 0), nulls })
        }
        (LeafValues::I32(v), DataType::Date) => Ok(Block::Date { values: expand!(v, 0), nulls }),
        (LeafValues::I64(v), DataType::Bigint) => {
            Ok(Block::Bigint { values: expand!(v, 0), nulls })
        }
        (LeafValues::I64(v), DataType::Timestamp) => {
            Ok(Block::Timestamp { values: expand!(v, 0), nulls })
        }
        (LeafValues::F64(v), DataType::Double) => {
            Ok(Block::Double { values: expand!(v, 0.0), nulls })
        }
        (LeafValues::Bytes { offsets, data: bytes }, DataType::Varchar) => {
            if no_nulls {
                Ok(Block::Varchar { offsets: offsets.clone(), bytes: bytes.clone(), nulls })
            } else {
                let mut new_offsets = Vec::with_capacity(len + 1);
                let mut new_bytes = Vec::with_capacity(bytes.len());
                new_offsets.push(0u32);
                let mut vi = 0;
                for &d in &data.defs {
                    if d == max_def {
                        let s = &bytes[offsets[vi] as usize..offsets[vi + 1] as usize];
                        new_bytes.extend_from_slice(s);
                        vi += 1;
                    }
                    new_offsets.push(new_bytes.len() as u32);
                }
                Ok(Block::Varchar { offsets: new_offsets, bytes: new_bytes, nulls })
            }
        }
        (store, t) => Err(PrestoError::Internal(format!(
            "leaf storage {:?} does not match logical type {t}",
            store.physical()
        ))),
    }
}

// ------------------------------------------------------------------ write

/// Shred one top-level column block directly into leaf sinks — the native
/// writer path (§V.J): no record reconstruction, values/rep/def emitted
/// straight from the block's columnar layout.
pub fn shred_block(node: &SchemaNode, block: &Block, sinks: &mut [LeafData]) -> Result<()> {
    // Dictionary blocks are decoded once up front (the writer re-decides
    // dictionary encoding per row group from the data itself).
    let decoded;
    let block = match block {
        Block::Dictionary { .. } => {
            decoded = block.decode_dictionary();
            &decoded
        }
        other => other,
    };
    // Bulk fast path: a null-free scalar column appends its value buffer and
    // two constant level runs — no per-row dispatch at all.
    if let SchemaNode::Leaf { leaf_index, max_def, .. } = node {
        if bulk_append_leaf(&mut sinks[*leaf_index], block, *max_def)? {
            return Ok(());
        }
    }
    for i in 0..block.len() {
        shred_block_row(node, block, i, 0, 0, sinks)?;
    }
    Ok(())
}

fn bulk_append_leaf(sink: &mut LeafData, block: &Block, max_def: u16) -> Result<bool> {
    let appended = match (&mut sink.values, block) {
        (LeafValues::I64(out), Block::Bigint { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (LeafValues::I64(out), Block::Timestamp { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (LeafValues::I32(out), Block::Integer { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (LeafValues::I32(out), Block::Date { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (LeafValues::F64(out), Block::Double { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (LeafValues::Bool(out), Block::Boolean { values, nulls: None }) => {
            out.extend_from_slice(values);
            values.len()
        }
        (
            LeafValues::Bytes { offsets: out_offsets, data: out_data },
            Block::Varchar { offsets, bytes, nulls: None },
        ) => {
            if out_data.len() + bytes.len() > u32::MAX as usize {
                return Err(PrestoError::Format(
                    "varchar chunk exceeds 4 GiB; split into smaller row groups".into(),
                ));
            }
            let base = out_data.len() as u32;
            out_data.extend_from_slice(bytes);
            out_offsets.extend(offsets[1..].iter().map(|&o| base + o));
            offsets.len() - 1
        }
        _ => return Ok(false),
    };
    sink.reps.resize(sink.reps.len() + appended, 0);
    sink.defs.resize(sink.defs.len() + appended, max_def);
    Ok(true)
}

fn shred_block_row(
    node: &SchemaNode,
    block: &Block,
    i: usize,
    rep: u16,
    def: u16,
    sinks: &mut [LeafData],
) -> Result<()> {
    match node {
        SchemaNode::Leaf { leaf_index, max_def, .. } => {
            let sink = &mut sinks[*leaf_index];
            if block.is_null(i) {
                sink.reps.push(rep);
                sink.defs.push(def);
                return Ok(());
            }
            sink.reps.push(rep);
            sink.defs.push(*max_def);
            push_leaf_value(sink, block, i)
        }
        SchemaNode::Row { fields, def_present, .. } => {
            if block.is_null(i) {
                return emit_null_slot(node, rep, def, sinks);
            }
            let children = match block {
                Block::Row { children, .. } => children,
                other => {
                    return Err(PrestoError::Internal(format!(
                        "expected row block, got {}",
                        other.data_type()
                    )))
                }
            };
            for ((_, child_node), child_block) in fields.iter().zip(children.iter()) {
                shred_block_row(child_node, child_block, i, rep, *def_present, sinks)?;
            }
            Ok(())
        }
        SchemaNode::Array { element, def_present, rep: elem_rep, .. } => {
            if block.is_null(i) {
                return emit_null_slot(node, rep, def, sinks);
            }
            let (offsets, elements) = match block {
                Block::Array { offsets, elements, .. } => (offsets, elements),
                other => {
                    return Err(PrestoError::Internal(format!(
                        "expected array block, got {}",
                        other.data_type()
                    )))
                }
            };
            let start = offsets[i] as usize;
            let end = offsets[i + 1] as usize;
            if start == end {
                return emit_empty_slot(element, rep, *def_present, sinks);
            }
            for (n, j) in (start..end).enumerate() {
                let r = if n == 0 { rep } else { *elem_rep };
                shred_block_row(element, elements, j, r, def_present + 1, sinks)?;
            }
            Ok(())
        }
        SchemaNode::Map { key, value, def_present, rep: elem_rep, .. } => {
            if block.is_null(i) {
                return emit_null_slot(node, rep, def, sinks);
            }
            let (offsets, keys, values) = match block {
                Block::Map { offsets, keys, values, .. } => (offsets, keys, values),
                other => {
                    return Err(PrestoError::Internal(format!(
                        "expected map block, got {}",
                        other.data_type()
                    )))
                }
            };
            let start = offsets[i] as usize;
            let end = offsets[i + 1] as usize;
            if start == end {
                emit_empty_slot(key, rep, *def_present, sinks)?;
                return emit_empty_slot(value, rep, *def_present, sinks);
            }
            for (n, j) in (start..end).enumerate() {
                let r = if n == 0 { rep } else { *elem_rep };
                shred_block_row(key, keys, j, r, def_present + 1, sinks)?;
                shred_block_row(value, values, j, r, def_present + 1, sinks)?;
            }
            Ok(())
        }
    }
}

/// Append block position `i` to the sink without constructing a [`Value`].
fn push_leaf_value(sink: &mut LeafData, block: &Block, i: usize) -> Result<()> {
    match (&mut sink.values, block) {
        (LeafValues::Bool(out), Block::Boolean { values, .. }) => out.push(values[i]),
        (LeafValues::I32(out), Block::Integer { values, .. }) => out.push(values[i]),
        (LeafValues::I32(out), Block::Date { values, .. }) => out.push(values[i]),
        (LeafValues::I64(out), Block::Bigint { values, .. }) => out.push(values[i]),
        (LeafValues::I64(out), Block::Timestamp { values, .. }) => out.push(values[i]),
        (LeafValues::F64(out), Block::Double { values, .. }) => out.push(values[i]),
        (
            LeafValues::Bytes { offsets: out_offsets, data: out_data },
            Block::Varchar { offsets, bytes, .. },
        ) => {
            let piece = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
            if out_data.len() + piece.len() > u32::MAX as usize {
                return Err(PrestoError::Format(
                    "varchar chunk exceeds 4 GiB; split into smaller row groups".into(),
                ));
            }
            out_data.extend_from_slice(piece);
            out_offsets.push(out_data.len() as u32);
        }
        (store, b) => {
            return Err(PrestoError::Internal(format!(
                "block {} does not match leaf storage {:?}",
                b.data_type(),
                store.physical()
            )))
        }
    }
    Ok(())
}

fn emit_null_slot(node: &SchemaNode, rep: u16, def: u16, sinks: &mut [LeafData]) -> Result<()> {
    for leaf in node.leaf_indices() {
        sinks[leaf].reps.push(rep);
        sinks[leaf].defs.push(def);
    }
    Ok(())
}

fn emit_empty_slot(
    element: &SchemaNode,
    rep: u16,
    def_present: u16,
    sinks: &mut [LeafData],
) -> Result<()> {
    for leaf in element.leaf_indices() {
        sinks[leaf].reps.push(rep);
        sinks[leaf].defs.push(def_present);
    }
    Ok(())
}

/// Explode a block into one [`Value`] per row — the record-reconstruction
/// step of the *legacy* writer (§V.J: it "iterates each columnar block in a
/// page and reconstructs every single record").
pub fn block_to_records(block: &Block) -> Vec<Value> {
    block.to_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FlatSchema;
    use crate::shred::shred_column;
    use presto_common::{Field, Schema};

    fn flat_for(dt: DataType) -> FlatSchema {
        FlatSchema::new(Schema::new(vec![Field::new("c", dt)]).unwrap()).unwrap()
    }

    fn round_trip_via_blocks(dt: DataType, values: Vec<Value>) {
        let flat = flat_for(dt.clone());
        let block = Block::from_values(&dt, &values).unwrap();
        // native shred from the block
        let mut sinks: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_block(&flat.roots[0], &block, &mut sinks).unwrap();
        // direct columnar build back
        let rebuilt = build_block(&flat.roots[0], &sinks).unwrap();
        assert_eq!(rebuilt.to_values(), values);
    }

    #[test]
    fn scalar_blocks_round_trip_directly() {
        round_trip_via_blocks(
            DataType::Bigint,
            vec![Value::Bigint(5), Value::Null, Value::Bigint(-2)],
        );
        round_trip_via_blocks(
            DataType::Varchar,
            vec![Value::Varchar("xy".into()), Value::Null, Value::Varchar("".into())],
        );
        round_trip_via_blocks(DataType::Double, vec![Value::Double(0.5), Value::Double(-1.5)]);
        round_trip_via_blocks(DataType::Boolean, vec![Value::Boolean(true), Value::Null]);
    }

    #[test]
    fn struct_of_scalars_builds_without_records() {
        let dt = DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
        ]);
        round_trip_via_blocks(
            dt,
            vec![
                Value::Row(vec!["d1".into(), 12i64.into()]),
                Value::Null,
                Value::Row(vec![Value::Null, 7i64.into()]),
            ],
        );
    }

    #[test]
    fn repeated_types_round_trip_via_fallback() {
        round_trip_via_blocks(
            DataType::array(DataType::Bigint),
            vec![Value::Array(vec![1i64.into(), 2i64.into()]), Value::Array(vec![]), Value::Null],
        );
        round_trip_via_blocks(
            DataType::map(DataType::Varchar, DataType::Double),
            vec![
                Value::Map(vec![("k".into(), Value::Double(1.0))]),
                Value::Null,
                Value::Map(vec![]),
            ],
        );
    }

    #[test]
    fn native_shred_agrees_with_value_shred() {
        let dt = DataType::row(vec![
            Field::new("a", DataType::Bigint),
            Field::new("tags", DataType::array(DataType::Varchar)),
        ]);
        let values = vec![
            Value::Row(vec![1i64.into(), Value::Array(vec!["x".into()])]),
            Value::Row(vec![Value::Null, Value::Array(vec![])]),
            Value::Null,
        ];
        let flat = flat_for(dt.clone());
        let block = Block::from_values(&dt, &values).unwrap();

        let mut native: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_block(&flat.roots[0], &block, &mut native).unwrap();

        let mut via_values: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_column(&flat.roots[0], &values, &mut via_values).unwrap();

        assert_eq!(native, via_values);
    }

    #[test]
    fn bulk_fast_path_used_for_null_free_scalars() {
        let flat = flat_for(DataType::Bigint);
        let block = Block::bigint((0..1000).collect());
        let mut sinks: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_block(&flat.roots[0], &block, &mut sinks).unwrap();
        assert_eq!(sinks[0].len(), 1000);
        assert_eq!(sinks[0].null_count(), 0);
        assert!(sinks[0].defs.iter().all(|&d| d == 1));
    }

    #[test]
    fn dictionary_blocks_shred_through_decode() {
        let flat = flat_for(DataType::Varchar);
        let dict = Block::varchar(&["a", "b"]);
        let block = Block::Dictionary { dictionary: Box::new(dict), ids: vec![1, 0, 1] };
        let mut sinks: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_block(&flat.roots[0], &block, &mut sinks).unwrap();
        let rebuilt = build_block(&flat.roots[0], &sinks).unwrap();
        assert_eq!(rebuilt.to_values(), vec!["b".into(), "a".into(), "b".into()]);
    }
}
