//! Compression codecs.
//!
//! Figures 18–20 of the paper compare writer throughput under Snappy, Gzip
//! and no compression. We cannot ship those exact codecs, so this module
//! implements two from-scratch LZ77-family codecs with the same *cost
//! profiles* (documented substitution, see DESIGN.md):
//!
//! - [`Codec::Fast`] — Snappy-like: greedy matching, one hash probe,
//!   speed-biased, modest ratio;
//! - [`Codec::Deep`] — Gzip-like: chained hash with many probes and lazy
//!   matching, noticeably slower, better ratio;
//! - [`Codec::None`] — passthrough.
//!
//! Wire format (both LZ codecs): varint uncompressed length, then a token
//! stream. Token tag byte `t`: low bit 0 → literal run of `t >> 1` + 1 bytes
//! follows; low bit 1 → match with length `(t >> 1) + MIN_MATCH` and varint
//! distance following.

use presto_common::{PrestoError, Result};

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum run length representable in one token.
const MAX_RUN: usize = 128;

/// Compression codec identifier, stored per column chunk in the footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression.
    None,
    /// Speed-biased LZ (the Snappy stand-in).
    Fast,
    /// Ratio-biased LZ (the Gzip stand-in).
    Deep,
}

impl Codec {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Fast => 1,
            Codec::Deep => 2,
        }
    }

    /// Parse an on-disk tag.
    pub fn from_tag(tag: u8) -> Result<Codec> {
        match tag {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Fast),
            2 => Ok(Codec::Deep),
            other => Err(PrestoError::Format(format!("unknown codec tag {other}"))),
        }
    }

    /// Human-readable name used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Fast => "fast(snappy-like)",
            Codec::Deep => "deep(gzip-like)",
        }
    }

    /// Compress `data`.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Fast => lz_compress(data, 1, false),
            Codec::Deep => lz_compress(data, 32, true),
        }
    }

    /// Decompress a buffer produced by [`Codec::compress`].
    pub fn decompress(self, data: &[u8]) -> Result<Vec<u8>> {
        match self {
            Codec::None => Ok(data.to_vec()),
            Codec::Fast | Codec::Deep => lz_decompress(data),
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos).ok_or_else(|| PrestoError::Format("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(PrestoError::Format("varint too long".into()));
        }
    }
}

/// Hash of the 4 bytes at `data[i..]`.
#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (w.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 14;

/// LZ77 with a chained hash table. `probes` controls how many chain entries
/// are examined per position (1 = greedy Snappy-style; more = Gzip-style).
/// `lazy` enables one-position lazy match deferral.
fn lz_compress(data: &[u8], probes: usize, lazy: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_varint(&mut out, data.len() as u64);
    if data.len() < MIN_MATCH + 4 {
        emit_literals(&mut out, data);
        return out;
    }

    // head[h] = most recent position with hash h (+1; 0 = empty);
    // chain[i & mask] = previous position with the same hash.
    const CHAIN_SIZE: usize = 1 << 16;
    let mut head = vec![0u32; HASH_SIZE];
    let mut chain = vec![0u32; CHAIN_SIZE];

    let find_match = |head: &[u32], chain: &[u32], pos: usize| -> Option<(usize, usize)> {
        let limit = data.len();
        if pos + MIN_MATCH > limit {
            return None;
        }
        let mut best: Option<(usize, usize)> = None;
        let mut cand = head[hash4(data, pos)] as usize;
        let mut remaining = probes;
        while cand > 0 && remaining > 0 {
            let c = cand - 1;
            if c >= pos || pos - c > CHAIN_SIZE - 1 {
                break;
            }
            let mut len = 0;
            let max_len = (limit - pos).min(MAX_RUN - 1 + MIN_MATCH);
            while len < max_len && data[c + len] == data[pos + len] {
                len += 1;
            }
            if len >= MIN_MATCH && best.map(|(bl, _)| len > bl).unwrap_or(true) {
                best = Some((len, pos - c));
                if len == max_len {
                    break;
                }
            }
            cand = chain[c & (CHAIN_SIZE - 1)] as usize;
            remaining -= 1;
        }
        best
    };

    let insert = |head: &mut [u32], chain: &mut [u32], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash4(data, pos);
            chain[pos & (CHAIN_SIZE - 1)] = head[h];
            head[h] = (pos + 1) as u32;
        }
    };

    let mut pos = 0;
    let mut literal_start = 0;
    while pos < data.len() {
        let m = find_match(&head, &chain, pos);
        let m = match (m, lazy) {
            (Some((len, dist)), true) if pos + 1 < data.len() => {
                // Lazy: if the next position has a longer match, emit a
                // literal here instead.
                insert(&mut head, &mut chain, pos);
                match find_match(&head, &chain, pos + 1) {
                    Some((nlen, _)) if nlen > len + 1 => {
                        pos += 1;
                        continue;
                    }
                    _ => Some((len, dist, /*inserted=*/ true)),
                }
            }
            (Some((len, dist)), _) => Some((len, dist, false)),
            (None, _) => None,
        };
        match m {
            Some((len, dist, inserted)) => {
                emit_literals(&mut out, &data[literal_start..pos]);
                // match token
                out.push((((len - MIN_MATCH) as u8) << 1) | 1);
                write_varint(&mut out, dist as u64);
                if !inserted {
                    insert(&mut head, &mut chain, pos);
                }
                for p in pos + 1..(pos + len).min(data.len()) {
                    insert(&mut head, &mut chain, p);
                }
                pos += len;
                literal_start = pos;
            }
            None => {
                insert(&mut head, &mut chain, pos);
                pos += 1;
            }
        }
    }
    emit_literals(&mut out, &data[literal_start..]);
    out
}

fn emit_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(MAX_RUN);
        out.push(((n - 1) as u8) << 1);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

fn lz_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0;
    let total = read_varint(data, &mut pos)? as usize;
    // untrusted length: cap the reservation; growth is validated by the
    // token stream itself
    let mut out = Vec::with_capacity(total.min(1 << 20));
    while out.len() < total {
        let tag =
            *data.get(pos).ok_or_else(|| PrestoError::Format("truncated LZ stream".into()))?;
        pos += 1;
        if tag & 1 == 0 {
            let n = (tag >> 1) as usize + 1;
            let lits = data
                .get(pos..pos + n)
                .ok_or_else(|| PrestoError::Format("truncated literal run".into()))?;
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let len = (tag >> 1) as usize + MIN_MATCH;
            let dist = read_varint(data, &mut pos)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(PrestoError::Format("invalid match distance".into()));
            }
            let start = out.len() - dist;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    if out.len() != total {
        return Err(PrestoError::Format("LZ stream length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: Codec, data: &[u8]) {
        let compressed = codec.compress(data);
        let back = codec.decompress(&compressed).unwrap();
        assert_eq!(back, data, "round trip failed for {codec:?} len={}", data.len());
    }

    #[test]
    fn round_trips_basic_inputs() {
        for codec in [Codec::None, Codec::Fast, Codec::Deep] {
            round_trip(codec, b"");
            round_trip(codec, b"a");
            round_trip(codec, b"abcabcabcabcabcabcabcabc");
            round_trip(codec, &vec![0u8; 10_000]);
            let patterned: Vec<u8> = (0..50_000u32).map(|i| (i % 7) as u8).collect();
            round_trip(codec, &patterned);
        }
    }

    #[test]
    fn round_trips_pseudorandom_input() {
        // xorshift pseudo-random bytes — nearly incompressible
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        for codec in [Codec::Fast, Codec::Deep] {
            round_trip(codec, &data);
        }
    }

    #[test]
    fn deep_compresses_better_than_fast_on_redundant_data() {
        // repeated phrases with slight perturbation — where extra probes help
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(format!("driver_uuid={} city=12 status=ok ", i % 97).as_bytes());
        }
        let fast = Codec::Fast.compress(&data).len();
        let deep = Codec::Deep.compress(&data).len();
        assert!(fast < data.len(), "fast must compress");
        assert!(deep <= fast, "deep ({deep}) should beat fast ({fast})");
    }

    #[test]
    fn tags_round_trip() {
        for codec in [Codec::None, Codec::Fast, Codec::Deep] {
            assert_eq!(Codec::from_tag(codec.tag()).unwrap(), codec);
        }
        assert!(Codec::from_tag(9).is_err());
    }

    #[test]
    fn corrupted_streams_error_not_panic() {
        let good = Codec::Fast.compress(b"hello world hello world hello world");
        assert!(Codec::Fast.decompress(&good[..good.len() / 2]).is_err());
        assert!(Codec::Fast.decompress(&[0xff, 0xff, 0xff]).is_err());
        assert!(Codec::Fast.decompress(&[]).is_err());
    }
}
