//! File writers: the **legacy** record-reconstructing writer and the
//! **native** columnar writer (§V.J).
//!
//! Both produce byte-identical *format* (same footer, same pages) — the
//! difference is purely how blocks become triplets:
//!
//! - legacy: "iterates each columnar block in a page and reconstructs every
//!   single record, then it consumes each individual record and writes value
//!   bytes" — a column→row transform followed by a row→column transform;
//! - native: "writes directly from Presto's in-memory data structure to
//!   Parquet's columnar file format, including data values, repetition
//!   values, and definition values."
//!
//! Figures 18–20 measure exactly this difference under three codecs.

use std::collections::HashMap;

use presto_common::{Page, PrestoError, Result, Schema, Value};

use crate::codec::Codec;
use crate::columnar::shred_block;
use crate::encoding::{rle_encode, ByteWriter};
use crate::metadata::{
    update_stats, ColumnChunkMeta, ColumnStats, Encoding, FileMetadata, RowGroupMeta,
    FORMAT_VERSION, MAGIC,
};
use crate::schema::{FlatSchema, PhysicalType};
use crate::shred::{shred_one, LeafData, LeafValues};

/// Writer tuning knobs.
#[derive(Debug, Clone)]
pub struct WriterProperties {
    /// Page compression codec.
    pub codec: Codec,
    /// Rows per row group.
    pub row_group_rows: usize,
    /// Enable dictionary encoding when profitable.
    pub dictionary_enabled: bool,
    /// Upper bound on dictionary entries per chunk.
    pub max_dictionary_entries: usize,
}

impl Default for WriterProperties {
    fn default() -> Self {
        WriterProperties {
            codec: Codec::Fast,
            row_group_rows: 10_000,
            dictionary_enabled: true,
            max_dictionary_entries: 1024,
        }
    }
}

/// Which triplet-production strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterMode {
    /// The old open-source writer: block → records → triplets.
    Legacy,
    /// The new native writer: block → triplets directly.
    Native,
}

/// Streaming file writer; feed [`Page`]s, then [`FileWriter::finish`].
pub struct FileWriter {
    flat: FlatSchema,
    props: WriterProperties,
    mode: WriterMode,
    sinks: Vec<LeafData>,
    rows_buffered: usize,
    out: Vec<u8>,
    row_groups: Vec<RowGroupMeta>,
    total_rows: u64,
}

impl FileWriter {
    /// New writer for `schema`.
    pub fn new(schema: Schema, props: WriterProperties, mode: WriterMode) -> Result<FileWriter> {
        let flat = FlatSchema::new(schema)?;
        let sinks = flat.leaves.iter().map(LeafData::new).collect();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        Ok(FileWriter {
            flat,
            props,
            mode,
            sinks,
            rows_buffered: 0,
            out,
            row_groups: Vec::new(),
            total_rows: 0,
        })
    }

    /// The flattened schema being written.
    pub fn flat_schema(&self) -> &FlatSchema {
        &self.flat
    }

    /// Append one page. Column order and types must match the schema.
    pub fn write_page(&mut self, page: &Page) -> Result<()> {
        if page.column_count() != self.flat.schema.len() {
            return Err(PrestoError::Internal(format!(
                "page has {} columns, schema has {}",
                page.column_count(),
                self.flat.schema.len()
            )));
        }
        match self.mode {
            WriterMode::Native => {
                // Direct: every block shreds straight into the leaf sinks.
                for (root, block) in self.flat.roots.iter().zip(page.blocks()) {
                    shred_block(root, block, &mut self.sinks)?;
                }
            }
            WriterMode::Legacy => {
                // Step 1 of the old writer: reconstruct every record from the
                // columnar page (column → row transform, with per-value
                // allocation).
                let records: Vec<Vec<Value>> = page.rows();
                // Step 2: consume each record, value by value (row → column
                // transform back into triplets).
                for record in &records {
                    for (c, root) in self.flat.roots.iter().enumerate() {
                        shred_one(root, &record[c], &mut self.sinks)?;
                    }
                }
            }
        }
        self.rows_buffered += page.positions();
        self.total_rows += page.positions() as u64;
        while self.rows_buffered >= self.props.row_group_rows {
            // Flushing mid-page is avoided by flushing whole buffered groups;
            // one flush drains everything buffered so far.
            self.flush_row_group()?;
        }
        Ok(())
    }

    fn flush_row_group(&mut self) -> Result<()> {
        if self.rows_buffered == 0 {
            return Ok(());
        }
        let mut columns = Vec::with_capacity(self.sinks.len());
        let fresh: Vec<LeafData> = self.flat.leaves.iter().map(LeafData::new).collect();
        let sinks = std::mem::replace(&mut self.sinks, fresh);
        for (leaf_idx, data) in sinks.into_iter().enumerate() {
            let leaf = &self.flat.leaves[leaf_idx];
            columns.push(write_chunk(
                &mut self.out,
                leaf_idx as u32,
                leaf.physical,
                &data,
                &self.props,
            )?);
        }
        self.row_groups.push(RowGroupMeta { num_rows: self.rows_buffered as u64, columns });
        self.rows_buffered = 0;
        Ok(())
    }

    /// Flush the tail row group, write the footer, and return the file bytes.
    pub fn finish(mut self) -> Result<Vec<u8>> {
        self.flush_row_group()?;
        let metadata = FileMetadata {
            version: FORMAT_VERSION,
            schema: self.flat.schema.clone(),
            num_rows: self.total_rows,
            row_groups: self.row_groups,
        };
        let footer = metadata.serialize();
        let footer_len = footer.len() as u32;
        self.out.extend_from_slice(&footer);
        self.out.extend_from_slice(&footer_len.to_le_bytes());
        self.out.extend_from_slice(MAGIC);
        Ok(self.out)
    }
}

/// Serialize one column chunk (dictionary page + data page), returning its
/// footer entry.
fn write_chunk(
    out: &mut Vec<u8>,
    leaf_index: u32,
    physical: PhysicalType,
    data: &LeafData,
    props: &WriterProperties,
) -> Result<ColumnChunkMeta> {
    // Column statistics over defined values.
    let mut stats = ColumnStats { null_count: data.null_count() as u64, ..Default::default() };
    for i in 0..data.values.len() {
        update_stats(&mut stats, &data.values.get(i, &data.scalar_type));
    }

    // Dictionary decision: small distinct set on a large chunk.
    let dictionary = if props.dictionary_enabled {
        build_dictionary(&data.values, physical, props.max_dictionary_entries)
    } else {
        None
    };

    let codec = props.codec;
    match dictionary {
        Some((dict_values, ids)) => {
            let mut dict_page = ByteWriter::new();
            write_leaf_values(&dict_values, &mut dict_page);
            let dict_compressed = codec.compress(dict_page.as_bytes());
            let dict_offset = out.len() as u64;
            out.extend_from_slice(&dict_compressed);

            let mut data_page = ByteWriter::new();
            data_page.u8(Encoding::Dictionary.tag());
            encode_levels(data, &mut data_page);
            rle_encode(&ids, &mut data_page);
            let data_compressed = codec.compress(data_page.as_bytes());
            let data_offset = out.len() as u64;
            out.extend_from_slice(&data_compressed);

            Ok(ColumnChunkMeta {
                leaf_index,
                codec,
                encoding: Encoding::Dictionary,
                num_triplets: data.len() as u64,
                dictionary_page: Some((dict_offset, dict_compressed.len() as u64)),
                dictionary_count: dict_values.len() as u32,
                data_page: (data_offset, data_compressed.len() as u64),
                stats,
            })
        }
        None => {
            let mut data_page = ByteWriter::new();
            data_page.u8(Encoding::Plain.tag());
            encode_levels(data, &mut data_page);
            write_leaf_values(&data.values, &mut data_page);
            let data_compressed = codec.compress(data_page.as_bytes());
            let data_offset = out.len() as u64;
            out.extend_from_slice(&data_compressed);

            Ok(ColumnChunkMeta {
                leaf_index,
                codec,
                encoding: Encoding::Plain,
                num_triplets: data.len() as u64,
                dictionary_page: None,
                dictionary_count: 0,
                data_page: (data_offset, data_compressed.len() as u64),
                stats,
            })
        }
    }
}

fn encode_levels(data: &LeafData, w: &mut ByteWriter) {
    let reps: Vec<u32> = data.reps.iter().map(|&r| r as u32).collect();
    let defs: Vec<u32> = data.defs.iter().map(|&d| d as u32).collect();
    rle_encode(&reps, w);
    rle_encode(&defs, w);
}

/// Plain-encode a value vector: varint count, then payload.
pub fn write_leaf_values(values: &LeafValues, w: &mut ByteWriter) {
    w.varint(values.len() as u64);
    match values {
        LeafValues::Bool(v) => {
            for &b in v {
                w.u8(b as u8);
            }
        }
        LeafValues::I32(v) => {
            for &x in v {
                w.i32(x);
            }
        }
        LeafValues::I64(v) => {
            for &x in v {
                w.i64(x);
            }
        }
        LeafValues::F64(v) => {
            for &x in v {
                w.f64(x);
            }
        }
        LeafValues::Bytes { offsets, data } => {
            for i in 0..offsets.len() - 1 {
                w.bytes(&data[offsets[i] as usize..offsets[i + 1] as usize]);
            }
        }
    }
}

/// Build a dictionary when the distinct set is small enough to pay off.
/// Returns the dictionary values and per-defined-value ids.
fn build_dictionary(
    values: &LeafValues,
    physical: PhysicalType,
    max_entries: usize,
) -> Option<(LeafValues, Vec<u32>)> {
    let n = values.len();
    if n < 8 {
        return None;
    }
    match values {
        LeafValues::I64(v) => {
            let mut dict: Vec<i64> = Vec::new();
            let mut index: HashMap<i64, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(n);
            for &x in v {
                let id = *index.entry(x).or_insert_with(|| {
                    dict.push(x);
                    (dict.len() - 1) as u32
                });
                if dict.len() > max_entries {
                    return None;
                }
                ids.push(id);
            }
            (dict.len() * 2 <= n).then_some((LeafValues::I64(dict), ids))
        }
        LeafValues::I32(v) => {
            let mut dict: Vec<i32> = Vec::new();
            let mut index: HashMap<i32, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(n);
            for &x in v {
                let id = *index.entry(x).or_insert_with(|| {
                    dict.push(x);
                    (dict.len() - 1) as u32
                });
                if dict.len() > max_entries {
                    return None;
                }
                ids.push(id);
            }
            (dict.len() * 2 <= n).then_some((LeafValues::I32(dict), ids))
        }
        LeafValues::Bytes { offsets, data } => {
            let mut dict_offsets = vec![0u32];
            let mut dict_data: Vec<u8> = Vec::new();
            let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(n);
            for i in 0..n {
                let s = &data[offsets[i] as usize..offsets[i + 1] as usize];
                match index.get(s) {
                    Some(&id) => ids.push(id),
                    None => {
                        let id = index.len() as u32;
                        if index.len() + 1 > max_entries {
                            return None;
                        }
                        index.insert(s.to_vec(), id);
                        dict_data.extend_from_slice(s);
                        dict_offsets.push(dict_data.len() as u32);
                        ids.push(id);
                    }
                }
            }
            (index.len() * 2 <= n)
                .then_some((LeafValues::Bytes { offsets: dict_offsets, data: dict_data }, ids))
        }
        // booleans and doubles: dictionary rarely pays; skip (as real
        // writers do for BOOLEAN, and DOUBLE dictionaries are uncommon)
        _ => {
            let _ = physical;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("id", DataType::Bigint), Field::new("city", DataType::Varchar)])
            .unwrap()
    }

    fn page() -> Page {
        Page::new(vec![
            Block::bigint((0..100).collect()),
            Block::varchar(&(0..100).map(|i| format!("city{}", i % 5)).collect::<Vec<_>>()),
        ])
        .unwrap()
    }

    #[test]
    fn native_and_legacy_writers_produce_identical_files() {
        let props = WriterProperties::default();
        let mut native = FileWriter::new(schema(), props.clone(), WriterMode::Native).unwrap();
        native.write_page(&page()).unwrap();
        let native_bytes = native.finish().unwrap();

        let mut legacy = FileWriter::new(schema(), props, WriterMode::Legacy).unwrap();
        legacy.write_page(&page()).unwrap();
        let legacy_bytes = legacy.finish().unwrap();

        assert_eq!(native_bytes, legacy_bytes);
    }

    #[test]
    fn file_has_magic_and_footer() {
        let mut w =
            FileWriter::new(schema(), WriterProperties::default(), WriterMode::Native).unwrap();
        w.write_page(&page()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC);
        let footer_len =
            u32::from_le_bytes(bytes[bytes.len() - 8..bytes.len() - 4].try_into().unwrap())
                as usize;
        let footer = &bytes[bytes.len() - 8 - footer_len..bytes.len() - 8];
        let meta = FileMetadata::deserialize(footer).unwrap();
        assert_eq!(meta.num_rows, 100);
        assert_eq!(meta.row_groups.len(), 1);
        // city has 5 distinct values over 100 rows → dictionary-encoded
        assert_eq!(meta.row_groups[0].columns[1].encoding, Encoding::Dictionary);
        assert_eq!(meta.row_groups[0].columns[1].dictionary_count, 5);
        // id is all-distinct → plain
        assert_eq!(meta.row_groups[0].columns[0].encoding, Encoding::Plain);
    }

    #[test]
    fn row_groups_split_on_row_count() {
        let props = WriterProperties { row_group_rows: 40, ..WriterProperties::default() };
        let mut w = FileWriter::new(schema(), props, WriterMode::Native).unwrap();
        w.write_page(&page()).unwrap(); // 100 rows
        let bytes = w.finish().unwrap();
        let footer_len =
            u32::from_le_bytes(bytes[bytes.len() - 8..bytes.len() - 4].try_into().unwrap())
                as usize;
        let meta = FileMetadata::deserialize(&bytes[bytes.len() - 8 - footer_len..bytes.len() - 8])
            .unwrap();
        // 100 buffered rows flush as one 100-row group (flush drains buffer),
        // since pages arrive whole.
        assert_eq!(meta.num_rows, 100);
        let total: u64 = meta.row_groups.iter().map(|g| g.num_rows).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn page_column_mismatch_is_rejected() {
        let mut w =
            FileWriter::new(schema(), WriterProperties::default(), WriterMode::Native).unwrap();
        let bad = Page::new(vec![Block::bigint(vec![1])]).unwrap();
        assert!(w.write_page(&bad).is_err());
    }
}
