//! The **new** Parquet reader (§V.D–§V.I) with every optimization the paper
//! describes, individually toggleable for ablation:
//!
//! - **nested column pruning** (Fig 5): only the leaves under each projected
//!   path are read;
//! - **columnar reads** (Fig 6): blocks are built directly from triplets,
//!   with no record detour, for repetition-free paths;
//! - **predicate pushdown** (Fig 7): row groups whose footer min/max cannot
//!   match are skipped without touching data pages;
//! - **dictionary pushdown** (Fig 8): when stats are inconclusive, the
//!   (small) dictionary page is probed and the group skipped if no
//!   dictionary value matches;
//! - **lazy reads** (Fig 9): predicate columns decode first; projected
//!   columns are only decoded for row groups with at least one match;
//! - **vectorized reader** (§V.I): batched level decoding, bulk fixed-width
//!   value copies, cached dictionaries.

use std::collections::{BTreeSet, HashMap};

use presto_common::{Block, DataType, Page, PrestoError, Result, Schema};

use crate::columnar::build_block;
use crate::metadata::RowGroupMeta;
use crate::predicate::FilePredicate;
use crate::reader::{decode_chunk, read_dictionary, read_metadata, ChunkSource};
use crate::schema::{check_evolution, FlatSchema, SchemaNode};
use crate::shred::LeafData;

/// One projected output column: a top-level column, optionally narrowed to a
/// struct sub-path — the unit of nested column pruning. Projecting
/// `("base", ["city_id"])` reads exactly one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectedColumn {
    /// Top-level column name.
    pub column: String,
    /// Struct field path below it (empty = whole column).
    pub sub_path: Vec<String>,
}

impl ProjectedColumn {
    /// Project a whole top-level column.
    pub fn whole(column: impl Into<String>) -> ProjectedColumn {
        ProjectedColumn { column: column.into(), sub_path: Vec::new() }
    }

    /// Project a nested path, e.g. `ProjectedColumn::path("base", &["city_id"])`.
    pub fn path(column: impl Into<String>, sub_path: &[&str]) -> ProjectedColumn {
        ProjectedColumn {
            column: column.into(),
            sub_path: sub_path.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Dotted output name (`base.city_id`).
    pub fn dotted(&self) -> String {
        let mut s = self.column.clone();
        for p in &self.sub_path {
            s.push('.');
            s.push_str(p);
        }
        s
    }
}

/// Reader feature switches — all on by default; the Fig 17 ablation bench
/// turns them off one at a time.
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Output columns (pruned paths).
    pub projections: Vec<ProjectedColumn>,
    /// Conjunctive predicate over leaf paths.
    pub predicate: FilePredicate,
    /// Fig 7: skip row groups via footer min/max.
    pub stats_pushdown: bool,
    /// Fig 8: skip row groups via dictionary pages.
    pub dictionary_pushdown: bool,
    /// Fig 9: decode projected columns only when the predicate matched.
    pub lazy_reads: bool,
    /// §V.I: batched decoding.
    pub vectorized: bool,
}

impl ReadOptions {
    /// All optimizations enabled, no predicate.
    pub fn new(projections: Vec<ProjectedColumn>) -> ReadOptions {
        ReadOptions {
            projections,
            predicate: FilePredicate::default(),
            stats_pushdown: true,
            dictionary_pushdown: true,
            lazy_reads: true,
            vectorized: true,
        }
    }

    /// Attach a predicate.
    pub fn with_predicate(mut self, predicate: FilePredicate) -> ReadOptions {
        self.predicate = predicate;
        self
    }
}

/// Observability counters for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NewReadStats {
    /// Row groups in the file.
    pub row_groups_total: usize,
    /// Skipped via min/max statistics.
    pub skipped_by_stats: usize,
    /// Skipped via dictionary probing.
    pub skipped_by_dictionary: usize,
    /// Skipped after the predicate matched zero rows (lazy reads).
    pub skipped_by_lazy: usize,
    /// Leaf chunks decoded.
    pub leaves_decoded: usize,
    /// Leaf chunks the legacy reader would have decoded for the same query
    /// (whole top-level columns, every row group).
    pub leaves_without_pruning: usize,
}

/// The schema of the pages produced for a projection list.
pub fn output_schema(table_schema: &Schema, projections: &[ProjectedColumn]) -> Result<Schema> {
    let mut fields = Vec::with_capacity(projections.len());
    for p in projections {
        let field = table_schema
            .field(&p.column)
            .ok_or_else(|| PrestoError::Analysis(format!("no column '{}'", p.column)))?;
        let sub: Vec<&str> = p.sub_path.iter().map(String::as_str).collect();
        let dt = field.data_type.resolve_path(&sub)?.clone();
        fields.push(presto_common::Field::new(p.dotted(), dt));
    }
    Schema::new(fields)
}

/// Read a file with the new reader. Returns one [`Page`] per surviving row
/// group (filtered by the predicate) plus counters.
pub fn read(
    source: &dyn ChunkSource,
    table_schema: &Schema,
    options: &ReadOptions,
) -> Result<(Vec<Page>, NewReadStats)> {
    let meta = read_metadata(source)?;
    let file_flat = FlatSchema::new(meta.schema.clone())?;
    let mut stats = NewReadStats { row_groups_total: meta.row_groups.len(), ..Default::default() };

    // Resolve each projection against the file schema (schema evolution).
    enum Resolved {
        /// Node present in the file; may still need value-level adaptation.
        Node { node: SchemaNode, table_type: DataType, file_type: DataType },
        /// Added after this file was written → NULL column.
        Missing { table_type: DataType },
    }
    let mut resolved = Vec::with_capacity(options.projections.len());
    for p in &options.projections {
        let table_field = table_schema
            .field(&p.column)
            .ok_or_else(|| PrestoError::Analysis(format!("no column '{}'", p.column)))?;
        let sub: Vec<&str> = p.sub_path.iter().map(String::as_str).collect();
        let table_type = table_field.data_type.resolve_path(&sub)?.clone();
        match meta.schema.index_of(&p.column) {
            None => resolved.push(Resolved::Missing { table_type }),
            Some(file_col) => {
                let file_field_type = &meta.schema.field_at(file_col).data_type;
                // A *missing* sub-field reads as NULL (§V.A field addition);
                // a present path whose shape changed is a rejected type
                // change — the two must not be conflated, or retypes would
                // silently read as NULL instead of erroring.
                match resolve_file_subpath(file_field_type, &sub, &p.dotted())? {
                    None => resolved.push(Resolved::Missing { table_type }),
                    Some(file_type) => {
                        check_evolution(&p.dotted(), &table_type, file_type)?;
                        let node = file_flat.roots[file_col].descend(&sub)?.clone();
                        resolved.push(Resolved::Node {
                            node,
                            table_type,
                            file_type: file_type.clone(),
                        });
                    }
                }
            }
        }
    }

    // Bind predicate conjuncts to file leaves. A predicate on a column this
    // file doesn't have can never match (its values are all NULL): the whole
    // file is skipped.
    let mut predicate_leaves: Vec<(usize, &crate::predicate::ColumnPredicate)> = Vec::new();
    for conjunct in &options.predicate.conjuncts {
        match file_flat.leaf_by_path(&conjunct.leaf_path) {
            Some(leaf_idx) => {
                if file_flat.leaves[leaf_idx].max_rep != 0 {
                    return Err(PrestoError::NotSupported(format!(
                        "predicate on repeated column '{}'",
                        conjunct.leaf_path
                    )));
                }
                predicate_leaves.push((leaf_idx, conjunct));
            }
            None => {
                stats.skipped_by_stats += meta.row_groups.len();
                return Ok((Vec::new(), stats));
            }
        }
    }

    // The leaf set each row group needs decoded.
    let mut projection_leaves: BTreeSet<usize> = BTreeSet::new();
    for r in &resolved {
        if let Resolved::Node { node, .. } = r {
            projection_leaves.extend(node.leaf_indices());
        }
    }
    // What the legacy reader would decode: all leaves of each projected
    // top-level column (for the pruning counter).
    for p in &options.projections {
        if let Some(file_col) = meta.schema.index_of(&p.column) {
            stats.leaves_without_pruning +=
                file_flat.roots[file_col].leaf_indices().len() * meta.row_groups.len();
        }
    }

    let mut pages = Vec::new();
    'groups: for rg in &meta.row_groups {
        // ---- Fig 7: statistics-based row group skipping
        if options.stats_pushdown {
            for (leaf_idx, conjunct) in &predicate_leaves {
                let chunk = chunk_for(rg, *leaf_idx)?;
                if !conjunct.predicate.maybe_matches_stats(&chunk.stats, chunk.num_triplets) {
                    stats.skipped_by_stats += 1;
                    continue 'groups;
                }
            }
        }
        // ---- Fig 8: dictionary-based row group skipping
        if options.dictionary_pushdown {
            for (leaf_idx, conjunct) in &predicate_leaves {
                let chunk = chunk_for(rg, *leaf_idx)?;
                if chunk.dictionary_page.is_some() {
                    let leaf = &file_flat.leaves[*leaf_idx];
                    if let Some(dict) = read_dictionary(source, chunk, leaf)? {
                        if !conjunct.predicate.matches_any_in_dictionary(&dict, &leaf.scalar_type) {
                            stats.skipped_by_dictionary += 1;
                            continue 'groups;
                        }
                    }
                }
            }
        }

        // ---- decode predicate leaves and build the selection mask
        let mut decoded: HashMap<usize, LeafData> = HashMap::new();
        let mut mask: Option<Vec<bool>> = None;
        for (leaf_idx, conjunct) in &predicate_leaves {
            let chunk = chunk_for(rg, *leaf_idx)?;
            let data =
                decode_chunk(source, chunk, &file_flat.leaves[*leaf_idx], options.vectorized)?;
            stats.leaves_decoded += 1;
            let flags = conjunct.predicate.evaluate_leaf(&data)?;
            mask = Some(match mask {
                None => flags,
                Some(prev) => prev.iter().zip(flags.iter()).map(|(&a, &b)| a && b).collect(),
            });
            decoded.insert(*leaf_idx, data);
        }
        let matched = mask.as_ref().map(|m| m.iter().filter(|&&b| b).count());

        // ---- Fig 9: lazy reads — a group with zero matches never decodes
        // its projected columns.
        if options.lazy_reads && matched == Some(0) {
            stats.skipped_by_lazy += 1;
            continue 'groups;
        }

        // ---- decode the (pruned) projection leaves
        let mut leaf_data: Vec<LeafData> = file_flat.leaves.iter().map(LeafData::new).collect();
        for &leaf_idx in &projection_leaves {
            if let Some(data) = decoded.remove(&leaf_idx) {
                // predicate column also projected: reuse the decode
                leaf_data[leaf_idx] = data;
                continue;
            }
            let chunk = chunk_for(rg, leaf_idx)?;
            leaf_data[leaf_idx] =
                decode_chunk(source, chunk, &file_flat.leaves[leaf_idx], options.vectorized)?;
            stats.leaves_decoded += 1;
        }

        // ---- build blocks directly (columnar reads), filter by the mask
        let rows = rg.num_rows as usize;
        let kept = matched.unwrap_or(rows);
        let mut blocks = Vec::with_capacity(resolved.len());
        for r in &resolved {
            match r {
                Resolved::Missing { table_type } => {
                    blocks.push(Block::nulls(table_type, kept));
                }
                Resolved::Node { node, table_type, file_type } => {
                    let block = build_block(node, &leaf_data)?;
                    let block = match &mask {
                        Some(m) => block.filter(m),
                        None => block,
                    };
                    blocks.push(adapt_block(&block, file_type, table_type)?);
                }
            }
        }
        pages.push(if blocks.is_empty() { Page::zero_column(kept) } else { Page::new(blocks)? });
    }
    Ok((pages, stats))
}

/// Walk `sub` through the file's type: `Ok(None)` when a segment is absent
/// (schema evolution: added field), an error when a present segment is not a
/// struct (type change, never silently NULL).
fn resolve_file_subpath<'a>(
    file_type: &'a DataType,
    sub: &[&str],
    dotted: &str,
) -> Result<Option<&'a DataType>> {
    let mut current = file_type;
    for segment in sub {
        match current {
            DataType::Row(fields) => match fields.iter().find(|f| f.name == *segment) {
                Some(field) => current = &field.data_type,
                None => return Ok(None),
            },
            other => {
                return Err(PrestoError::SchemaEvolution(format!(
                    "type change on column '{dotted}': file has {other} where the \
                     table expects a struct (type changes are not allowed)"
                )))
            }
        }
    }
    Ok(Some(current))
}

fn chunk_for(rg: &RowGroupMeta, leaf_idx: usize) -> Result<&crate::metadata::ColumnChunkMeta> {
    rg.columns
        .iter()
        .find(|c| c.leaf_index as usize == leaf_idx)
        .ok_or_else(|| PrestoError::Format(format!("row group missing chunk for leaf {leaf_idx}")))
}

/// Shape a file-typed block into the table type (schema evolution inside
/// structs). Identity when the types already match.
fn adapt_block(block: &Block, file_type: &DataType, table_type: &DataType) -> Result<Block> {
    if file_type == table_type {
        return Ok(block.clone());
    }
    let values: Vec<presto_common::Value> = (0..block.len())
        .map(|i| crate::schema::adapt_value(&block.value(i), file_type, table_type))
        .collect();
    Block::from_values(table_type, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ScalarPredicate;
    use crate::reader::BytesSource;
    use crate::writer::{FileWriter, WriterMode, WriterProperties};
    use presto_common::{Field, Value};

    fn trips_schema() -> Schema {
        Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("driver_uuid", DataType::Varchar),
                    Field::new("city_id", DataType::Bigint),
                    Field::new("vehicle_id", DataType::Bigint),
                    Field::new("status", DataType::Varchar),
                ]),
            ),
        ])
        .unwrap()
    }

    /// 4 row groups × 50 rows; city_id is `group_index * 10 + (row % 3)`,
    /// so groups have disjoint city ranges — ideal for stats skipping.
    fn sample_file() -> Vec<u8> {
        let mut w = FileWriter::new(
            trips_schema(),
            WriterProperties { row_group_rows: 50, ..WriterProperties::default() },
            WriterMode::Native,
        )
        .unwrap();
        for g in 0..4i64 {
            let datestr = Block::varchar(&vec!["2017-03-02"; 50]);
            let base = Block::from_values(
                &trips_schema().field_at(1).data_type,
                &(0..50)
                    .map(|i| {
                        Value::Row(vec![
                            Value::Varchar(format!("driver-{g}-{i}")),
                            Value::Bigint(g * 10 + i % 3),
                            Value::Bigint(i),
                            Value::Varchar(if i % 2 == 0 { "done" } else { "open" }.into()),
                        ])
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            w.write_page(&Page::new(vec![datestr, base]).unwrap()).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn nested_column_pruning_reads_only_needed_leaves() {
        let source = BytesSource::new(sample_file());
        let options = ReadOptions::new(vec![ProjectedColumn::path("base", &["city_id"])]);
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert_eq!(pages.iter().map(Page::positions).sum::<usize>(), 200);
        // one leaf per group instead of four
        assert_eq!(stats.leaves_decoded, 4);
        assert_eq!(stats.leaves_without_pruning, 16);
        assert_eq!(pages[0].row(0), vec![Value::Bigint(0)]);
    }

    #[test]
    fn predicate_pushdown_skips_row_groups_by_stats() {
        let source = BytesSource::new(sample_file());
        // city_id = 12 only exists in group 1 (cities 10..12)
        let options =
            ReadOptions::new(vec![ProjectedColumn::path("base", &["driver_uuid"])]).with_predicate(
                FilePredicate::single("base.city_id", ScalarPredicate::Eq(Value::Bigint(12))),
            );
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert_eq!(stats.skipped_by_stats, 3);
        let rows: usize = pages.iter().map(Page::positions).sum();
        // group 1 rows with i % 3 == 2 → 16 rows
        assert_eq!(rows, 16);
        // every surviving row is from group 1
        for p in &pages {
            for i in 0..p.positions() {
                assert!(p.row(i)[0].as_str().unwrap().starts_with("driver-1-"));
            }
        }
    }

    #[test]
    fn dictionary_pushdown_skips_when_stats_inconclusive() {
        // status column has dictionary {done, open}; search for "missing":
        // stats (min=done, max=open) contain "missing" lexicographically, so
        // stats alone cannot skip — the dictionary can.
        let source = BytesSource::new(sample_file());
        let options = ReadOptions::new(vec![ProjectedColumn::path("base", &["city_id"])])
            .with_predicate(FilePredicate::single(
                "base.status",
                ScalarPredicate::Eq(Value::Varchar("missing".into())),
            ));
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert_eq!(pages.len(), 0);
        assert_eq!(stats.skipped_by_dictionary, 4);
        assert_eq!(stats.leaves_decoded, 0, "no data page should be touched");

        // with dictionary pushdown off, lazy reads still bail after the
        // predicate column decodes, but data pages were read
        let mut no_dict = options.clone();
        no_dict.dictionary_pushdown = false;
        let (_, stats) = read(&source, &trips_schema(), &no_dict).unwrap();
        assert_eq!(stats.skipped_by_dictionary, 0);
        assert_eq!(stats.skipped_by_lazy, 4);
        assert_eq!(stats.leaves_decoded, 4); // predicate column only
    }

    #[test]
    fn lazy_reads_skip_projection_decoding_on_no_match() {
        let source = BytesSource::new(sample_file());
        let mut options = ReadOptions::new(vec![ProjectedColumn::path("base", &["driver_uuid"])])
            .with_predicate(FilePredicate::single(
                "base.vehicle_id",
                ScalarPredicate::Eq(Value::Bigint(999)), // matches nothing
            ));
        options.stats_pushdown = false;
        options.dictionary_pushdown = false;
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert!(pages.is_empty());
        assert_eq!(stats.skipped_by_lazy, 4);
        assert_eq!(stats.leaves_decoded, 4); // vehicle_id only, never driver_uuid

        options.lazy_reads = false;
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert_eq!(stats.skipped_by_lazy, 0);
        assert_eq!(stats.leaves_decoded, 8); // both columns in every group
        assert!(pages.iter().all(|p| p.positions() == 0));
    }

    #[test]
    fn vectorized_and_scalar_paths_agree() {
        let source = BytesSource::new(sample_file());
        let base = ReadOptions::new(vec![
            ProjectedColumn::whole("base"),
            ProjectedColumn::whole("datestr"),
        ]);
        let (vec_pages, _) = read(&source, &trips_schema(), &base).unwrap();
        let mut scalar = base.clone();
        scalar.vectorized = false;
        let (scalar_pages, _) = read(&source, &trips_schema(), &scalar).unwrap();
        assert_eq!(vec_pages, scalar_pages);
    }

    #[test]
    fn new_reader_matches_legacy_reader_results() {
        let source = BytesSource::new(sample_file());
        let options = ReadOptions::new(vec![
            ProjectedColumn::whole("datestr"),
            ProjectedColumn::whole("base"),
        ]);
        let (new_pages, _) = read(&source, &trips_schema(), &options).unwrap();
        let (old_pages, _) =
            crate::reader_old::read(&source, &trips_schema(), &["datestr".into(), "base".into()])
                .unwrap();
        let new_rows: Vec<_> = new_pages.iter().flat_map(|p| p.rows()).collect();
        let old_rows: Vec<_> = old_pages.iter().flat_map(|p| p.rows()).collect();
        assert_eq!(new_rows, old_rows);
    }

    #[test]
    fn predicate_on_column_missing_from_file_skips_whole_file() {
        let mut evolved_fields = trips_schema().fields().to_vec();
        evolved_fields.push(Field::new("new_col", DataType::Bigint));
        let evolved = Schema::new(evolved_fields).unwrap();
        let source = BytesSource::new(sample_file());
        let options = ReadOptions::new(vec![ProjectedColumn::whole("datestr")]).with_predicate(
            FilePredicate::single("new_col", ScalarPredicate::Eq(Value::Bigint(1))),
        );
        let (pages, _) = read(&source, &evolved, &options).unwrap();
        assert!(pages.is_empty());
    }

    #[test]
    fn zero_projection_count_star_scan() {
        let source = BytesSource::new(sample_file());
        let options = ReadOptions::new(vec![]);
        let (pages, stats) = read(&source, &trips_schema(), &options).unwrap();
        assert_eq!(pages.iter().map(Page::positions).sum::<usize>(), 200);
        assert_eq!(stats.leaves_decoded, 0);
    }
}
