//! Shared reader plumbing: chunk sources, footer reading, page decoding.
//!
//! Both reader generations use this module; the difference between them is
//! *which* chunks they read and *how* they turn triplets into engine data
//! (see [`crate::reader_old`] and [`crate::reader_new`]).

use std::sync::Arc;

use presto_common::{PrestoError, Result};
use presto_storage::FileSystem;

use crate::encoding::{rle_decode, ByteReader};
use crate::metadata::{ColumnChunkMeta, Encoding, FileMetadata, MAGIC};
use crate::schema::{LeafColumn, PhysicalType};
use crate::shred::{LeafData, LeafValues};

/// Random-access byte source for one file.
pub trait ChunkSource: Send + Sync {
    /// Total file size.
    fn size(&self) -> u64;
    /// Read `[offset, offset + len)`.
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>>;
}

/// Chunk source over an in-memory buffer.
#[derive(Debug, Clone)]
pub struct BytesSource {
    data: Arc<Vec<u8>>,
}

impl BytesSource {
    /// Wrap file bytes.
    pub fn new(data: Vec<u8>) -> BytesSource {
        BytesSource { data: Arc::new(data) }
    }
}

impl ChunkSource for BytesSource {
    fn size(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let start = offset as usize;
        let end = (offset + len) as usize;
        self.data
            .get(start..end)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| PrestoError::Format("read past end of file buffer".into()))
    }
}

/// Chunk source over a (simulated remote) filesystem — every read costs
/// whatever the filesystem charges, which is how reader I/O savings show up
/// in the storage counters.
pub struct FsSource {
    fs: Arc<dyn FileSystem>,
    path: String,
    size: u64,
}

impl FsSource {
    /// Open `path` on `fs`.
    pub fn open(fs: Arc<dyn FileSystem>, path: &str) -> Result<FsSource> {
        let info = fs.get_file_info(path)?;
        Ok(FsSource { fs, path: path.to_string(), size: info.size })
    }

    /// Open with a known size (skips the `getFileInfo` call — what the
    /// file-handle cache of §VII.B enables).
    pub fn open_with_size(fs: Arc<dyn FileSystem>, path: &str, size: u64) -> FsSource {
        FsSource { fs, path: path.to_string(), size }
    }
}

impl ChunkSource for FsSource {
    fn size(&self) -> u64 {
        self.size
    }

    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.fs.read_range(&self.path, offset, len)
    }
}

/// Read and parse the footer ("Parquet Footer: File Metadata, Row Group
/// Metadata" in Figs 3–9).
pub fn read_metadata(source: &dyn ChunkSource) -> Result<FileMetadata> {
    let size = source.size();
    if size < 12 {
        return Err(PrestoError::Format("file too small".into()));
    }
    let tail = source.read_range(size - 8, 8)?;
    if &tail[4..] != MAGIC {
        return Err(PrestoError::Format("bad trailing magic".into()));
    }
    let footer_len = u32::from_le_bytes(tail[..4].try_into().unwrap()) as u64;
    if footer_len + 12 > size {
        return Err(PrestoError::Format("footer length exceeds file".into()));
    }
    let footer = source.read_range(size - 8 - footer_len, footer_len)?;
    FileMetadata::deserialize(&footer)
}

/// Read and decode a chunk's dictionary page (if any) — the cheap probe
/// dictionary pushdown does before deciding to read the data page.
pub fn read_dictionary(
    source: &dyn ChunkSource,
    chunk: &ColumnChunkMeta,
    leaf: &LeafColumn,
) -> Result<Option<LeafValues>> {
    let (offset, len) = match chunk.dictionary_page {
        Some(loc) => loc,
        None => return Ok(None),
    };
    let compressed = source.read_range(offset, len)?;
    let raw = chunk.codec.decompress(&compressed)?;
    let mut r = ByteReader::new(&raw);
    Ok(Some(read_leaf_values(leaf.physical, &mut r, true)?))
}

/// Decode one column chunk into a triplet stream.
///
/// `vectorized` selects between the batched decoder (§V.I: bulk level runs,
/// bulk fixed-width value copies, dictionary cached and applied by gather)
/// and a deliberately triplet-at-a-time scalar decoder matching the
/// pre-vectorization reader.
pub fn decode_chunk(
    source: &dyn ChunkSource,
    chunk: &ColumnChunkMeta,
    leaf: &LeafColumn,
    vectorized: bool,
) -> Result<LeafData> {
    let (offset, len) = chunk.data_page;
    let compressed = source.read_range(offset, len)?;
    let raw = chunk.codec.decompress(&compressed)?;
    let mut r = ByteReader::new(&raw);
    let encoding = Encoding::from_tag(r.u8()?)?;

    let reps32 = rle_decode(&mut r)?;
    let defs32 = rle_decode(&mut r)?;
    if reps32.len() != defs32.len() {
        return Err(PrestoError::Format(format!(
            "repetition stream has {} levels, definition stream has {}",
            reps32.len(),
            defs32.len()
        )));
    }
    let (reps, defs) = if vectorized {
        // Bulk conversion.
        (
            reps32.iter().map(|&x| x as u16).collect::<Vec<_>>(),
            defs32.iter().map(|&x| x as u16).collect::<Vec<_>>(),
        )
    } else {
        // Scalar loop with per-element handling (the slow path keeps the
        // exact element-by-element structure of the old decoder).
        let mut reps = Vec::with_capacity(reps32.len());
        for &x in &reps32 {
            reps.push(x as u16);
        }
        let mut defs = Vec::with_capacity(defs32.len());
        for &x in &defs32 {
            defs.push(x as u16);
        }
        (reps, defs)
    };

    let values = match encoding {
        Encoding::Plain => read_leaf_values(leaf.physical, &mut r, vectorized)?,
        Encoding::Dictionary => {
            let dict = read_dictionary(source, chunk, leaf)?.ok_or_else(|| {
                PrestoError::Format("dictionary-encoded chunk without dictionary page".into())
            })?;
            let ids = rle_decode(&mut r)?;
            expand_dictionary(&dict, &ids)?
        }
    };

    if values.len() + (defs.iter().filter(|&&d| (d as u32) < leaf.max_def as u32).count())
        != defs.len()
    {
        return Err(PrestoError::Format("value count does not match levels".into()));
    }

    Ok(LeafData {
        reps,
        defs,
        values,
        max_def: leaf.max_def,
        scalar_type: leaf.scalar_type.clone(),
    })
}

/// Decode a plain value vector. The vectorized path copies fixed-width
/// payloads in bulk; the scalar path reads element by element.
pub fn read_leaf_values(
    physical: PhysicalType,
    r: &mut ByteReader<'_>,
    vectorized: bool,
) -> Result<LeafValues> {
    let n = r.varint()? as usize;
    match physical {
        PhysicalType::Bool => {
            let raw = r.raw(n)?; // bounds-checked: n is validated here
            Ok(LeafValues::Bool(raw.iter().map(|&b| b != 0).collect()))
        }
        PhysicalType::I32 => {
            if vectorized {
                let raw = r.raw(n * 4)?;
                let mut out = Vec::with_capacity(n);
                for c in raw.chunks_exact(4) {
                    out.push(i32::from_le_bytes(c.try_into().unwrap()));
                }
                Ok(LeafValues::I32(out))
            } else {
                let mut out = Vec::new();
                for _ in 0..n {
                    out.push(r.i32()?);
                }
                Ok(LeafValues::I32(out))
            }
        }
        PhysicalType::I64 => {
            if vectorized {
                let raw = r.raw(n * 8)?;
                let mut out = Vec::with_capacity(n);
                for c in raw.chunks_exact(8) {
                    out.push(i64::from_le_bytes(c.try_into().unwrap()));
                }
                Ok(LeafValues::I64(out))
            } else {
                let mut out = Vec::new();
                for _ in 0..n {
                    out.push(r.i64()?);
                }
                Ok(LeafValues::I64(out))
            }
        }
        PhysicalType::F64 => {
            if vectorized {
                let raw = r.raw(n * 8)?;
                let mut out = Vec::with_capacity(n);
                for c in raw.chunks_exact(8) {
                    out.push(f64::from_le_bytes(c.try_into().unwrap()));
                }
                Ok(LeafValues::F64(out))
            } else {
                let mut out = Vec::new();
                for _ in 0..n {
                    out.push(r.f64()?);
                }
                Ok(LeafValues::F64(out))
            }
        }
        PhysicalType::Bytes => {
            // n is untrusted until the per-value reads validate it
            let mut offsets = Vec::with_capacity((n + 1).min(1 << 16));
            offsets.push(0u32);
            let mut data = Vec::new();
            for _ in 0..n {
                let b = r.bytes()?;
                data.extend_from_slice(b);
                offsets.push(data.len() as u32);
            }
            Ok(LeafValues::Bytes { offsets, data })
        }
    }
}

/// Expand dictionary ids into plain values (gather).
fn expand_dictionary(dict: &LeafValues, ids: &[u32]) -> Result<LeafValues> {
    let check = |id: u32| -> Result<usize> {
        let i = id as usize;
        if i >= dict.len() {
            return Err(PrestoError::Format(format!(
                "dictionary id {id} out of range ({} entries)",
                dict.len()
            )));
        }
        Ok(i)
    };
    match dict {
        LeafValues::Bool(v) => {
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids {
                out.push(v[check(id)?]);
            }
            Ok(LeafValues::Bool(out))
        }
        LeafValues::I32(v) => {
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids {
                out.push(v[check(id)?]);
            }
            Ok(LeafValues::I32(out))
        }
        LeafValues::I64(v) => {
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids {
                out.push(v[check(id)?]);
            }
            Ok(LeafValues::I64(out))
        }
        LeafValues::F64(v) => {
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids {
                out.push(v[check(id)?]);
            }
            Ok(LeafValues::F64(out))
        }
        LeafValues::Bytes { offsets, data } => {
            let mut out_offsets = Vec::with_capacity(ids.len() + 1);
            out_offsets.push(0u32);
            let mut out_data = Vec::new();
            for &id in ids {
                let i = check(id)?;
                out_data.extend_from_slice(&data[offsets[i] as usize..offsets[i + 1] as usize]);
                out_offsets.push(out_data.len() as u32);
            }
            Ok(LeafValues::Bytes { offsets: out_offsets, data: out_data })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{FileWriter, WriterMode, WriterProperties};
    use presto_common::{Block, DataType, Field, Page, Schema};

    fn write_sample(codec: crate::codec::Codec) -> Vec<u8> {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
        ])
        .unwrap();
        let mut w = FileWriter::new(
            schema,
            WriterProperties { codec, ..WriterProperties::default() },
            WriterMode::Native,
        )
        .unwrap();
        let page = Page::new(vec![
            Block::bigint((0..200).collect()),
            Block::varchar(&(0..200).map(|i| format!("c{}", i % 3)).collect::<Vec<_>>()),
        ])
        .unwrap();
        w.write_page(&page).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn metadata_reads_back() {
        for codec in
            [crate::codec::Codec::None, crate::codec::Codec::Fast, crate::codec::Codec::Deep]
        {
            let bytes = write_sample(codec);
            let source = BytesSource::new(bytes);
            let meta = read_metadata(&source).unwrap();
            assert_eq!(meta.num_rows, 200);
            assert_eq!(meta.row_groups.len(), 1);
            assert_eq!(meta.row_groups[0].columns[0].codec, codec);
        }
    }

    #[test]
    fn chunks_decode_both_paths() {
        let bytes = write_sample(crate::codec::Codec::Fast);
        let source = BytesSource::new(bytes);
        let meta = read_metadata(&source).unwrap();
        let flat = crate::schema::FlatSchema::new(meta.schema.clone()).unwrap();
        for (i, leaf) in flat.leaves.iter().enumerate() {
            let chunk = &meta.row_groups[0].columns[i];
            let vec_data = decode_chunk(&source, chunk, leaf, true).unwrap();
            let scalar_data = decode_chunk(&source, chunk, leaf, false).unwrap();
            assert_eq!(vec_data, scalar_data);
            assert_eq!(vec_data.len(), 200);
        }
    }

    #[test]
    fn dictionary_page_is_separately_readable() {
        let bytes = write_sample(crate::codec::Codec::Fast);
        let source = BytesSource::new(bytes);
        let meta = read_metadata(&source).unwrap();
        let flat = crate::schema::FlatSchema::new(meta.schema.clone()).unwrap();
        // city column (leaf 1) has 3 distinct values → dictionary
        let chunk = &meta.row_groups[0].columns[1];
        let dict = read_dictionary(&source, chunk, &flat.leaves[1]).unwrap().unwrap();
        assert_eq!(dict.len(), 3);
        // id column is plain
        let chunk0 = &meta.row_groups[0].columns[0];
        assert!(read_dictionary(&source, chunk0, &flat.leaves[0]).unwrap().is_none());
    }

    #[test]
    fn corrupted_files_error_cleanly() {
        let bytes = write_sample(crate::codec::Codec::Fast);
        // bad trailing magic
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] = b'X';
        assert!(read_metadata(&BytesSource::new(bad)).is_err());
        // truncated
        assert!(read_metadata(&BytesSource::new(bytes[..10].to_vec())).is_err());
        assert!(read_metadata(&BytesSource::new(vec![0; 4])).is_err());
    }
}
