#![warn(missing_docs)]

//! A from-scratch nested columnar file format in the Parquet mould, with the
//! paper's two generations of readers and writers (§V).
//!
//! Layout (see [`metadata`]): row groups → per-leaf column chunks →
//! (optional dictionary page + data page), with a footer holding the schema,
//! row-group metadata and per-chunk min/max statistics. Nested data shreds
//! into Dremel (repetition, definition, value) triplets ([`shred`]).
//!
//! The two reader generations the paper benchmarks (Fig 17):
//! - [`reader_old`] — the original reader: reads *all* leaves of a requested
//!   column, assembles records row by row, then converts rows to blocks;
//! - [`reader_new`] — nested column pruning, direct columnar reads,
//!   predicate pushdown, dictionary pushdown, lazy reads, vectorized
//!   decoding; each toggleable for ablation.
//!
//! The two writer generations (Figs 18–20):
//! - [`writer::WriterMode::Legacy`] — reconstructs every record from blocks,
//!   then re-shreds;
//! - [`writer::WriterMode::Native`] — shreds blocks directly into triplets.
//!
//! Codecs ([`codec`]): from-scratch `Fast` (Snappy-profile) and `Deep`
//! (Gzip-profile) LZ coders plus `None` — the documented substitution for
//! the paper's Snappy/Gzip (DESIGN.md §2).
//!
//! Schema evolution (§V.A) lives in [`schema`]: field additions read as
//! NULL, removals are ignored, renames/retypes are rejected.

pub mod codec;
pub mod columnar;
pub mod encoding;
pub mod metadata;
pub mod predicate;
pub mod reader;
pub mod reader_new;
pub mod reader_old;
pub mod schema;
pub mod shred;
pub mod writer;

pub use codec::Codec;
pub use metadata::{ColumnStats, FileMetadata};
pub use predicate::{ColumnPredicate, FilePredicate, ScalarPredicate};
pub use reader::{BytesSource, ChunkSource, FsSource};
pub use reader_new::{NewReadStats, ProjectedColumn, ReadOptions};
pub use schema::{FlatSchema, LeafColumn, PhysicalType, SchemaNode};
pub use writer::{FileWriter, WriterMode, WriterProperties};
