//! Dremel-style shredding and record assembly.
//!
//! Writing: nested values shred into per-leaf *triplets* of (repetition
//! level, definition level, value) — §V.I calls them exactly that ("a
//! vectorized parquet reader batch reads 1000 triplets of repetition level,
//! definition level, and value").
//!
//! Reading: the *record assembler* reconstructs nested values from triplet
//! streams. The legacy reader (§V.C) funnels everything through this
//! row-at-a-time path; the new reader only uses it for repeated (array/map)
//! subtrees and builds repetition-free columns directly
//! ([`crate::columnar`]).

use presto_common::{DataType, PrestoError, Result, Value};

use crate::schema::{LeafColumn, PhysicalType, SchemaNode};

/// Typed storage for the *defined* values of one leaf (positions whose
/// definition level equals the leaf's max — nulls carry no value slot).
#[derive(Debug, Clone, PartialEq)]
pub enum LeafValues {
    /// BOOLEAN payload.
    Bool(Vec<bool>),
    /// INTEGER / DATE payload.
    I32(Vec<i32>),
    /// BIGINT / TIMESTAMP payload.
    I64(Vec<i64>),
    /// DOUBLE payload.
    F64(Vec<f64>),
    /// VARCHAR payload as offsets + bytes.
    Bytes {
        /// `offsets.len() == count + 1`.
        offsets: Vec<u32>,
        /// Concatenated payload.
        data: Vec<u8>,
    },
}

impl LeafValues {
    /// Empty storage for a physical type.
    pub fn new(physical: PhysicalType) -> LeafValues {
        match physical {
            PhysicalType::Bool => LeafValues::Bool(Vec::new()),
            PhysicalType::I32 => LeafValues::I32(Vec::new()),
            PhysicalType::I64 => LeafValues::I64(Vec::new()),
            PhysicalType::F64 => LeafValues::F64(Vec::new()),
            PhysicalType::Bytes => LeafValues::Bytes { offsets: vec![0], data: Vec::new() },
        }
    }

    /// Number of stored (defined) values.
    pub fn len(&self) -> usize {
        match self {
            LeafValues::Bool(v) => v.len(),
            LeafValues::I32(v) => v.len(),
            LeafValues::I64(v) => v.len(),
            LeafValues::F64(v) => v.len(),
            LeafValues::Bytes { offsets, .. } => offsets.len() - 1,
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical type of this storage.
    pub fn physical(&self) -> PhysicalType {
        match self {
            LeafValues::Bool(_) => PhysicalType::Bool,
            LeafValues::I32(_) => PhysicalType::I32,
            LeafValues::I64(_) => PhysicalType::I64,
            LeafValues::F64(_) => PhysicalType::F64,
            LeafValues::Bytes { .. } => PhysicalType::Bytes,
        }
    }

    /// Append a non-null scalar matching the physical type.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (LeafValues::Bool(out), Value::Boolean(b)) => out.push(*b),
            (LeafValues::I32(out), Value::Integer(x)) => out.push(*x),
            (LeafValues::I32(out), Value::Date(x)) => out.push(*x),
            (LeafValues::I64(out), Value::Bigint(x)) => out.push(*x),
            (LeafValues::I64(out), Value::Timestamp(x)) => out.push(*x),
            (LeafValues::F64(out), Value::Double(x)) => out.push(*x),
            (LeafValues::Bytes { offsets, data }, Value::Varchar(s)) => {
                if data.len() + s.len() > u32::MAX as usize {
                    return Err(PrestoError::Format(
                        "varchar chunk exceeds 4 GiB; split into smaller row groups".into(),
                    ));
                }
                data.extend_from_slice(s.as_bytes());
                offsets.push(data.len() as u32);
            }
            (store, v) => {
                return Err(PrestoError::Internal(format!(
                    "leaf value {v} does not match physical type {:?}",
                    store.physical()
                )))
            }
        }
        Ok(())
    }

    /// Materialize value `i` as the given logical scalar type.
    pub fn get(&self, i: usize, logical: &DataType) -> Value {
        match self {
            LeafValues::Bool(v) => Value::Boolean(v[i]),
            LeafValues::I32(v) => match logical {
                DataType::Date => Value::Date(v[i]),
                _ => Value::Integer(v[i]),
            },
            LeafValues::I64(v) => match logical {
                DataType::Timestamp => Value::Timestamp(v[i]),
                _ => Value::Bigint(v[i]),
            },
            LeafValues::F64(v) => Value::Double(v[i]),
            LeafValues::Bytes { offsets, data } => {
                let s = &data[offsets[i] as usize..offsets[i + 1] as usize];
                Value::Varchar(String::from_utf8_lossy(s).into_owned())
            }
        }
    }

    /// Byte slice of value `i` (Bytes storage only).
    pub fn bytes_at(&self, i: usize) -> Option<&[u8]> {
        match self {
            LeafValues::Bytes { offsets, data } => {
                Some(&data[offsets[i] as usize..offsets[i + 1] as usize])
            }
            _ => None,
        }
    }
}

/// The decoded triplet stream of one leaf column (one row group's worth).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafData {
    /// Repetition level per triplet.
    pub reps: Vec<u16>,
    /// Definition level per triplet.
    pub defs: Vec<u16>,
    /// Defined values, compacted.
    pub values: LeafValues,
    /// The leaf's max definition level (value present ⇔ `def == max_def`).
    pub max_def: u16,
    /// The leaf's logical scalar type.
    pub scalar_type: DataType,
}

impl LeafData {
    /// Empty stream for a leaf.
    pub fn new(leaf: &LeafColumn) -> LeafData {
        LeafData {
            reps: Vec::new(),
            defs: Vec::new(),
            values: LeafValues::new(leaf.physical),
            max_def: leaf.max_def,
            scalar_type: leaf.scalar_type.clone(),
        }
    }

    /// Number of triplets.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Number of NULL (undefined) triplets.
    pub fn null_count(&self) -> usize {
        let max = self.max_def as u32;
        self.defs.iter().filter(|&&d| (d as u32) < max).count()
    }

    fn push_null(&mut self, rep: u16, def: u16) {
        self.reps.push(rep);
        self.defs.push(def);
    }

    fn push_value(&mut self, rep: u16, v: &Value) -> Result<()> {
        self.reps.push(rep);
        self.defs.push(self.max_def);
        self.values.push(v)
    }
}

// ------------------------------------------------------------------ shred

/// Shred one top-level column of `values` into the leaf sinks of its
/// subtree. `sinks` is indexed by **global** leaf index.
pub fn shred_column(node: &SchemaNode, values: &[Value], sinks: &mut [LeafData]) -> Result<()> {
    for v in values {
        shred_value(node, v, 0, 0, sinks)?;
    }
    Ok(())
}

/// Shred a single record's value for one top-level column — the unit of work
/// of the *legacy* writer, which consumes records one at a time (§V.J).
pub fn shred_one(node: &SchemaNode, value: &Value, sinks: &mut [LeafData]) -> Result<()> {
    shred_value(node, value, 0, 0, sinks)
}

fn shred_value(
    node: &SchemaNode,
    v: &Value,
    rep: u16,
    def: u16,
    sinks: &mut [LeafData],
) -> Result<()> {
    match node {
        SchemaNode::Leaf { leaf_index, .. } => {
            if v.is_null() {
                sinks[*leaf_index].push_null(rep, def);
            } else {
                sinks[*leaf_index].push_value(rep, v)?;
            }
            Ok(())
        }
        SchemaNode::Row { fields, def_present, .. } => match v {
            Value::Null => emit_nulls(node, rep, def, sinks),
            Value::Row(items) => {
                if items.len() != fields.len() {
                    return Err(PrestoError::Internal(format!(
                        "row value has {} fields, schema has {}",
                        items.len(),
                        fields.len()
                    )));
                }
                for ((_, child), item) in fields.iter().zip(items.iter()) {
                    shred_value(child, item, rep, *def_present, sinks)?;
                }
                Ok(())
            }
            other => Err(PrestoError::Internal(format!("expected row value, got {other}"))),
        },
        SchemaNode::Array { element, def_present, rep: elem_rep, .. } => match v {
            Value::Null => emit_nulls(node, rep, def, sinks),
            Value::Array(items) if items.is_empty() => {
                // list present but empty: one triplet per leaf at def_present
                emit_nulls_at(element, rep, *def_present, sinks)
            }
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    let r = if i == 0 { rep } else { *elem_rep };
                    shred_value(element, item, r, def_present + 1, sinks)?;
                }
                Ok(())
            }
            other => Err(PrestoError::Internal(format!("expected array value, got {other}"))),
        },
        SchemaNode::Map { key, value, def_present, rep: elem_rep, .. } => match v {
            Value::Null => emit_nulls(node, rep, def, sinks),
            Value::Map(entries) if entries.is_empty() => {
                emit_nulls_at(key, rep, *def_present, sinks)?;
                emit_nulls_at(value, rep, *def_present, sinks)
            }
            Value::Map(entries) => {
                for (i, (k, val)) in entries.iter().enumerate() {
                    let r = if i == 0 { rep } else { *elem_rep };
                    shred_value(key, k, r, def_present + 1, sinks)?;
                    shred_value(value, val, r, def_present + 1, sinks)?;
                }
                Ok(())
            }
            other => Err(PrestoError::Internal(format!("expected map value, got {other}"))),
        },
    }
}

/// NULL at this node: every leaf below records (rep, def) with no value.
fn emit_nulls(node: &SchemaNode, rep: u16, def: u16, sinks: &mut [LeafData]) -> Result<()> {
    for leaf in node.leaf_indices() {
        sinks[leaf].push_null(rep, def);
    }
    Ok(())
}

/// Present-but-empty list/map: leaves of the element subtree record the
/// list's own definition level.
fn emit_nulls_at(element: &SchemaNode, rep: u16, def: u16, sinks: &mut [LeafData]) -> Result<()> {
    for leaf in element.leaf_indices() {
        sinks[leaf].push_null(rep, def);
    }
    Ok(())
}

// --------------------------------------------------------------- assemble

/// A read cursor over one leaf's triplet stream.
#[derive(Debug)]
pub struct LeafCursor<'a> {
    data: &'a LeafData,
    idx: usize,
    value_idx: usize,
}

impl<'a> LeafCursor<'a> {
    /// Cursor at the start of a stream.
    pub fn new(data: &'a LeafData) -> LeafCursor<'a> {
        LeafCursor { data, idx: 0, value_idx: 0 }
    }

    /// True when all triplets are consumed.
    pub fn exhausted(&self) -> bool {
        self.idx >= self.data.len()
    }

    fn peek(&self) -> Option<(u16, u16)> {
        if self.exhausted() {
            None
        } else {
            Some((self.data.reps[self.idx], self.data.defs[self.idx]))
        }
    }

    fn advance(&mut self) -> Result<(u16, u16, Option<Value>)> {
        if self.exhausted() {
            return Err(PrestoError::Format("leaf stream exhausted mid-record".into()));
        }
        let rep = self.data.reps[self.idx];
        let def = self.data.defs[self.idx];
        self.idx += 1;
        let value = if def == self.data.max_def {
            let v = self.data.values.get(self.value_idx, &self.data.scalar_type);
            self.value_idx += 1;
            Some(v)
        } else {
            None
        };
        Ok((rep, def, value))
    }
}

/// Assemble every record of one top-level column. `cursors` is indexed by
/// **global** leaf index; only the subtree's cursors are touched.
pub fn assemble_column(node: &SchemaNode, cursors: &mut [LeafCursor<'_>]) -> Result<Vec<Value>> {
    let pilot = node.first_leaf();
    let mut out = Vec::new();
    while !cursors[pilot].exhausted() {
        out.push(assemble_value(node, cursors, 0)?);
    }
    Ok(out)
}

#[allow(clippy::only_used_in_recursion)]
fn assemble_value(node: &SchemaNode, cursors: &mut [LeafCursor<'_>], def: u16) -> Result<Value> {
    match node {
        SchemaNode::Leaf { leaf_index, .. } => {
            let (_, _, value) = cursors[*leaf_index].advance()?;
            Ok(value.unwrap_or(Value::Null))
        }
        SchemaNode::Row { fields, def_present, .. } => {
            let pilot = node.first_leaf();
            let (_, d) = cursors[pilot]
                .peek()
                .ok_or_else(|| PrestoError::Format("stream exhausted in struct".into()))?;
            if d < *def_present {
                // Struct (or an ancestor) is null here: consume the slot from
                // every leaf and yield NULL.
                consume_slot(node, cursors)?;
                return Ok(Value::Null);
            }
            let mut items = Vec::with_capacity(fields.len());
            for (_, child) in fields {
                items.push(assemble_value(child, cursors, def + 1)?);
            }
            Ok(Value::Row(items))
        }
        SchemaNode::Array { element, def_present, rep: elem_rep, .. } => {
            let pilot = node.first_leaf();
            let (_, d) = cursors[pilot]
                .peek()
                .ok_or_else(|| PrestoError::Format("stream exhausted in array".into()))?;
            if d < *def_present {
                consume_slot(node, cursors)?;
                return Ok(Value::Null);
            }
            if d == *def_present {
                // present but empty
                consume_slot(node, cursors)?;
                return Ok(Value::Array(Vec::new()));
            }
            let mut items = Vec::new();
            loop {
                items.push(assemble_value(element, cursors, def_present + 1)?);
                match cursors[pilot].peek() {
                    Some((r, _)) if r == *elem_rep => continue,
                    _ => break,
                }
            }
            Ok(Value::Array(items))
        }
        SchemaNode::Map { key, value, def_present, rep: elem_rep, .. } => {
            let pilot = node.first_leaf();
            let (_, d) = cursors[pilot]
                .peek()
                .ok_or_else(|| PrestoError::Format("stream exhausted in map".into()))?;
            if d < *def_present {
                consume_slot(node, cursors)?;
                return Ok(Value::Null);
            }
            if d == *def_present {
                consume_slot(node, cursors)?;
                return Ok(Value::Map(Vec::new()));
            }
            let mut entries = Vec::new();
            loop {
                let k = assemble_value(key, cursors, def_present + 1)?;
                let v = assemble_value(value, cursors, def_present + 1)?;
                entries.push((k, v));
                match cursors[pilot].peek() {
                    Some((r, _)) if r == *elem_rep => continue,
                    _ => break,
                }
            }
            Ok(Value::Map(entries))
        }
    }
}

/// Consume exactly one triplet from every leaf under `node` (the null /
/// empty-collection slot, written in lockstep by the shredder).
fn consume_slot(node: &SchemaNode, cursors: &mut [LeafCursor<'_>]) -> Result<()> {
    for leaf in node.leaf_indices() {
        cursors[leaf].advance()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FlatSchema;
    use presto_common::{Field, Schema};

    fn round_trip(dt: DataType, values: Vec<Value>) {
        let schema = Schema::new(vec![Field::new("c", dt)]).unwrap();
        let flat = FlatSchema::new(schema).unwrap();
        let mut sinks: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_column(&flat.roots[0], &values, &mut sinks).unwrap();
        let mut cursors: Vec<LeafCursor<'_>> = sinks.iter().map(LeafCursor::new).collect();
        let back = assemble_column(&flat.roots[0], &mut cursors).unwrap();
        assert_eq!(back, values);
        assert!(cursors.iter().all(LeafCursor::exhausted));
    }

    #[test]
    fn scalar_round_trip_with_nulls() {
        round_trip(DataType::Bigint, vec![Value::Bigint(1), Value::Null, Value::Bigint(3)]);
        round_trip(
            DataType::Varchar,
            vec![Value::Varchar("a".into()), Value::Null, Value::Varchar("".into())],
        );
    }

    #[test]
    fn struct_round_trip() {
        let dt = DataType::row(vec![
            Field::new("x", DataType::Bigint),
            Field::new("y", DataType::Varchar),
        ]);
        round_trip(
            dt,
            vec![
                Value::Row(vec![Value::Bigint(1), Value::Varchar("a".into())]),
                Value::Null,
                Value::Row(vec![Value::Null, Value::Varchar("b".into())]),
            ],
        );
    }

    #[test]
    fn array_round_trip_including_empty_and_null() {
        let dt = DataType::array(DataType::Bigint);
        round_trip(
            dt,
            vec![
                Value::Array(vec![Value::Bigint(1), Value::Bigint(2)]),
                Value::Array(vec![]),
                Value::Null,
                Value::Array(vec![Value::Null, Value::Bigint(4)]),
            ],
        );
    }

    #[test]
    fn nested_arrays_round_trip() {
        let dt = DataType::array(DataType::array(DataType::Bigint));
        round_trip(
            dt,
            vec![
                Value::Array(vec![
                    Value::Array(vec![Value::Bigint(1), Value::Bigint(2)]),
                    Value::Array(vec![Value::Bigint(3)]),
                ]),
                Value::Array(vec![Value::Array(vec![]), Value::Null]),
                Value::Null,
                Value::Array(vec![]),
            ],
        );
    }

    #[test]
    fn map_round_trip() {
        let dt = DataType::map(DataType::Varchar, DataType::Double);
        round_trip(
            dt,
            vec![
                Value::Map(vec![
                    (Value::Varchar("a".into()), Value::Double(1.0)),
                    (Value::Varchar("b".into()), Value::Null),
                ]),
                Value::Map(vec![]),
                Value::Null,
            ],
        );
    }

    #[test]
    fn deep_uber_style_struct_round_trip() {
        // >5 levels of nesting, the shape §V.A describes
        let dt = DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new(
                "status",
                DataType::row(vec![
                    Field::new("code", DataType::Integer),
                    Field::new(
                        "history",
                        DataType::array(DataType::row(vec![
                            Field::new("ts", DataType::Timestamp),
                            Field::new("tags", DataType::array(DataType::Varchar)),
                        ])),
                    ),
                ]),
            ),
        ]);
        round_trip(
            dt,
            vec![
                Value::Row(vec![
                    Value::Varchar("d1".into()),
                    Value::Row(vec![
                        Value::Integer(1),
                        Value::Array(vec![
                            Value::Row(vec![
                                Value::Timestamp(100),
                                Value::Array(vec!["a".into(), "b".into()]),
                            ]),
                            Value::Row(vec![Value::Timestamp(200), Value::Array(vec![])]),
                        ]),
                    ]),
                ]),
                Value::Row(vec![Value::Varchar("d2".into()), Value::Null]),
                Value::Null,
            ],
        );
    }

    #[test]
    fn levels_match_dremel_expectations() {
        // array(bigint): leaf max_def=3 (list present, slot, value non-null)
        let schema = Schema::new(vec![Field::new("a", DataType::array(DataType::Bigint))]).unwrap();
        let flat = FlatSchema::new(schema).unwrap();
        let mut sinks: Vec<LeafData> = flat.leaves.iter().map(LeafData::new).collect();
        shred_column(
            &flat.roots[0],
            &[
                Value::Array(vec![Value::Bigint(1), Value::Bigint(2)]),
                Value::Array(vec![]),
                Value::Null,
                Value::Array(vec![Value::Null]),
            ],
            &mut sinks,
        )
        .unwrap();
        let leaf = &sinks[0];
        assert_eq!(leaf.reps, vec![0, 1, 0, 0, 0]);
        assert_eq!(leaf.defs, vec![3, 3, 1, 0, 2]);
        assert_eq!(leaf.null_count(), 3);
    }
}
