//! File footer metadata.
//!
//! "Each Parquet file has a footer that stores codecs, encoding information,
//! as well as column-level statistics, e.g., the minimum and maximum number
//! of column values" (§V.B). The footer is what the new reader's predicate
//! pushdown (Fig 7) consults to skip row groups, and what the worker-side
//! footer cache (§VII.B) keeps hot ("footers ... are the indexes to the data
//! itself").
//!
//! Physical file layout:
//!
//! ```text
//! "UPQ1" | row group 0 chunks | row group 1 chunks | ... | footer | footer_len: u32 | "UPQ1"
//! ```

use presto_common::{DataType, PrestoError, Result, Value};

use crate::codec::Codec;
use crate::encoding::{ByteReader, ByteWriter};
use crate::schema::{read_schema, write_schema};
use presto_common::Schema;

/// File magic, both leading and trailing.
pub const MAGIC: &[u8; 4] = b"UPQ1";
/// Footer format version.
pub const FORMAT_VERSION: u16 = 1;

/// Value encoding of a data page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values stored inline.
    Plain,
    /// Values are RLE ids into the chunk's dictionary page.
    Dictionary,
}

impl Encoding {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Dictionary => 1,
        }
    }

    /// Parse an on-disk tag.
    pub fn from_tag(t: u8) -> Result<Encoding> {
        match t {
            0 => Ok(Encoding::Plain),
            1 => Ok(Encoding::Dictionary),
            other => Err(PrestoError::Format(format!("unknown encoding tag {other}"))),
        }
    }
}

/// Column-level statistics stored per chunk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Minimum defined value (absent when the chunk is all-null).
    pub min: Option<Value>,
    /// Maximum defined value.
    pub max: Option<Value>,
    /// Number of null (undefined) triplets.
    pub null_count: u64,
}

/// Metadata for one leaf column chunk within a row group.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunkMeta {
    /// Index into the flattened schema's leaves.
    pub leaf_index: u32,
    /// Codec for both dictionary and data pages.
    pub codec: Codec,
    /// Value encoding of the data page.
    pub encoding: Encoding,
    /// Number of triplets (levels) in the chunk.
    pub num_triplets: u64,
    /// Dictionary page location (offset, compressed length); `None` when
    /// plain-encoded.
    pub dictionary_page: Option<(u64, u64)>,
    /// Number of dictionary entries.
    pub dictionary_count: u32,
    /// Data page location (offset, compressed length).
    pub data_page: (u64, u64),
    /// Column statistics.
    pub stats: ColumnStats,
}

/// Metadata for one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    /// Top-level row count of the group.
    pub num_rows: u64,
    /// One chunk per leaf column, in leaf order.
    pub columns: Vec<ColumnChunkMeta>,
}

/// The file footer.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetadata {
    /// Format version.
    pub version: u16,
    /// The file's (nested) schema.
    pub schema: Schema,
    /// Total top-level rows.
    pub num_rows: u64,
    /// Row groups in file order.
    pub row_groups: Vec<RowGroupMeta>,
}

impl FileMetadata {
    /// Serialize the footer body (without length/magic trailer).
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u16(self.version);
        write_schema(&self.schema, &mut w);
        w.u64(self.num_rows);
        w.varint(self.row_groups.len() as u64);
        for rg in &self.row_groups {
            w.u64(rg.num_rows);
            w.varint(rg.columns.len() as u64);
            for c in &rg.columns {
                w.u32(c.leaf_index);
                w.u8(c.codec.tag());
                w.u8(c.encoding.tag());
                w.u64(c.num_triplets);
                match c.dictionary_page {
                    Some((off, len)) => {
                        w.u8(1);
                        w.u64(off);
                        w.u64(len);
                    }
                    None => w.u8(0),
                }
                w.u32(c.dictionary_count);
                w.u64(c.data_page.0);
                w.u64(c.data_page.1);
                write_stats(&c.stats, &mut w);
            }
        }
        w.into_bytes()
    }

    /// Parse a footer body.
    pub fn deserialize(data: &[u8]) -> Result<FileMetadata> {
        let mut r = ByteReader::new(data);
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(PrestoError::Format(format!("unsupported format version {version}")));
        }
        let schema = read_schema(&mut r)?;
        let num_rows = r.u64()?;
        let n_groups = r.varint()? as usize;
        let mut row_groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let rows = r.u64()?;
            let n_cols = r.varint()? as usize;
            let mut columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let leaf_index = r.u32()?;
                let codec = Codec::from_tag(r.u8()?)?;
                let encoding = Encoding::from_tag(r.u8()?)?;
                let num_triplets = r.u64()?;
                let dictionary_page = if r.u8()? == 1 { Some((r.u64()?, r.u64()?)) } else { None };
                let dictionary_count = r.u32()?;
                let data_page = (r.u64()?, r.u64()?);
                let stats = read_stats(&mut r)?;
                columns.push(ColumnChunkMeta {
                    leaf_index,
                    codec,
                    encoding,
                    num_triplets,
                    dictionary_page,
                    dictionary_count,
                    data_page,
                    stats,
                });
            }
            row_groups.push(RowGroupMeta { num_rows: rows, columns });
        }
        Ok(FileMetadata { version, schema, num_rows, row_groups })
    }

    /// Approximate in-memory footprint, used by the footer cache's budget.
    pub fn memory_size(&self) -> usize {
        64 + self.row_groups.iter().map(|rg| 16 + rg.columns.len() * 128).sum::<usize>()
    }
}

fn write_stats(stats: &ColumnStats, w: &mut ByteWriter) {
    w.u64(stats.null_count);
    write_opt_value(&stats.min, w);
    write_opt_value(&stats.max, w);
}

fn read_stats(r: &mut ByteReader<'_>) -> Result<ColumnStats> {
    let null_count = r.u64()?;
    let min = read_opt_value(r)?;
    let max = read_opt_value(r)?;
    Ok(ColumnStats { min, max, null_count })
}

fn write_opt_value(v: &Option<Value>, w: &mut ByteWriter) {
    match v {
        None => w.u8(0),
        Some(Value::Boolean(b)) => {
            w.u8(1);
            w.u8(*b as u8);
        }
        Some(Value::Integer(x)) => {
            w.u8(2);
            w.i32(*x);
        }
        Some(Value::Bigint(x)) => {
            w.u8(3);
            w.i64(*x);
        }
        Some(Value::Double(x)) => {
            w.u8(4);
            w.f64(*x);
        }
        Some(Value::Varchar(s)) => {
            w.u8(5);
            // already bounded by update_stats; truncating here would break
            // the min-lower-bound / max-upper-bound invariants it maintains
            w.string(s);
        }
        Some(Value::Date(x)) => {
            w.u8(6);
            w.i32(*x);
        }
        Some(Value::Timestamp(x)) => {
            w.u8(7);
            w.i64(*x);
        }
        // nested values never appear in stats
        Some(_) => w.u8(0),
    }
}

fn read_opt_value(r: &mut ByteReader<'_>) -> Result<Option<Value>> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Value::Boolean(r.u8()? != 0)),
        2 => Some(Value::Integer(r.i32()?)),
        3 => Some(Value::Bigint(r.i64()?)),
        4 => Some(Value::Double(r.f64()?)),
        5 => Some(Value::Varchar(r.string()?)),
        6 => Some(Value::Date(r.i32()?)),
        7 => Some(Value::Timestamp(r.i64()?)),
        other => return Err(PrestoError::Format(format!("unknown stats value tag {other}"))),
    })
}

/// Update running min/max stats with a defined value.
pub fn update_stats(stats: &mut ColumnStats, v: &Value) {
    if v.is_null() {
        stats.null_count += 1;
        return;
    }
    // NaN is unordered: feeding it into min/max would poison the stats (no
    // later value ever replaces it via sql_cmp) and make pushdown skip row
    // groups it must read. NaN rows simply don't contribute to stats.
    if matches!(v, Value::Double(d) if d.is_nan()) {
        return;
    }
    // Nested values carry no stats (matching Parquet, which only keeps
    // leaf-level min/max — and our leaves are always scalars).
    let better_min = match &stats.min {
        None => true,
        Some(m) => v.sql_cmp(m) == Some(std::cmp::Ordering::Less),
    };
    if better_min {
        stats.min = Some(truncate_min_for_stats(v));
    }
    let better_max = match &stats.max {
        None => true,
        Some(m) => v.sql_cmp(m) == Some(std::cmp::Ordering::Greater),
    };
    if better_max {
        stats.max = Some(truncate_max_for_stats(v));
    }
}

/// A prefix of a string is lexicographically ≤ the string, so plain
/// truncation is a valid *lower* bound.
fn truncate_min_for_stats(v: &Value) -> Value {
    match v {
        Value::Varchar(s) if s.chars().count() > 64 => Value::Varchar(s.chars().take(64).collect()),
        other => other.clone(),
    }
}

/// A truncated prefix is lexicographically *smaller* than the value, so a
/// max stat must round up: append the maximum char, which sorts above any
/// continuation of the 63-char prefix. Otherwise stats pushdown would skip
/// row groups containing long strings above the truncated max.
fn truncate_max_for_stats(v: &Value) -> Value {
    match v {
        Value::Varchar(s) if s.chars().count() > 64 => {
            let mut upper: String = s.chars().take(63).collect();
            upper.push(char::MAX);
            Value::Varchar(upper)
        }
        other => other.clone(),
    }
}

/// The scalar type a stats value should be read as, given a leaf logical type.
pub fn stats_compatible(stats_value: &Value, leaf_type: &DataType) -> bool {
    matches!(
        (stats_value, leaf_type),
        (Value::Boolean(_), DataType::Boolean)
            | (Value::Integer(_), DataType::Integer)
            | (Value::Bigint(_), DataType::Bigint)
            | (Value::Double(_), DataType::Double)
            | (Value::Varchar(_), DataType::Varchar)
            | (Value::Date(_), DataType::Date)
            | (Value::Timestamp(_), DataType::Timestamp)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Field;

    fn sample_metadata() -> FileMetadata {
        FileMetadata {
            version: FORMAT_VERSION,
            schema: Schema::new(vec![
                Field::new("a", DataType::Bigint),
                Field::new("b", DataType::Varchar),
            ])
            .unwrap(),
            num_rows: 100,
            row_groups: vec![RowGroupMeta {
                num_rows: 100,
                columns: vec![
                    ColumnChunkMeta {
                        leaf_index: 0,
                        codec: Codec::Fast,
                        encoding: Encoding::Plain,
                        num_triplets: 100,
                        dictionary_page: None,
                        dictionary_count: 0,
                        data_page: (4, 320),
                        stats: ColumnStats {
                            min: Some(Value::Bigint(-5)),
                            max: Some(Value::Bigint(99)),
                            null_count: 3,
                        },
                    },
                    ColumnChunkMeta {
                        leaf_index: 1,
                        codec: Codec::Deep,
                        encoding: Encoding::Dictionary,
                        num_triplets: 100,
                        dictionary_page: Some((324, 50)),
                        dictionary_count: 7,
                        data_page: (374, 60),
                        stats: ColumnStats {
                            min: Some(Value::Varchar("aaa".into())),
                            max: Some(Value::Varchar("zzz".into())),
                            null_count: 0,
                        },
                    },
                ],
            }],
        }
    }

    #[test]
    fn footer_round_trips() {
        let meta = sample_metadata();
        let bytes = meta.serialize();
        let back = FileMetadata::deserialize(&bytes).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn footer_rejects_bad_version_and_truncation() {
        let meta = sample_metadata();
        let mut bytes = meta.serialize();
        assert!(FileMetadata::deserialize(&bytes[..bytes.len() - 4]).is_err());
        bytes[0] = 0xFF;
        assert!(FileMetadata::deserialize(&bytes).is_err());
    }

    #[test]
    fn stats_update_and_truncate() {
        let mut stats = ColumnStats::default();
        update_stats(&mut stats, &Value::Bigint(5));
        update_stats(&mut stats, &Value::Null);
        update_stats(&mut stats, &Value::Bigint(-2));
        update_stats(&mut stats, &Value::Bigint(10));
        assert_eq!(stats.min, Some(Value::Bigint(-2)));
        assert_eq!(stats.max, Some(Value::Bigint(10)));
        assert_eq!(stats.null_count, 1);

        let mut s = ColumnStats::default();
        let long = "x".repeat(200);
        update_stats(&mut s, &Value::Varchar(long.clone()));
        match &s.min {
            Some(Value::Varchar(v)) => {
                assert_eq!(v.chars().count(), 64);
                assert!(v.as_str() <= long.as_str(), "min must stay a lower bound");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &s.max {
            Some(Value::Varchar(v)) => {
                assert!(v.as_str() >= long.as_str(), "max must stay an upper bound");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_does_not_poison_double_stats() {
        let mut s = ColumnStats::default();
        update_stats(&mut s, &Value::Double(f64::NAN));
        update_stats(&mut s, &Value::Double(3.0));
        update_stats(&mut s, &Value::Double(-1.0));
        assert_eq!(s.min, Some(Value::Double(-1.0)));
        assert_eq!(s.max, Some(Value::Double(3.0)));
    }
}
