//! Reader-level predicates — the currency of predicate pushdown (§V.F) and
//! dictionary pushdown (§V.G).
//!
//! The engine's optimizer translates eligible `RowExpression` conjuncts into
//! these simple per-leaf predicates and hands them to the new reader, which
//! uses them three ways: (1) against footer min/max statistics to skip row
//! groups; (2) against dictionary pages to skip row groups whose dictionary
//! cannot match; (3) row-by-row while scanning, to drive lazy reads.

use presto_common::{Result, Value};

use crate::metadata::ColumnStats;
use crate::shred::{LeafData, LeafValues};

/// A predicate over one scalar leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarPredicate {
    /// `leaf = value`
    Eq(Value),
    /// `leaf IN (values)`
    In(Vec<Value>),
    /// `min <= leaf <= max` (either bound optional, inclusive)
    Range {
        /// Inclusive lower bound.
        min: Option<Value>,
        /// Inclusive upper bound.
        max: Option<Value>,
    },
}

impl ScalarPredicate {
    /// Row-level evaluation; NULL never matches (SQL filter semantics).
    pub fn matches(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            ScalarPredicate::Eq(target) => v.sql_cmp(target) == Some(std::cmp::Ordering::Equal),
            ScalarPredicate::In(targets) => {
                targets.iter().any(|t| v.sql_cmp(t) == Some(std::cmp::Ordering::Equal))
            }
            ScalarPredicate::Range { min, max } => {
                if let Some(lo) = min {
                    match v.sql_cmp(lo) {
                        Some(std::cmp::Ordering::Less) | None => return false,
                        _ => {}
                    }
                }
                if let Some(hi) = max {
                    match v.sql_cmp(hi) {
                        Some(std::cmp::Ordering::Greater) | None => return false,
                        _ => {}
                    }
                }
                true
            }
        }
    }

    /// Can any row in a chunk with these statistics match? `false` means the
    /// whole row group can be skipped (Fig 7: "one row group city_id max is
    /// 10, new Parquet reader will skip this row group" for `city_id = 12`).
    pub fn maybe_matches_stats(&self, stats: &ColumnStats, num_triplets: u64) -> bool {
        // An all-null chunk can never match.
        if stats.null_count >= num_triplets {
            return false;
        }
        let (min, max) = match (&stats.min, &stats.max) {
            (Some(min), Some(max)) => (min, max),
            // No stats recorded — must read.
            _ => return true,
        };
        let value_in_bounds = |v: &Value| -> bool {
            matches!(
                v.sql_cmp(min),
                Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
            ) && matches!(
                v.sql_cmp(max),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
            )
        };
        match self {
            ScalarPredicate::Eq(v) => value_in_bounds(v),
            ScalarPredicate::In(vs) => vs.iter().any(value_in_bounds),
            ScalarPredicate::Range { min: lo, max: hi } => {
                // [lo, hi] must intersect [min, max]
                if let Some(lo) = lo {
                    if lo.sql_cmp(max) == Some(std::cmp::Ordering::Greater) {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    if hi.sql_cmp(min) == Some(std::cmp::Ordering::Less) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Can any dictionary entry match? `false` lets dictionary pushdown skip
    /// the row group even when min/max statistics were inconclusive (Fig 8:
    /// "the dictionary includes the IDs 3, 5, 9, 14, 21" for `city_id = 12`).
    pub fn matches_any_in_dictionary(
        &self,
        dict: &LeafValues,
        logical: &presto_common::DataType,
    ) -> bool {
        (0..dict.len()).any(|i| self.matches(&dict.get(i, logical)))
    }

    /// Evaluate over a whole decoded leaf stream, producing one flag per
    /// triplet. Only valid for repetition-free leaves (one triplet per row).
    pub fn evaluate_leaf(&self, leaf: &LeafData) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(leaf.len());
        let mut vi = 0;
        for &d in &leaf.defs {
            if d == leaf.max_def {
                out.push(self.matches(&leaf.values.get(vi, &leaf.scalar_type)));
                vi += 1;
            } else {
                out.push(false);
            }
        }
        Ok(out)
    }
}

/// A conjunct bound to a leaf column by dotted path.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Dotted leaf path, e.g. `base.city_id`.
    pub leaf_path: String,
    /// The predicate.
    pub predicate: ScalarPredicate,
}

/// Conjunction of per-leaf predicates attached to a scan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilePredicate {
    /// All conjuncts must hold.
    pub conjuncts: Vec<ColumnPredicate>,
}

impl FilePredicate {
    /// A predicate with a single conjunct.
    pub fn single(leaf_path: impl Into<String>, predicate: ScalarPredicate) -> FilePredicate {
        FilePredicate {
            conjuncts: vec![ColumnPredicate { leaf_path: leaf_path.into(), predicate }],
        }
    }

    /// True when there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::DataType;

    fn stats(min: i64, max: i64, nulls: u64) -> ColumnStats {
        ColumnStats {
            min: Some(Value::Bigint(min)),
            max: Some(Value::Bigint(max)),
            null_count: nulls,
        }
    }

    #[test]
    fn row_level_matching() {
        let eq = ScalarPredicate::Eq(Value::Bigint(12));
        assert!(eq.matches(&Value::Bigint(12)));
        assert!(!eq.matches(&Value::Bigint(10)));
        assert!(!eq.matches(&Value::Null));

        let range = ScalarPredicate::Range { min: Some(Value::Bigint(5)), max: None };
        assert!(range.matches(&Value::Bigint(5)));
        assert!(!range.matches(&Value::Bigint(4)));

        let in_list =
            ScalarPredicate::In(vec![Value::Varchar("a".into()), Value::Varchar("b".into())]);
        assert!(in_list.matches(&Value::Varchar("b".into())));
        assert!(!in_list.matches(&Value::Varchar("c".into())));
    }

    #[test]
    fn stats_skipping_fig7_example() {
        // the paper's example: query wants city_id = 12, row group max is 10
        let pred = ScalarPredicate::Eq(Value::Bigint(12));
        assert!(!pred.maybe_matches_stats(&stats(1, 10, 0), 100));
        assert!(pred.maybe_matches_stats(&stats(1, 20, 0), 100));
    }

    #[test]
    fn range_stats_intersection() {
        let pred =
            ScalarPredicate::Range { min: Some(Value::Bigint(100)), max: Some(Value::Bigint(200)) };
        assert!(!pred.maybe_matches_stats(&stats(0, 99, 0), 10));
        assert!(!pred.maybe_matches_stats(&stats(201, 300, 0), 10));
        assert!(pred.maybe_matches_stats(&stats(150, 160, 0), 10));
        assert!(pred.maybe_matches_stats(&stats(0, 100, 0), 10));
    }

    #[test]
    fn all_null_chunks_never_match() {
        let pred = ScalarPredicate::Eq(Value::Bigint(1));
        let s = ColumnStats { min: None, max: None, null_count: 50 };
        assert!(!pred.maybe_matches_stats(&s, 50));
        // missing stats with some defined values → must read
        let s = ColumnStats { min: None, max: None, null_count: 10 };
        assert!(pred.maybe_matches_stats(&s, 50));
    }

    #[test]
    fn dictionary_skipping_fig8_example() {
        // dictionary holds {3, 5, 9, 14, 21}; query wants 12 → skip
        let dict = LeafValues::I64(vec![3, 5, 9, 14, 21]);
        let pred = ScalarPredicate::Eq(Value::Bigint(12));
        assert!(!pred.matches_any_in_dictionary(&dict, &DataType::Bigint));
        let pred = ScalarPredicate::Eq(Value::Bigint(14));
        assert!(pred.matches_any_in_dictionary(&dict, &DataType::Bigint));
    }
}
