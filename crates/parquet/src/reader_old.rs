//! The **legacy** open-source Parquet reader (§V.C, Fig 4).
//!
//! "The original reader conducts analysis in three steps: (1) reads all
//! Parquet data row by row using the open source Parquet library; (2)
//! transforms row-based records into columnar Presto blocks in-memory for
//! all nested columns; and (3) evaluates the predicate on these blocks,
//! executing the queries in our Presto engine."
//!
//! Faithfully reproduced inefficiencies:
//! - **no nested column pruning** — every leaf of a requested top-level
//!   column is read and decoded, even when the query touches one field of a
//!   50-field struct;
//! - **row-by-row assembly** — triplets become [`Value`] records first, and
//!   only then columnar blocks (the row→column transform of step 2);
//! - **no statistics or dictionary skipping** — every row group is read;
//! - **no lazy reads** — predicates are evaluated by the engine afterwards
//!   (step 3);
//! - **non-vectorized decoding** — triplet-at-a-time.

use presto_common::{Block, Page, PrestoError, Result, Schema, Value};

use crate::reader::{decode_chunk, read_metadata, ChunkSource};
use crate::schema::{adapt_value, resolve_schemas, ColumnResolution, FlatSchema};
use crate::shred::{assemble_column, LeafCursor, LeafData};

/// Observability counters for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LegacyReadStats {
    /// Row groups read (always all of them).
    pub row_groups_read: usize,
    /// Leaf chunks decoded.
    pub leaves_decoded: usize,
    /// Records materialized as [`Value`]s.
    pub records_assembled: usize,
}

/// Read `columns` (top-level names from `table_schema`) from a file,
/// producing one [`Page`] per row group.
pub fn read(
    source: &dyn ChunkSource,
    table_schema: &Schema,
    columns: &[String],
) -> Result<(Vec<Page>, LegacyReadStats)> {
    let meta = read_metadata(source)?;
    let file_flat = FlatSchema::new(meta.schema.clone())?;

    let projected_table =
        table_schema.project(&columns.iter().map(String::as_str).collect::<Vec<_>>())?;
    let resolutions = resolve_schemas(&projected_table, &meta.schema)?;

    let mut stats = LegacyReadStats::default();
    let mut pages = Vec::with_capacity(meta.row_groups.len());

    for rg in &meta.row_groups {
        stats.row_groups_read += 1;
        let rows = rg.num_rows as usize;
        let mut blocks = Vec::with_capacity(columns.len());

        for (slot, resolution) in resolutions.iter().enumerate() {
            let table_type = &projected_table.field_at(slot).data_type;
            match resolution {
                ColumnResolution::MissingReturnsNull => {
                    // §V.A: newly added fields read as NULL in old files.
                    blocks.push(Block::nulls(table_type, rows));
                }
                ColumnResolution::Present { file_column } => {
                    let root = &file_flat.roots[*file_column];
                    let file_type = &meta.schema.field_at(*file_column).data_type;

                    // Step 1: read ALL leaves of this top-level column —
                    // no pruning, triplet-at-a-time decode.
                    let mut leaf_data: Vec<LeafData> =
                        file_flat.leaves.iter().map(LeafData::new).collect();
                    for leaf_idx in root.leaf_indices() {
                        let chunk = rg
                            .columns
                            .iter()
                            .find(|c| c.leaf_index as usize == leaf_idx)
                            .ok_or_else(|| {
                            PrestoError::Format(format!(
                                "row group missing chunk for leaf {leaf_idx}"
                            ))
                        })?;
                        leaf_data[leaf_idx] = decode_chunk(
                            source,
                            chunk,
                            &file_flat.leaves[leaf_idx],
                            /* vectorized = */ false,
                        )?;
                        stats.leaves_decoded += 1;
                    }

                    // Step 1 (cont.): assemble row-based records.
                    let mut cursors: Vec<LeafCursor<'_>> =
                        leaf_data.iter().map(LeafCursor::new).collect();
                    let records = assemble_column(root, &mut cursors)?;
                    stats.records_assembled += records.len();

                    // Schema evolution shaping happens record-by-record too.
                    let adapted: Vec<Value> = if file_type == table_type {
                        records
                    } else {
                        records.iter().map(|v| adapt_value(v, file_type, table_type)).collect()
                    };

                    // Step 2: transform row-based records into columnar
                    // blocks.
                    blocks.push(Block::from_values(table_type, &adapted)?);
                }
            }
        }

        pages.push(if blocks.is_empty() { Page::zero_column(rows) } else { Page::new(blocks)? });
    }
    Ok((pages, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::BytesSource;
    use crate::writer::{FileWriter, WriterMode, WriterProperties};
    use presto_common::{DataType, Field};

    fn nested_schema() -> Schema {
        Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("driver_uuid", DataType::Varchar),
                    Field::new("city_id", DataType::Bigint),
                ]),
            ),
        ])
        .unwrap()
    }

    fn sample_file() -> Vec<u8> {
        let mut w = FileWriter::new(
            nested_schema(),
            WriterProperties { row_group_rows: 50, ..WriterProperties::default() },
            WriterMode::Native,
        )
        .unwrap();
        for chunk in [(0i64..50), (50i64..100)] {
            let rows: Vec<i64> = chunk.collect();
            let datestr = Block::varchar(
                &rows.iter().map(|i| format!("2017-03-{:02}", i % 28 + 1)).collect::<Vec<_>>(),
            );
            let base = Block::from_values(
                &nested_schema().field_at(1).data_type,
                &rows
                    .iter()
                    .map(|i| {
                        Value::Row(vec![
                            Value::Varchar(format!("driver-{i}")),
                            Value::Bigint(i % 13),
                        ])
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            w.write_page(&Page::new(vec![datestr, base]).unwrap()).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn reads_all_rows_in_all_groups() {
        let source = BytesSource::new(sample_file());
        let (pages, stats) =
            read(&source, &nested_schema(), &["datestr".into(), "base".into()]).unwrap();
        assert_eq!(pages.iter().map(Page::positions).sum::<usize>(), 100);
        assert_eq!(stats.row_groups_read, 2);
        // 3 leaves (datestr + 2 under base) per row group
        assert_eq!(stats.leaves_decoded, 6);
        assert_eq!(stats.records_assembled, 200); // both columns, all rows
        let first = pages[0].row(0);
        assert_eq!(first[0], Value::Varchar("2017-03-01".into()));
        assert_eq!(first[1], Value::Row(vec![Value::Varchar("driver-0".into()), Value::Bigint(0)]));
    }

    #[test]
    fn no_pruning_even_for_single_needed_field() {
        // The legacy reader cannot skip base.driver_uuid even though the
        // caller only wants base — it always reads the whole struct; pruning
        // to base.city_id alone is a new-reader capability.
        let source = BytesSource::new(sample_file());
        let (_, stats) = read(&source, &nested_schema(), &["base".into()]).unwrap();
        assert_eq!(stats.leaves_decoded, 4); // 2 leaves × 2 row groups
    }

    #[test]
    fn schema_evolution_added_column_reads_null() {
        let mut evolved_fields = nested_schema().fields().to_vec();
        evolved_fields.push(Field::new("new_col", DataType::Double));
        let evolved = Schema::new(evolved_fields).unwrap();
        let source = BytesSource::new(sample_file());
        let (pages, _) = read(&source, &evolved, &["new_col".into()]).unwrap();
        assert!(pages.iter().all(|p| (0..p.positions()).all(|i| p.row(i)[0].is_null())));
    }

    #[test]
    fn schema_evolution_added_struct_field_reads_null() {
        let evolved = Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("city_id", DataType::Bigint), // reordered
                    Field::new("surge", DataType::Double),   // added
                ]),
            ),
        ])
        .unwrap();
        let source = BytesSource::new(sample_file());
        let (pages, _) = read(&source, &evolved, &["base".into()]).unwrap();
        match &pages[0].row(0)[0] {
            Value::Row(fields) => {
                assert_eq!(fields[0], Value::Bigint(0)); // reordered, kept
                assert_eq!(fields[1], Value::Null); // added → NULL
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn schema_evolution_type_change_rejected() {
        let retyped = Schema::new(vec![
            Field::new("datestr", DataType::Bigint), // was varchar
            nested_schema().field_at(1).clone(),
        ])
        .unwrap();
        let source = BytesSource::new(sample_file());
        let err = read(&source, &retyped, &["datestr".into()]).unwrap_err();
        assert_eq!(err.code(), "SCHEMA_EVOLUTION_ERROR");
    }
}
