//! Queue-driven autoscaler with hysteresis (§IX elasticity, grounded in
//! the hybrid-cloud serving model of ephemeral workers behind a router).
//!
//! The signal is admission-queue depth: a deep queue means the fleet is
//! undersized for the offered load, an empty queue sustained over a window
//! means it is oversized. Decisions are evaluated as discrete events on the
//! virtual clock — callers invoke [`Autoscaler::evaluate`] (or
//! [`Autoscaler::evaluate_with_depth`] with an external queue signal) at
//! whatever cadence their simulation ticks — so every decision is a pure
//! function of `(config, the sequence of (virtual instant, depth) samples)`.
//!
//! Hysteresis, in both directions, keeps the fleet from flapping:
//!
//! - **Scale-out** when depth exceeds `high_water_depth` *continuously* for
//!   `scale_out_after` of virtual time: add `scale_out_step` workers of
//!   `worker_class`, capped at `max_workers`.
//! - **Scale-in** when depth sits at/below `low_water_depth` continuously
//!   for `scale_in_after` *and* the depth histogram since the last action
//!   agrees (p95 at/below the low-water mark): gracefully decommission the
//!   **coldest** active worker (fewest completed tasks, ties to the newest)
//!   via [`PrestoCluster::decommission_worker`], never below `min_workers`.
//! - A `cooldown` after either action lets the previous decision take
//!   effect before the signal is judged again.
//!
//! Every depth sample is also recorded into the cluster's
//! `cluster.autoscaler_queue_depth` histogram, and actions are counted as
//! `cluster.autoscaler_scale_outs` / `cluster.autoscaler_scale_ins` /
//! `cluster.autoscaler_workers_added`.
//!
//! With `busy_signal` enabled the autoscaler consults a **second signal**:
//! the fleet busy-fraction gauge the telemetry sampler maintains
//! (`telemetry.fleet_busy_now_pct`). A fleet running hot
//! (`busy >= busy_high_water_pct`) counts as pressure even while the queue
//! is shallow — short queries drain the queue between ticks yet saturate
//! the workers — and scale-in additionally requires the busy-fraction
//! window since the last action to be calm (p95 at/below
//! `busy_low_water_pct`), so a drained queue over a still-hot fleet never
//! shrinks it. With the flag off, decisions are bit-identical to the
//! queue-depth-only policy.

use std::cmp::Reverse;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use presto_common::metrics::{names, Histogram};

use crate::cluster::PrestoCluster;
use crate::worker::{WorkerLifecycle, DEFAULT_WORKER_CLASS};

/// Autoscaler policy knobs. All windows are virtual time.
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Never decommission below this many active workers.
    pub min_workers: usize,
    /// Never expand above this many active workers.
    pub max_workers: usize,
    /// Scale-out trigger: queue depth must *exceed* this.
    pub high_water_depth: usize,
    /// Scale-in trigger: queue depth must be at/below this.
    pub low_water_depth: usize,
    /// Depth must stay above high water continuously this long.
    pub scale_out_after: Duration,
    /// Depth must stay at/below low water continuously this long.
    pub scale_in_after: Duration,
    /// Workers added per scale-out action.
    pub scale_out_step: u32,
    /// Quiet period after any action before the signal is judged again.
    pub cooldown: Duration,
    /// Capacity class of workers the autoscaler adds.
    pub worker_class: String,
    /// Consult the fleet busy-fraction gauge as a second signal.
    pub busy_signal: bool,
    /// With `busy_signal`: fleet busy-fraction at/above this percentage
    /// counts as pressure even when the queue is shallow.
    pub busy_high_water_pct: u64,
    /// With `busy_signal`: scale-in additionally requires the busy-fraction
    /// window since the last action to sit at/below this (p95).
    pub busy_low_water_pct: u64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_workers: 2,
            max_workers: 32,
            high_water_depth: 8,
            low_water_depth: 0,
            scale_out_after: Duration::from_millis(5),
            scale_in_after: Duration::from_millis(20),
            scale_out_step: 2,
            cooldown: Duration::from_millis(10),
            worker_class: DEFAULT_WORKER_CLASS.to_string(),
            busy_signal: false,
            busy_high_water_pct: 80,
            busy_low_water_pct: 20,
        }
    }
}

/// What one evaluation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No action this tick.
    Hold,
    /// Added this many workers.
    Out {
        /// Workers added.
        added: u32,
    },
    /// Began gracefully decommissioning this worker.
    In {
        /// The worker now draining.
        worker_id: u32,
    },
}

/// Hysteresis state between evaluations.
struct AutoState {
    /// Since when has depth been continuously above high water?
    above_since: Option<Duration>,
    /// Since when has depth been continuously at/below low water?
    below_since: Option<Duration>,
    /// Virtual instant of the last scale action (cooldown anchor).
    last_action: Option<Duration>,
    /// Depth samples since the last action — the scale-in confidence
    /// check consults its p95 so one quiet sample can't shrink the fleet.
    window: Histogram,
    /// Fleet busy-fraction samples since the last action (`busy_signal`
    /// only): scale-in also requires this window's p95 to be calm.
    busy_window: Histogram,
}

/// The queue-driven autoscaler. Cheap to share; all state is internal.
pub struct Autoscaler {
    cluster: Arc<PrestoCluster>,
    config: AutoscalerConfig,
    state: Mutex<AutoState>,
}

impl Autoscaler {
    /// An autoscaler managing `cluster` under `config`.
    pub fn new(cluster: Arc<PrestoCluster>, config: AutoscalerConfig) -> Autoscaler {
        Autoscaler {
            cluster,
            config,
            state: Mutex::new(AutoState {
                above_since: None,
                below_since: None,
                last_action: None,
                window: Histogram::new(),
                busy_window: Histogram::new(),
            }),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Evaluate against the cluster's own admission queue depth.
    pub fn evaluate(&self) -> ScaleDecision {
        let depth = self.cluster.engine().resources().admission().queued();
        self.evaluate_with_depth(depth)
    }

    /// Evaluate one discrete tick with an externally supplied queue-depth
    /// signal (a workload simulator's dispatch queue, say). Pure in the
    /// sample sequence: the same `(virtual instant, depth)` ticks always
    /// produce the same decisions.
    pub fn evaluate_with_depth(&self, depth: usize) -> ScaleDecision {
        let cfg = &self.config;
        let now = self.cluster.clock().now();
        self.cluster.histograms().record(names::HIST_CLUSTER_QUEUE_DEPTH, depth as u64);
        let busy = self.cluster.telemetry().gauge(names::GAUGE_FLEET_BUSY_PCT);
        if cfg.busy_signal {
            self.cluster.histograms().record(names::HIST_CLUSTER_BUSY_PCT, busy);
        }
        let hot = cfg.busy_signal && busy >= cfg.busy_high_water_pct;
        let active = self
            .cluster
            .workers()
            .iter()
            .filter(|w| w.lifecycle() == WorkerLifecycle::Active)
            .count();

        let decision = {
            let mut st = self.state.lock();
            st.window.record(depth as u64);
            st.busy_window.record(busy);
            let cooling = st.last_action.is_some_and(|t| now.saturating_sub(t) < cfg.cooldown);
            if depth > cfg.high_water_depth || hot {
                st.below_since = None;
                let since = *st.above_since.get_or_insert(now);
                if !cooling
                    && now.saturating_sub(since) >= cfg.scale_out_after
                    && active < cfg.max_workers
                {
                    let added = cfg.scale_out_step.max(1).min((cfg.max_workers - active) as u32);
                    st.above_since = None;
                    st.last_action = Some(now);
                    st.window = Histogram::new();
                    st.busy_window = Histogram::new();
                    ScaleDecision::Out { added }
                } else {
                    ScaleDecision::Hold
                }
            } else if depth <= cfg.low_water_depth {
                st.above_since = None;
                let since = *st.below_since.get_or_insert(now);
                let sustained = now.saturating_sub(since) >= cfg.scale_in_after;
                let calm = st.window.quantile(0.95) <= cfg.low_water_depth as u64
                    && (!cfg.busy_signal
                        || st.busy_window.quantile(0.95) <= cfg.busy_low_water_pct);
                if !cooling && sustained && calm && active > cfg.min_workers {
                    match self.coldest_active_worker() {
                        Some(worker_id) => {
                            st.below_since = None;
                            st.last_action = Some(now);
                            st.window = Histogram::new();
                            st.busy_window = Histogram::new();
                            ScaleDecision::In { worker_id }
                        }
                        None => ScaleDecision::Hold,
                    }
                } else {
                    ScaleDecision::Hold
                }
            } else {
                // between the water marks: both streaks reset
                st.above_since = None;
                st.below_since = None;
                ScaleDecision::Hold
            }
        };

        match decision {
            ScaleDecision::Out { added } => {
                self.cluster.expand_class(added, &cfg.worker_class);
                self.cluster.metrics().incr(names::CLUSTER_SCALE_OUTS);
                self.cluster.metrics().add(names::CLUSTER_SCALE_OUT_WORKERS, u64::from(added));
            }
            ScaleDecision::In { worker_id } => {
                // errors only for an unknown id, and the id was just read
                // from the live fleet — a concurrent reap is benign
                let _ = self.cluster.decommission_worker(worker_id);
                self.cluster.metrics().incr(names::CLUSTER_SCALE_INS);
            }
            ScaleDecision::Hold => {}
        }
        decision
    }

    /// The coldest active worker: fewest completed tasks, ties broken
    /// toward the newest (highest id) so long-lived cache-warm workers
    /// survive a tie.
    fn coldest_active_worker(&self) -> Option<u32> {
        self.cluster
            .workers()
            .iter()
            .filter(|w| w.lifecycle() == WorkerLifecycle::Active)
            .min_by_key(|w| (w.completed_tasks(), Reverse(w.id)))
            .map(|w| w.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use presto_common::SimClock;
    use presto_core::PrestoEngine;

    fn harness(initial_workers: u32, config: AutoscalerConfig) -> (Arc<PrestoCluster>, Autoscaler) {
        let cluster = PrestoCluster::new(
            "auto",
            PrestoEngine::new(),
            ClusterConfig {
                initial_workers,
                grace_period: Duration::from_millis(1),
                ..ClusterConfig::default()
            },
            SimClock::new(),
        );
        let scaler = Autoscaler::new(cluster.clone(), config);
        (cluster, scaler)
    }

    fn active(cluster: &PrestoCluster) -> usize {
        cluster.workers().iter().filter(|w| w.lifecycle() == WorkerLifecycle::Active).count()
    }

    #[test]
    fn scale_out_requires_a_sustained_breach() {
        let cfg = AutoscalerConfig {
            high_water_depth: 4,
            scale_out_after: Duration::from_millis(2),
            scale_out_step: 2,
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(4, cfg);
        // one spike is not enough
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Hold);
        // a dip resets the streak
        cluster.clock().advance(Duration::from_millis(1));
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(1));
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(1));
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Hold, "only 1ms above");
        cluster.clock().advance(Duration::from_millis(1));
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Out { added: 2 });
        assert_eq!(active(&cluster), 6);
        assert_eq!(cluster.metrics().get("cluster.autoscaler_scale_outs"), 1);
        assert_eq!(cluster.metrics().get("cluster.autoscaler_workers_added"), 2);
    }

    #[test]
    fn scale_out_respects_the_max_bound() {
        let cfg = AutoscalerConfig {
            max_workers: 5,
            high_water_depth: 1,
            scale_out_after: Duration::ZERO,
            scale_out_step: 8,
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(4, cfg);
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Out { added: 1 });
        assert_eq!(active(&cluster), 5);
        // at the cap: no further growth no matter the depth
        cluster.clock().advance(Duration::from_millis(5));
        assert_eq!(scaler.evaluate_with_depth(100), ScaleDecision::Hold);
    }

    #[test]
    fn scale_in_decommissions_the_coldest_worker_gracefully() {
        let cfg = AutoscalerConfig {
            min_workers: 2,
            low_water_depth: 0,
            scale_in_after: Duration::from_millis(3),
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(3, cfg);
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(3));
        // all workers are equally cold (0 tasks): the newest (highest id) goes
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::In { worker_id: 2 });
        assert_eq!(active(&cluster), 2);
        let victim = cluster.workers().into_iter().find(|w| w.id == 2).unwrap();
        assert_eq!(victim.lifecycle(), WorkerLifecycle::Draining);
        assert_eq!(cluster.metrics().get("cluster.autoscaler_scale_ins"), 1);
        // at the floor: no further shrink
        cluster.clock().advance(Duration::from_millis(10));
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        assert_eq!(active(&cluster), 2);
    }

    #[test]
    fn one_busy_sample_in_the_window_blocks_scale_in() {
        let cfg = AutoscalerConfig {
            min_workers: 1,
            low_water_depth: 0,
            high_water_depth: 100,
            scale_in_after: Duration::from_millis(2),
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(3, cfg);
        // a burst lands in the window, then the queue drains
        assert_eq!(scaler.evaluate_with_depth(50), ScaleDecision::Hold);
        for _ in 0..3 {
            cluster.clock().advance(Duration::from_millis(1));
            assert_eq!(
                scaler.evaluate_with_depth(0),
                ScaleDecision::Hold,
                "p95 of the window still remembers the burst"
            );
        }
        // enough quiet samples dilute the burst below p95 eventually
        for _ in 0..80 {
            cluster.clock().advance(Duration::from_millis(1));
            if scaler.evaluate_with_depth(0) != ScaleDecision::Hold {
                return;
            }
        }
        panic!("sustained quiet must eventually scale in");
    }

    #[test]
    fn cooldown_separates_consecutive_actions() {
        let cfg = AutoscalerConfig {
            high_water_depth: 1,
            scale_out_after: Duration::ZERO,
            scale_out_step: 1,
            max_workers: 16,
            cooldown: Duration::from_millis(5),
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(2, cfg);
        assert!(matches!(scaler.evaluate_with_depth(10), ScaleDecision::Out { .. }));
        cluster.clock().advance(Duration::from_millis(1));
        assert_eq!(scaler.evaluate_with_depth(10), ScaleDecision::Hold, "cooling down");
        cluster.clock().advance(Duration::from_millis(5));
        assert!(matches!(scaler.evaluate_with_depth(10), ScaleDecision::Out { .. }));
    }

    #[test]
    fn hot_fleet_scales_out_even_with_a_shallow_queue() {
        let cfg = AutoscalerConfig {
            busy_signal: true,
            busy_high_water_pct: 80,
            high_water_depth: 8,
            scale_out_after: Duration::from_millis(2),
            scale_out_step: 1,
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(4, cfg.clone());
        // every worker pegged: busy-fraction pressure with an empty queue
        cluster.telemetry().set_gauge(names::GAUGE_FLEET_BUSY_PCT, 97);
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold, "not sustained yet");
        cluster.clock().advance(Duration::from_millis(2));
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Out { added: 1 });
        assert_eq!(active(&cluster), 5);
        assert!(cluster.histograms().get(names::HIST_CLUSTER_BUSY_PCT).count() >= 2);

        // the queue-depth-only counterfactual holds on the same samples
        let (cluster, scaler) = harness(4, AutoscalerConfig { busy_signal: false, ..cfg });
        cluster.telemetry().set_gauge(names::GAUGE_FLEET_BUSY_PCT, 97);
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(2));
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        assert_eq!(active(&cluster), 4);
    }

    #[test]
    fn warm_fleet_blocks_scale_in_that_queue_depth_alone_would_take() {
        let cfg = AutoscalerConfig {
            busy_signal: true,
            busy_low_water_pct: 20,
            min_workers: 2,
            low_water_depth: 0,
            scale_in_after: Duration::from_millis(3),
            cooldown: Duration::ZERO,
            ..AutoscalerConfig::default()
        };
        let (cluster, scaler) = harness(3, cfg.clone());
        // queue drained but the fleet is still half busy: no shrink
        cluster.telemetry().set_gauge(names::GAUGE_FLEET_BUSY_PCT, 55);
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(4));
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold, "busy window is warm");
        assert_eq!(active(&cluster), 3);

        // queue-depth-only counterfactual shrinks on the same samples
        let (cluster, scaler) = harness(3, AutoscalerConfig { busy_signal: false, ..cfg });
        cluster.telemetry().set_gauge(names::GAUGE_FLEET_BUSY_PCT, 55);
        assert_eq!(scaler.evaluate_with_depth(0), ScaleDecision::Hold);
        cluster.clock().advance(Duration::from_millis(4));
        assert!(matches!(scaler.evaluate_with_depth(0), ScaleDecision::In { .. }));
    }

    #[test]
    fn same_sample_sequence_same_decisions() {
        let samples: Vec<(u64, usize)> =
            vec![(0, 10), (1, 10), (2, 10), (3, 0), (4, 0), (10, 0), (25, 0), (40, 0)];
        let run = || -> Vec<ScaleDecision> {
            let (cluster, scaler) = harness(4, AutoscalerConfig::default());
            let mut out = Vec::new();
            let mut last = 0u64;
            for &(at_ms, depth) in &samples {
                cluster.clock().advance(Duration::from_millis(at_ms - last));
                last = at_ms;
                out.push(scaler.evaluate_with_depth(depth));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
