#![warn(missing_docs)]

//! The simulated distributed runtime: clusters of workers, elasticity, and
//! the federation gateway.
//!
//! - [`worker::Worker`] — a worker node with the §IX graceful-shutdown state
//!   machine (`ACTIVE → SHUTTING_DOWN → (drain + 2× grace period) →
//!   TERMINATED`);
//! - [`cluster::PrestoCluster`] — one coordinator + N workers; distributed
//!   query execution parallelizes leaf-fragment splits across active
//!   workers on real threads; supports graceful expansion ("simply add more
//!   workers ... automatically added to the existing cluster") and shrink;
//! - [`gateway::PrestoGateway`] — the §VIII federation gateway: HTTP-redirect
//!   semantics, user/group → cluster routing stored in the MySQL simulator,
//!   dynamic re-routing for zero-downtime maintenance.

pub mod autoscaler;
pub mod cluster;
pub mod gateway;
pub mod worker;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision};
pub use cluster::{ClusterConfig, PrestoCluster, SpeculationConfig};
pub use gateway::{PrestoGateway, Redirect};
pub use worker::{Worker, WorkerHealth, WorkerLifecycle, WorkerState};
