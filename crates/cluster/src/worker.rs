//! Worker nodes, the graceful-shutdown state machine (§IX), and the
//! *impolite* failure modes the fleet must survive (§XII).
//!
//! "Upon receiving the command, presto worker will enter SHUTTING_DOWN
//! state: sleep for shutdown.grace-period, which defaults to 2 minutes.
//! After this, the coordinator is aware of the shutdown and stops sending
//! tasks to the worker. The worker will block until all active tasks are
//! complete. The worker will sleep for the grace period again in order to
//! ensure the coordinator sees all tasks are complete. Finally, the presto
//! worker will shut down."
//!
//! Unlike the polite drain, [`Worker::crash`] models abrupt node loss: no
//! grace period, in-flight tasks are gone, and `begin_task` surfaces
//! [`PrestoError::WorkerFailed`] so the coordinator can reassign the lost
//! splits. A flaky-but-alive host is quarantined through the
//! consecutive-failure blacklist ([`Worker::record_task_failure`]), and
//! re-admitted through a **probation** half-open state: after the
//! quarantine window the worker may serve only low-priority splits for a
//! probation window; one more failure there re-quarantines it immediately,
//! while surviving the window restores full health.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use presto_common::{PrestoError, Result, SimClock};
use presto_resource::QueryPriority;

/// Default `shutdown.grace-period` (the paper's 2 minutes).
pub const DEFAULT_GRACE_PERIOD: Duration = Duration::from_secs(120);

/// Default quarantine window after the blacklist trips.
pub const DEFAULT_QUARANTINE_PERIOD: Duration = Duration::from_secs(300);

/// Default probation (half-open) window after quarantine expires.
pub const DEFAULT_PROBATION_WINDOW: Duration = Duration::from_secs(60);

/// Default worker class — stable on-demand capacity, never revoked.
pub const DEFAULT_WORKER_CLASS: &str = "ondemand";

/// The coarse elastic lifecycle, the view the autoscaler and the
/// decommission machinery reason about. It collapses the fine-grained §IX
/// shutdown phases: `Active → Draining → Decommissioned` is the polite
/// path, `Revoked` is abrupt loss (crash or spot revocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerLifecycle {
    /// In the fleet, eligible for new splits.
    Active,
    /// Leaving politely: accepts no new splits, finishes or hands off its
    /// queued work (any `ShuttingDown*` state).
    Draining,
    /// Left the fleet as a planned departure.
    Decommissioned,
    /// Lost abruptly — crash or spot revocation. In-flight work is gone;
    /// rejoining the fleet goes through probation, never straight to
    /// full health.
    Revoked,
}

/// Blacklist circuit-breaker health, orthogonal to [`WorkerState`] (a
/// quarantined worker still reports `Active` — it is alive, just untrusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Fully trusted.
    Healthy,
    /// Blacklisted: accepts nothing until `until` (virtual time).
    Quarantined {
        /// Virtual time the quarantine lifts into probation.
        until: Duration,
    },
    /// Half-open: serves only low-priority splits until `until`; a single
    /// failure here re-quarantines, surviving the window restores health.
    Probation {
        /// Virtual time full health returns.
        until: Duration,
    },
}

/// Worker lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Accepting tasks.
    Active,
    /// Draining: sleeping the first grace period (coordinator may not have
    /// noticed yet).
    ShuttingDownGrace1,
    /// Draining: grace elapsed, waiting for active tasks to finish.
    ShuttingDownDraining,
    /// Tasks done: sleeping the second grace period so the coordinator sees
    /// completion.
    ShuttingDownGrace2,
    /// Gone.
    Terminated,
    /// Abrupt death (kernel panic, OOM-kill, injected fault): no grace
    /// period, in-flight tasks lost. A crashed worker stays visible to the
    /// operator (unlike [`WorkerState::Terminated`], it is never reaped as
    /// a *planned* departure) but accepts no tasks.
    Crashed,
}

struct WorkerInner {
    state: WorkerState,
    /// Virtual time the current shutdown phase started.
    phase_started: Duration,
}

/// One worker node.
pub struct Worker {
    /// Worker id within its cluster.
    pub id: u32,
    inner: Mutex<WorkerInner>,
    active_tasks: AtomicUsize,
    completed_tasks: AtomicUsize,
    /// Cumulative virtual µs this worker spent running tasks — the raw
    /// series behind the telemetry busy-fraction samples (each snapshot
    /// takes the delta since the previous one).
    busy_us: AtomicU64,
    /// Bytes of worker memory currently reserved by in-flight work — the
    /// per-worker [`MemoryPool`] headroom signal the affinity placement
    /// score folds in. Reservations are estimates made by the scheduler,
    /// not enforcement (the cluster-wide pool enforces).
    ///
    /// [`MemoryPool`]: presto_resource::MemoryPool
    memory_reserved: AtomicU64,
    consecutive_failures: AtomicU32,
    health: Mutex<WorkerHealth>,
    clock: SimClock,
    grace_period: Duration,
    quarantine_period: Duration,
    probation_window: Duration,
    /// Capacity class (e.g. `"ondemand"`, `"spot"`) — the unit a
    /// revocation storm targets.
    class: String,
}

impl Worker {
    /// New active worker on a shared virtual clock.
    pub fn new(id: u32, clock: SimClock, grace_period: Duration) -> Arc<Worker> {
        Worker::with_health_windows(
            id,
            clock,
            grace_period,
            DEFAULT_QUARANTINE_PERIOD,
            DEFAULT_PROBATION_WINDOW,
        )
    }

    /// New active worker with explicit blacklist quarantine/probation windows.
    pub fn with_health_windows(
        id: u32,
        clock: SimClock,
        grace_period: Duration,
        quarantine_period: Duration,
        probation_window: Duration,
    ) -> Arc<Worker> {
        Worker::with_class(
            id,
            clock,
            grace_period,
            quarantine_period,
            probation_window,
            DEFAULT_WORKER_CLASS,
        )
    }

    /// New active worker of an explicit capacity class.
    pub fn with_class(
        id: u32,
        clock: SimClock,
        grace_period: Duration,
        quarantine_period: Duration,
        probation_window: Duration,
        class: &str,
    ) -> Arc<Worker> {
        Arc::new(Worker {
            id,
            inner: Mutex::new(WorkerInner {
                state: WorkerState::Active,
                phase_started: clock.now(),
            }),
            active_tasks: AtomicUsize::new(0),
            completed_tasks: AtomicUsize::new(0),
            busy_us: AtomicU64::new(0),
            memory_reserved: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            health: Mutex::new(WorkerHealth::Healthy),
            clock,
            grace_period,
            quarantine_period,
            probation_window,
            class: class.to_string(),
        })
    }

    /// Current state.
    pub fn state(&self) -> WorkerState {
        self.inner.lock().state
    }

    /// The coarse elastic lifecycle view of [`Worker::state`].
    pub fn lifecycle(&self) -> WorkerLifecycle {
        match self.state() {
            WorkerState::Active => WorkerLifecycle::Active,
            WorkerState::ShuttingDownGrace1
            | WorkerState::ShuttingDownDraining
            | WorkerState::ShuttingDownGrace2 => WorkerLifecycle::Draining,
            WorkerState::Terminated => WorkerLifecycle::Decommissioned,
            WorkerState::Crashed => WorkerLifecycle::Revoked,
        }
    }

    /// Capacity class (e.g. `"ondemand"`, `"spot"`).
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Tasks currently running.
    pub fn active_tasks(&self) -> usize {
        self.active_tasks.load(Ordering::Relaxed)
    }

    /// Tasks completed over the worker's lifetime.
    pub fn completed_tasks(&self) -> usize {
        self.completed_tasks.load(Ordering::Relaxed)
    }

    /// Account `us` virtual µs of task runtime to this worker.
    pub fn add_busy_micros(&self, us: u64) {
        self.busy_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Cumulative virtual µs spent running tasks.
    pub fn busy_micros(&self) -> u64 {
        self.busy_us.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` of this worker's memory (scheduler estimate).
    pub fn reserve_memory(&self, bytes: u64) {
        self.memory_reserved.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release a prior [`Worker::reserve_memory`] reservation.
    pub fn release_memory(&self, bytes: u64) {
        // saturate rather than wrap if a release ever races a reset
        let _ = self.memory_reserved.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }

    /// Bytes currently reserved on this worker.
    pub fn memory_reserved(&self) -> u64 {
        self.memory_reserved.load(Ordering::Relaxed)
    }

    /// Headroom under a per-worker budget: `budget - reserved`, floored at
    /// zero. The affinity scheduler skips owners whose headroom cannot fit
    /// the next split, walking the ring to a successor instead — hot
    /// workers stop becoming OOM-arbiter hotspots.
    pub fn memory_headroom(&self, budget: u64) -> u64 {
        budget.saturating_sub(self.memory_reserved())
    }

    /// Can the scheduler assign new tasks here? Only ACTIVE workers accept
    /// ("the coordinator ... stops sending tasks to the worker"), and a
    /// blacklisted worker is quarantined even while it reports ACTIVE.
    /// Equivalent to [`Worker::accepts_tasks_for`] at normal priority.
    pub fn accepts_tasks(&self) -> bool {
        self.accepts_tasks_for(QueryPriority::Normal)
    }

    /// Priority-aware acceptance: a worker on probation is half-open and
    /// serves only [`QueryPriority::Low`] splits, so a still-sick node can
    /// never absorb a hot query's work on re-admission.
    pub fn accepts_tasks_for(&self, priority: QueryPriority) -> bool {
        if self.state() != WorkerState::Active {
            return false;
        }
        match self.health() {
            WorkerHealth::Healthy => true,
            WorkerHealth::Quarantined { .. } => false,
            WorkerHealth::Probation { .. } => priority == QueryPriority::Low,
        }
    }

    /// Abrupt node death: the state machine jumps straight to
    /// [`WorkerState::Crashed`] with no grace period. In-flight tasks are
    /// lost — their results must not be trusted, and new `begin_task`
    /// calls surface [`PrestoError::WorkerFailed`].
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        if inner.state != WorkerState::Terminated {
            inner.state = WorkerState::Crashed;
            inner.phase_started = self.clock.now();
        }
    }

    /// Consecutive-failure bookkeeping for the blacklist: one more task on
    /// this worker failed. Crossing `blacklist_after` consecutive failures
    /// (0 = never) quarantines the worker, and *any* failure while on
    /// probation re-quarantines it immediately (the half-open circuit
    /// re-opens on the first sign of sickness). Returns `true` exactly when
    /// this call newly quarantined it, so the caller can count the event.
    pub fn record_task_failure(&self, blacklist_after: u32) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if blacklist_after == 0 {
            return false;
        }
        match self.health() {
            WorkerHealth::Probation { .. } => {
                self.quarantine();
                true
            }
            WorkerHealth::Healthy if failures >= blacklist_after => {
                self.quarantine();
                true
            }
            _ => false,
        }
    }

    fn quarantine(&self) {
        *self.health.lock() =
            WorkerHealth::Quarantined { until: self.clock.now() + self.quarantine_period };
    }

    /// A task completed successfully: the failure streak resets (the
    /// blacklist targets *consecutive* failures, not a lifetime tally).
    pub fn record_task_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
    }

    /// Consecutive task failures so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// Is the worker quarantined by the consecutive-failure blacklist?
    /// A worker on probation is *not* blacklisted — it is half-open.
    pub fn is_blacklisted(&self) -> bool {
        matches!(self.health(), WorkerHealth::Quarantined { .. })
    }

    /// Current blacklist health, lazily promoted against the virtual clock:
    /// an expired quarantine becomes probation, an expired probation becomes
    /// full health. Promotion is lazy because nothing else in the simulation
    /// runs between events — the state is whatever the clock says it is.
    pub fn health(&self) -> WorkerHealth {
        let mut health = self.health.lock();
        loop {
            let now = self.clock.now();
            let next = match *health {
                WorkerHealth::Quarantined { until } if now >= until => {
                    WorkerHealth::Probation { until: until + self.probation_window }
                }
                WorkerHealth::Probation { until } if now >= until => WorkerHealth::Healthy,
                stable => return stable,
            };
            *health = next;
        }
    }

    /// Begin a task. Errors if the worker is not accepting.
    pub fn begin_task(&self) -> Result<TaskGuard<'_>> {
        // The task count must rise while the state lock is held: otherwise a
        // concurrent tick() between the state check and the increment could
        // see zero active tasks and advance Draining → Grace2 with a task
        // about to run.
        let inner = self.inner.lock();
        // During the first grace period the coordinator may not know yet;
        // tasks assigned in that window are still accepted and drained —
        // that is the point of the grace period.
        match inner.state {
            WorkerState::Active | WorkerState::ShuttingDownGrace1 => {}
            WorkerState::Crashed => {
                // infrastructure fault — retryable, unlike the polite
                // refusals below which the scheduler should never hit
                return Err(PrestoError::WorkerFailed {
                    worker_id: self.id,
                    message: format!("worker {} crashed", self.id),
                });
            }
            other => {
                return Err(PrestoError::Execution(format!(
                    "worker {} is {:?}, cannot accept tasks",
                    self.id, other
                )))
            }
        }
        self.active_tasks.fetch_add(1, Ordering::SeqCst);
        drop(inner);
        Ok(TaskGuard { worker: self })
    }

    /// A revoked (crashed) worker comes back — the spot instance was
    /// re-granted or the host rebooted. It re-enters the fleet **on
    /// probation**, never at full health: in-flight work was lost when it
    /// died, so it serves only low-priority splits for the probation window
    /// and one failure there re-quarantines it. No-op unless the worker is
    /// currently [`WorkerState::Crashed`].
    pub fn rejoin(&self) {
        {
            let mut inner = self.inner.lock();
            if inner.state != WorkerState::Crashed {
                return;
            }
            inner.state = WorkerState::Active;
            inner.phase_started = self.clock.now();
        }
        self.consecutive_failures.store(0, Ordering::SeqCst);
        *self.health.lock() =
            WorkerHealth::Probation { until: self.clock.now() + self.probation_window };
    }

    /// Administrator command: begin graceful shutdown.
    pub fn request_shutdown(&self) {
        let mut inner = self.inner.lock();
        if inner.state == WorkerState::Active {
            inner.state = WorkerState::ShuttingDownGrace1;
            inner.phase_started = self.clock.now();
        }
    }

    /// Advance the shutdown state machine against the virtual clock.
    /// Transitions cascade within one tick when their conditions already
    /// hold (e.g. grace 1 elapsed *and* no tasks → straight to grace 2).
    /// Returns the (possibly new) state.
    pub fn tick(&self) -> WorkerState {
        let mut inner = self.inner.lock();
        loop {
            let now = self.clock.now();
            let elapsed = now.saturating_sub(inner.phase_started);
            let next = match inner.state {
                WorkerState::ShuttingDownGrace1 if elapsed >= self.grace_period => {
                    WorkerState::ShuttingDownDraining
                }
                WorkerState::ShuttingDownDraining
                    if self.active_tasks.load(Ordering::SeqCst) == 0 =>
                {
                    WorkerState::ShuttingDownGrace2
                }
                WorkerState::ShuttingDownGrace2 if elapsed >= self.grace_period => {
                    WorkerState::Terminated
                }
                stable => return stable,
            };
            inner.state = next;
            inner.phase_started = now;
        }
    }
}

/// RAII guard for a running task.
pub struct TaskGuard<'a> {
    worker: &'a Worker,
}

impl std::fmt::Debug for TaskGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGuard").field("worker", &self.worker.id).finish()
    }
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        self.worker.active_tasks.fetch_sub(1, Ordering::SeqCst);
        self.worker.completed_tasks.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_walks_every_state() {
        let clock = SimClock::new();
        let grace = Duration::from_secs(120);
        let worker = Worker::new(1, clock.clone(), grace);
        assert_eq!(worker.state(), WorkerState::Active);
        assert!(worker.accepts_tasks());

        // a task is running when shutdown is requested
        let task = worker.begin_task().unwrap();
        worker.request_shutdown();
        assert_eq!(worker.state(), WorkerState::ShuttingDownGrace1);
        assert!(!worker.accepts_tasks());

        // the first grace period must fully elapse
        clock.advance(grace / 2);
        assert_eq!(worker.tick(), WorkerState::ShuttingDownGrace1);
        clock.advance(grace / 2);
        assert_eq!(worker.tick(), WorkerState::ShuttingDownDraining);

        // cannot terminate while the task runs
        clock.advance(grace * 10);
        assert_eq!(worker.tick(), WorkerState::ShuttingDownDraining);
        drop(task);
        assert_eq!(worker.tick(), WorkerState::ShuttingDownGrace2);

        // second grace period
        assert_eq!(worker.tick(), WorkerState::ShuttingDownGrace2);
        clock.advance(grace);
        assert_eq!(worker.tick(), WorkerState::Terminated);
        assert_eq!(worker.completed_tasks(), 1);
        assert_eq!(worker.active_tasks(), 0);
    }

    #[test]
    fn grace1_still_accepts_straggler_tasks() {
        // §IX: during the first grace period the coordinator may not yet
        // know about the shutdown; tasks it sends must still be served.
        let clock = SimClock::new();
        let worker = Worker::new(1, clock.clone(), Duration::from_secs(10));
        worker.request_shutdown();
        let task = worker.begin_task().unwrap();
        drop(task);
        clock.advance(Duration::from_secs(10));
        worker.tick();
        // after grace 1, new tasks are refused
        assert!(worker.begin_task().is_err());
    }

    #[test]
    fn crash_skips_every_grace_period() {
        let clock = SimClock::new();
        let worker = Worker::new(5, clock.clone(), Duration::from_secs(120));
        let _task = worker.begin_task().unwrap();
        worker.crash();
        assert_eq!(worker.state(), WorkerState::Crashed);
        assert!(!worker.accepts_tasks());
        // no amount of ticking resurrects or terminates a crashed worker
        clock.advance(Duration::from_secs(600));
        assert_eq!(worker.tick(), WorkerState::Crashed);
        // new tasks surface the retryable infrastructure error
        let err = worker.begin_task().unwrap_err();
        assert_eq!(err.code(), "WORKER_FAILED");
        assert!(err.is_retryable());
    }

    #[test]
    fn lifecycle_collapses_the_shutdown_phases() {
        let clock = SimClock::new();
        let grace = Duration::from_secs(10);
        let worker = Worker::new(1, clock.clone(), grace);
        assert_eq!(worker.lifecycle(), WorkerLifecycle::Active);
        assert_eq!(worker.class(), DEFAULT_WORKER_CLASS);
        worker.request_shutdown();
        assert_eq!(worker.lifecycle(), WorkerLifecycle::Draining);
        clock.advance(grace);
        worker.tick();
        assert_eq!(worker.lifecycle(), WorkerLifecycle::Draining); // grace 2
        clock.advance(grace);
        worker.tick();
        assert_eq!(worker.lifecycle(), WorkerLifecycle::Decommissioned);

        let lost = Worker::with_class(
            2,
            clock,
            grace,
            Duration::from_secs(300),
            Duration::from_secs(60),
            "spot",
        );
        assert_eq!(lost.class(), "spot");
        lost.crash();
        assert_eq!(lost.lifecycle(), WorkerLifecycle::Revoked);
    }

    #[test]
    fn rejoin_enters_probation_not_full_health() {
        let clock = SimClock::new();
        let worker = Worker::with_health_windows(
            3,
            clock.clone(),
            Duration::from_secs(1),
            Duration::from_secs(300),
            Duration::from_secs(60),
        );
        worker.crash();
        assert_eq!(worker.lifecycle(), WorkerLifecycle::Revoked);
        worker.rejoin();
        assert_eq!(worker.state(), WorkerState::Active);
        assert!(matches!(worker.health(), WorkerHealth::Probation { .. }));
        // half-open: low-priority work only
        assert!(!worker.accepts_tasks());
        assert!(worker.accepts_tasks_for(QueryPriority::Low));
        // surviving the window restores full health
        clock.advance(Duration::from_secs(60));
        assert_eq!(worker.health(), WorkerHealth::Healthy);
        assert!(worker.accepts_tasks());
    }

    #[test]
    fn rejoin_is_a_noop_for_live_or_terminated_workers() {
        let clock = SimClock::new();
        let worker = Worker::new(4, clock.clone(), Duration::from_secs(1));
        worker.rejoin();
        assert_eq!(worker.health(), WorkerHealth::Healthy, "live worker untouched");
        worker.request_shutdown();
        clock.advance(Duration::from_secs(2));
        worker.tick();
        clock.advance(Duration::from_secs(2));
        worker.tick();
        assert_eq!(worker.state(), WorkerState::Terminated);
        worker.rejoin();
        assert_eq!(worker.state(), WorkerState::Terminated, "planned departures stay gone");
    }

    #[test]
    fn blacklist_trips_on_consecutive_failures_only() {
        let worker = Worker::new(2, SimClock::new(), Duration::from_secs(1));
        assert!(!worker.record_task_failure(3));
        assert!(!worker.record_task_failure(3));
        worker.record_task_success(); // streak broken
        assert!(!worker.record_task_failure(3));
        assert!(!worker.record_task_failure(3));
        assert!(!worker.is_blacklisted());
        assert!(worker.record_task_failure(3), "third consecutive failure trips");
        assert!(worker.is_blacklisted());
        assert!(!worker.accepts_tasks());
        // the event fires once, even if failures keep coming
        assert!(!worker.record_task_failure(3));
    }

    #[test]
    fn blacklist_disabled_with_zero_threshold() {
        let worker = Worker::new(2, SimClock::new(), Duration::from_secs(1));
        for _ in 0..50 {
            assert!(!worker.record_task_failure(0));
        }
        assert!(!worker.is_blacklisted());
    }

    #[test]
    fn quarantine_lifts_into_probation_then_full_health() {
        let clock = SimClock::new();
        let worker = Worker::with_health_windows(
            7,
            clock.clone(),
            Duration::from_secs(1),
            Duration::from_secs(300),
            Duration::from_secs(60),
        );
        for _ in 0..3 {
            worker.record_task_failure(3);
        }
        assert!(worker.is_blacklisted());
        assert!(!worker.accepts_tasks_for(QueryPriority::Low));

        // quarantine expires → half-open: low-priority work only
        clock.advance(Duration::from_secs(300));
        assert!(matches!(worker.health(), WorkerHealth::Probation { .. }));
        assert!(!worker.is_blacklisted());
        assert!(!worker.accepts_tasks());
        assert!(!worker.accepts_tasks_for(QueryPriority::High));
        assert!(worker.accepts_tasks_for(QueryPriority::Low));

        // surviving the probation window restores full trust
        clock.advance(Duration::from_secs(60));
        assert_eq!(worker.health(), WorkerHealth::Healthy);
        assert!(worker.accepts_tasks());
    }

    #[test]
    fn failure_during_probation_requarantines_immediately() {
        let clock = SimClock::new();
        let worker = Worker::with_health_windows(
            7,
            clock.clone(),
            Duration::from_secs(1),
            Duration::from_secs(300),
            Duration::from_secs(60),
        );
        for _ in 0..3 {
            worker.record_task_failure(3);
        }
        clock.advance(Duration::from_secs(300));
        assert!(matches!(worker.health(), WorkerHealth::Probation { .. }));
        // one failure is enough — no need to rebuild a streak of 3
        worker.record_task_success();
        assert!(worker.record_task_failure(3), "probation failure re-quarantines");
        assert!(worker.is_blacklisted());
        assert!(!worker.accepts_tasks_for(QueryPriority::Low));
    }
}
